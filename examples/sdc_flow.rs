//! The downstream story end to end: analyze a circuit, validate the
//! multi-cycle pairs against static hazards, and emit the SDC
//! `set_multicycle_path` constraints a static timing analyzer would apply
//! — comparing the unsafe (MC-condition-only) constraint set with the
//! hazard-robust one, which is the paper's practical punchline.
//!
//! Run with: `cargo run --release --example sdc_flow`

use mcpath::core::{
    analyze, check_hazards, sensitization_dependencies, to_sdc, HazardCheck, McConfig, SdcOptions,
};
use mcpath::gen::circuits;

fn main() {
    let netlist = circuits::fig3();
    let report = analyze(&netlist, &McConfig::default()).expect("fig3 analysis succeeds");
    println!(
        "`{}`: {} of {} FF pairs verified multi-cycle by the MC condition\n",
        netlist.name(),
        report.stats.multi_total(),
        report.stats.candidates
    );

    println!("=== naive constraints (MC condition only — UNSAFE under hazards) ===");
    print!(
        "{}",
        to_sdc(
            &netlist,
            &report,
            &SdcOptions {
                cycles: 2,
                ..Default::default()
            }
        )
    );

    let cosens = check_hazards(&netlist, &report, HazardCheck::CoSensitization);
    println!("\n=== hazard-robust constraints (co-sensitization survivors) ===");
    print!(
        "{}",
        to_sdc(
            &netlist,
            &report,
            &SdcOptions {
                robust_only: Some(cosens.clone()),
                cycles: 2,
            },
        )
    );

    let sens = check_hazards(&netlist, &report, HazardCheck::Sensitization);
    let deps = sensitization_dependencies(&netlist, &report);
    println!(
        "\nintermediate option: the sensitization criterion keeps {} of {} pairs,",
        sens.robust.len(),
        report.stats.multi_total()
    );
    let conditional = deps.deps.iter().filter(|(_, d)| !d.is_empty()).count();
    println!(
        "but {conditional} of those depend on other pairs' constraints staying tight\n\
         (the paper's Fig.4 interdependency) — apply them only as a set."
    );

    // The punchline on this circuit: (FF3, FF2) is constrained by the
    // naive set and absent from the robust set.
    let naive = to_sdc(
        &netlist,
        &report,
        &SdcOptions {
            cycles: 2,
            ..Default::default()
        },
    );
    let robust = to_sdc(
        &netlist,
        &report,
        &SdcOptions {
            robust_only: Some(cosens),
            cycles: 2,
        },
    );
    let line = "-from [get_cells {FF3}] -to [get_cells {FF2}]";
    assert!(naive.contains(line));
    assert!(!robust.contains(line));
    println!(
        "\nnote: the naive set relaxes (FF3, FF2) — the exact pair whose glitch\n\
         `cargo run --example glitch_waveform` makes visible. The robust set does not. ✓"
    );
}
