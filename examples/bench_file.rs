//! Analyzes an ISCAS89 `.bench` file from the command line — the workflow
//! for running the analysis on the paper's actual benchmark suite when the
//! files are available.
//!
//! Run with: `cargo run --release --example bench_file -- path/to/s1423.bench`
//!
//! Without an argument, a bundled `.bench` rendering of the paper's Fig.1
//! circuit is analyzed instead, demonstrating the parser path.

use mcpath::core::{analyze, McConfig};
use mcpath::netlist::bench;

const FIG1_BENCH: &str = "
# the paper's Fig.1 circuit, in ISCAS89 .bench syntax
INPUT(IN)
OUTPUT(FF2)
FF1 = DFF(MUX1_OR)
FF2 = DFF(MUX2_OR)
FF3 = DFF(FF4)
FF4 = DFF(NF3)
NF3 = NOT(FF3)
EN1 = NOR(FF3, FF4)
MUX1_SELB = NOT(EN1)
MUX1_A0 = AND(MUX1_SELB, FF1)
MUX1_A1 = AND(EN1, IN)
MUX1_OR = OR(MUX1_A0, MUX1_A1)
NF4 = NOT(FF4)
EN2 = AND(FF3, NF4)
MUX2_SELB = NOT(EN2)
MUX2_A0 = AND(MUX2_SELB, FF2)
MUX2_A1 = AND(EN2, FF1)
MUX2_OR = OR(MUX2_A0, MUX2_A1)
";

fn main() {
    let mut args = std::env::args().skip(1);
    let (name, source) = match args.next() {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read `{path}`: {e}");
                std::process::exit(1);
            });
            (path, text)
        }
        None => ("fig1.bench (bundled)".to_owned(), FIG1_BENCH.to_owned()),
    };

    let netlist = bench::parse(&name, &source).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let stats = netlist.stats();
    println!(
        "{name}: {} inputs, {} outputs, {} FFs, {} gates, {} connected FF pairs",
        stats.inputs, stats.outputs, stats.ffs, stats.gates, stats.ff_pairs
    );

    // Paper settings: backtrack limit 50; raise it (and enable static
    // learning) for the hard circuits, as the paper does for s9234 etc.
    let hard = stats.gates > 5000;
    let cfg = McConfig {
        backtrack_limit: if hard { 5000 } else { 50 },
        static_learning: hard,
        ..McConfig::default()
    };
    let report = analyze(&netlist, &cfg).expect("cycle budget is valid");

    println!(
        "multi-cycle FF pairs: {}   single-cycle: {}   unresolved: {}",
        report.stats.multi_total(),
        report.stats.single_total(),
        report.stats.unknown
    );
    println!(
        "steps: sim dropped {} ({} words), implication proved {}, search handled {}",
        report.stats.single_by_sim,
        report.stats.sim_words,
        report.stats.multi_by_implication,
        report.stats.multi_by_atpg + report.stats.single_by_atpg
    );

    let name_of = |ff: usize| netlist.node(netlist.dffs()[ff]).name().to_owned();
    let mc = report.multi_cycle_pairs();
    println!("\nfirst {} multi-cycle pairs:", mc.len().min(20));
    for &(i, j) in mc.iter().take(20) {
        println!("  ({}, {})", name_of(i), name_of(j));
    }
}
