//! k-cycle detection: the Section 4.1 extension, on gated datapaths with
//! known transfer latencies.
//!
//! "Though this algorithm is to detect multi-cycle FF pairs, it can be
//! easily extended to detect k-cycle FF pairs (k = 3, 4, ...) by
//! increasing the number of time frames." This example sweeps the cycle
//! budget `k` over counter-gated datapaths whose source→sink latency is
//! known by construction, and shows the verdict flip exactly at `k =
//! latency + 1`.
//!
//! Run with: `cargo run --release --example kcycle`

use mcpath::core::{analyze, McConfig};
use mcpath::gen::generators::{gated_datapath, DatapathConfig};

fn main() {
    println!("cycle-budget sweep over gated datapaths (8-phase controller):\n");
    println!("{:>10} {:>4}  verdict for (A0, B0)", "latency", "k");

    for latency in [3u64, 5] {
        let netlist = gated_datapath(&DatapathConfig {
            width: 2,
            counter_bits: 3,
            load_phase: 0,
            capture_phase: latency,
        });
        let a0 = netlist
            .ff_index(netlist.find_node("D0_A0").expect("node"))
            .expect("ff");
        let b0 = netlist
            .ff_index(netlist.find_node("D0_B0").expect("node"))
            .expect("ff");

        for k in 2..=(latency as u32 + 1) {
            let report = analyze(
                &netlist,
                &McConfig {
                    cycles: k,
                    backtrack_limit: 100_000,
                    ..McConfig::default()
                },
            )
            .expect("datapath analysis succeeds");
            let is_multi = report
                .class_of(a0, b0)
                .map(|c| c.is_multi())
                .unwrap_or(false);
            println!(
                "{:>10} {:>4}  {}",
                latency,
                k,
                if is_multi {
                    "k-cycle pair: the sink provably holds k cycles"
                } else {
                    "NOT a k-cycle pair: violating pattern exists"
                }
            );
            assert_eq!(is_multi, u64::from(k) <= latency, "staircase must be exact");
        }
        println!();
    }

    println!(
        "each pair is a k-cycle pair exactly for k <= latency: a signal \
         launched at the\nload window has `latency` full cycles before the \
         capture window opens, and\nnot one more. ✓"
    );
}
