//! Makes the paper's Fig.3 hazard *visible*: simulates the technology-
//! mapped circuit across the critical clock edge with a slowed multiplexer
//! leg, prints the glitch as an ASCII waveform, and dumps a VCD file for a
//! wave viewer.
//!
//! The scenario is the paper's: the controller leaves the capture state
//! `(FF3, FF4) = (1, 0)`, so `EN2` falls; `MUX2`'s two AND legs hand the
//! logic 1 over from the data leg (`MUX2_A1`) to the hold leg (`MUX2_A0`).
//! If the hold leg is slower, `FF2`'s D input dips to 0 — a static-1
//! hazard — even though its settled value never changes, which is exactly
//! why the MC condition alone is not sufficient to relax the `(FF3, FF2)`
//! constraint.
//!
//! Run with: `cargo run --release --example glitch_waveform`

use mcpath::gen::circuits;
use mcpath::sim::{vcd, DelaySim};

fn main() {
    let nl = circuits::fig3();
    let node = |name: &str| nl.find_node(name).expect("fig3 node");

    // Pre-edge: counter in the capture state (1,0); FF1 = FF2 = 1 so the
    // data leg carries the 1.   Post-edge: counter advances to (0,0); FF1
    // and FF2 hold their values.
    let pis0 = vec![false]; // IN
    let ffs0 = vec![true, true, true, false]; // FF1, FF2, FF3, FF4
    let pis1 = vec![false];
    let ffs1 = vec![true, true, false, false];

    let mut sim = DelaySim::new(&nl);
    // Slow the hold leg: its rise arrives well after the data leg's fall.
    sim.set_delay(node("MUX2_A0"), 4);
    sim.record_waveforms(true);
    sim.init(&pis0, &ffs0);
    let initial: Vec<bool> = nl.nodes().map(|(id, _)| sim.value(id)).collect();

    let report = sim.edge(&pis1, &ffs1);
    let d_input = node("MUX2_OR");
    println!(
        "FF2's D input (MUX2_OR) transitioned {} times across the edge{}",
        report.transitions(d_input),
        if report.glitched(d_input) {
            " — a GLITCH, as the static analysis predicted"
        } else {
            ""
        }
    );
    assert!(report.glitched(d_input), "the Fig.3 hazard must appear");

    // ASCII waveform of the interesting signals.
    let signals = ["FF3", "EN2", "MUX2_SELB", "MUX2_A1", "MUX2_A0", "MUX2_OR"];
    let horizon = report.settle_time() + 2;
    println!(
        "\ntime       {}",
        (0..horizon)
            .map(|t| (t % 10).to_string())
            .collect::<String>()
    );
    for name in signals {
        let id = node(name);
        let mut value = initial[id.index()];
        let mut row = String::new();
        for t in 0..horizon {
            for &(et, en, ev) in report.events() {
                if et == t && en == id {
                    value = ev;
                }
            }
            row.push(if value { '#' } else { '.' });
        }
        println!("{name:>10} {row}");
    }
    println!("           (# = 1, . = 0; MUX2_OR dips while A0 lags A1)");

    // VCD for a real viewer.
    let path = std::env::temp_dir().join("fig3_glitch.vcd");
    let mut file = std::fs::File::create(&path).expect("create vcd");
    vcd::write_vcd(&nl, &initial, report.events(), &mut file).expect("write vcd");
    println!(
        "\nfull waveform written to {} (open with GTKWave)",
        path.display()
    );
}
