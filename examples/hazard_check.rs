//! Static-hazard validation: the paper's Section 5 on Fig.3 and Fig.4.
//!
//! Shows that the MC condition alone can be optimistic: pair `(FF3, FF2)`
//! of the technology-mapped circuit satisfies the condition, yet the `EN2`
//! transition can glitch through the two legs of the decomposed
//! multiplexer and reach `FF2`'s D input — if one AND is slow, the relaxed
//! timing constraint is violated. Both delay-independent checks (static
//! sensitization and static co-sensitization) demote the pair; the Fig.4
//! fragment then shows where the two criteria disagree.
//!
//! Run with: `cargo run --release --example hazard_check`

use mcpath::core::{analyze, check_hazards, HazardCheck, McConfig};
use mcpath::gen::circuits;
use mcpath::logic::V3;

fn main() {
    let netlist = circuits::fig3();
    let name_of = |ff: usize| netlist.node(netlist.dffs()[ff]).name().to_owned();

    let report = analyze(&netlist, &McConfig::default()).expect("fig3 analysis succeeds");
    println!(
        "`{}`: {} multi-cycle pairs by the MC condition:",
        netlist.name(),
        report.multi_cycle_pairs().len()
    );
    for (i, j) in report.multi_cycle_pairs() {
        println!("  ({}, {})", name_of(i), name_of(j));
    }

    for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
        let hz = check_hazards(&netlist, &report, check);
        println!("\n{check:?} check:");
        println!(
            "  robust  : {:?}",
            hz.robust
                .iter()
                .map(|&(i, j)| format!("({},{})", name_of(i), name_of(j)))
                .collect::<Vec<_>>()
        );
        println!(
            "  demoted : {:?}",
            hz.demoted
                .iter()
                .map(|&(i, j)| format!("({},{})", name_of(i), name_of(j)))
                .collect::<Vec<_>>()
        );
        assert!(
            hz.demoted.contains(&(2, 1)),
            "(FF3, FF2) must be demoted — the paper's Fig.3 hazard"
        );
    }
    println!(
        "\n(FF3, FF2) satisfies the MC condition but is demoted by both \
         checks: a glitch\nfrom the EN2 transition can race through MUX2's \
         AND legs into FF2 — exactly\nthe paper's Fig.3 scenario. ✓"
    );

    // Fig.4: where the two criteria part ways.
    let frag = circuits::fig4_fragment();
    let mut v0 = vec![V3::X; frag.num_nodes()];
    let mut v1 = vec![V3::X; frag.num_nodes()];
    let set = |v: &mut Vec<V3>, name: &str, val: V3| {
        v[frag.find_node(name).expect("node").index()] = val;
    };
    // A falls 1 -> 0; side input B settles at the AND's controlling 0.
    set(&mut v0, "QA", V3::One);
    set(&mut v1, "QA", V3::Zero);
    set(&mut v0, "QB", V3::Zero);
    set(&mut v1, "QB", V3::Zero);
    set(&mut v0, "C", V3::Zero);
    set(&mut v1, "C", V3::Zero);

    let qa = frag
        .ff_index(frag.find_node("QA").expect("node"))
        .expect("ff");
    let qc = frag
        .ff_index(frag.find_node("QC").expect("node"))
        .expect("ff");
    let sens = mcpath::core::hazard::glitch_path_exists(
        &frag,
        qa,
        qc,
        &v0,
        &v1,
        HazardCheck::Sensitization,
    );
    let cosens = mcpath::core::hazard::glitch_path_exists(
        &frag,
        qa,
        qc,
        &v0,
        &v1,
        HazardCheck::CoSensitization,
    );
    println!(
        "\nFig.4 fragment (A transitions, side input B settled controlling):\n  \
         statically sensitizable path: {sens}\n  statically co-sensitizable path: {cosens}"
    );
    assert!(!sens && cosens);
    println!(
        "sensitization misses the hazard (B blocks it — but only if B's own \
         timing\nconstraint stays tight: the dependency problem); \
         co-sensitization flags it. ✓"
    );
}
