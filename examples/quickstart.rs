//! Quickstart: the paper's Fig.1 walkthrough, end to end.
//!
//! Builds the example circuit of the paper's Section 2.2 — a 4-state
//! gray-code controller gating a load register `FF1` and a capture
//! register `FF2` — and runs the full analysis, printing what each step
//! resolves. The output mirrors the narrative of the paper's Section 4.2:
//! 9 structurally connected pairs, 4 disproven by random simulation, and
//! the remaining 5 proven multi-cycle by the implication procedure.
//!
//! Run with: `cargo run --release --example quickstart`

use mcpath::core::{analyze, McConfig, PairClass, Step};
use mcpath::gen::circuits;

fn main() {
    let netlist = circuits::fig1();
    let stats = netlist.stats();
    println!("circuit `{}`:", netlist.name());
    println!(
        "  {} primary input(s), {} FFs, {} gates",
        stats.inputs, stats.ffs, stats.gates
    );

    // Step 1: structural candidates.
    let name_of = |ff: usize| netlist.node(netlist.dffs()[ff]).name().to_owned();
    let candidates = netlist.connected_ff_pairs();
    println!(
        "\nstep 1 — topologically connected FF pairs: {}",
        candidates.len()
    );
    for &(i, j) in &candidates {
        println!("  ({}, {})", name_of(i), name_of(j));
    }

    // Steps 2-4 inside the pipeline.
    let report = analyze(&netlist, &McConfig::default()).expect("fig1 analysis succeeds");

    println!(
        "\nstep 2 — random 2-clock simulation dropped {} pairs as single-cycle \
         ({} words of 64 patterns):",
        report.stats.single_by_sim, report.stats.sim_words
    );
    for p in &report.pairs {
        if let PairClass::SingleCycle {
            by: Step::RandomSim,
        } = p.class
        {
            println!("  ({}, {})", name_of(p.src), name_of(p.dst));
        }
    }

    println!("\nsteps 3-4 — implication on the 2-frame expansion:");
    for p in &report.pairs {
        match p.class {
            PairClass::MultiCycle { by } => {
                println!(
                    "  ({}, {}) is a MULTI-CYCLE pair  [{}]",
                    name_of(p.src),
                    name_of(p.dst),
                    match by {
                        Step::Implication => "proven by implication alone",
                        Step::Atpg => "proven with backtrack search",
                        _ => "prefilter",
                    }
                );
            }
            PairClass::SingleCycle { by } if by != Step::RandomSim => {
                println!(
                    "  ({}, {}) is single-cycle  [violating pattern found]",
                    name_of(p.src),
                    name_of(p.dst)
                );
            }
            _ => {}
        }
    }

    let mc = report.multi_cycle_pairs();
    println!(
        "\nresult: {}/{} pairs are multi-cycle — their FF-to-FF timing \
         constraints can be relaxed.",
        mc.len(),
        candidates.len()
    );
    assert_eq!(
        mc,
        vec![(0, 0), (0, 1), (1, 1), (2, 1), (3, 0)],
        "the paper's Section 4.2 pair set"
    );
    println!("matches the paper's walkthrough (5 multi-cycle pairs). ✓");
}
