//! Cross-checks the three decision engines — implication+ATPG (the
//! paper's), SAT (\[9\]) and BDD (\[8\]) — on suite circuits, verifying
//! agreement and timing each one (the live version of Table 1).
//!
//! Run with: `cargo run --release --example engine_compare`

use mcpath::core::{analyze, Engine, McConfig};
use mcpath::gen::suite;
use std::time::Instant;

fn main() {
    println!(
        "{:>8} {:>8} | {:>12} {:>12} {:>12}",
        "circuit", "pairs", "implication", "SAT [9]", "BDD [8]"
    );
    println!("{:-<60}", "");

    for netlist in suite::quick_suite() {
        let stats = netlist.stats();

        let t = Instant::now();
        let ours = analyze(&netlist, &McConfig::default()).expect("analysis succeeds");
        let t_ours = t.elapsed();

        let t = Instant::now();
        let sat = analyze(
            &netlist,
            &McConfig {
                engine: Engine::Sat,
                ..McConfig::default()
            },
        )
        .expect("analysis succeeds");
        let t_sat = t.elapsed();

        let t = Instant::now();
        let bdd = analyze(
            &netlist,
            &McConfig {
                engine: Engine::Bdd {
                    node_limit: 1 << 22,
                    reachability: false,
                },
                ..McConfig::default()
            },
        )
        .expect("analysis succeeds");
        let t_bdd = t.elapsed();

        // The implication engine is sound: its verdicts must agree with the
        // complete SAT engine wherever it did not abort.
        assert_eq!(
            ours.multi_cycle_pairs(),
            sat.multi_cycle_pairs(),
            "{}: implication vs SAT",
            netlist.name()
        );
        let bdd_done = bdd.stats.unknown == 0;
        if bdd_done {
            assert_eq!(
                sat.multi_cycle_pairs(),
                bdd.multi_cycle_pairs(),
                "{}: SAT vs BDD",
                netlist.name()
            );
        }

        println!(
            "{:>8} {:>8} | {:>10.3}ms {:>10.3}ms {:>12}",
            netlist.name(),
            stats.ff_pairs,
            t_ours.as_secs_f64() * 1e3,
            t_sat.as_secs_f64() * 1e3,
            if bdd_done {
                format!("{:>8.3}ms", t_bdd.as_secs_f64() * 1e3)
            } else {
                "blew budget".to_owned()
            },
        );
    }

    println!("{:-<60}", "");
    println!("all engines agree wherever they complete. ✓");
    println!(
        "\nWith reachability restriction, the BDD engine can prove MORE \
         pairs\nmulti-cycle (states that would violate the condition may be \
         unreachable):"
    );
    // A ring of FFs reset to zero never toggles: with reachability every
    // pair is multi-cycle; under the all-states assumption none are.
    let ring = mcpath::netlist::bench::parse(
        "ring3",
        "OUTPUT(R0)\nR0 = DFF(R2)\nR1 = DFF(R0)\nR2 = DFF(R1)",
    )
    .expect("ring parses");
    for (label, reach) in [
        ("all states assumed", false),
        ("reachable from reset", true),
    ] {
        let r = analyze(
            &ring,
            &McConfig {
                engine: Engine::Bdd {
                    node_limit: 1 << 20,
                    reachability: reach,
                },
                use_sim_filter: !reach, // random sim assumes all states
                ..McConfig::default()
            },
        )
        .expect("ring analysis succeeds");
        println!(
            "  {:>20}: {} of {} pairs multi-cycle",
            label,
            r.multi_cycle_pairs().len(),
            r.pairs.len()
        );
    }
}
