//! Per-pair decision engines: implication+ATPG, SAT, and BDD.
//!
//! Every engine answers the same question over the same
//! [`Expanded`] semantics: *does an assignment of
//! initial state and per-frame inputs exist under which the source FF
//! transitions at `t+1` while the sink FF changes at some time in
//! `t+2 ..= t+k`?* No such assignment ⇒ the pair is a (k-)multi-cycle
//! pair.

use crate::report::Step;
use mcp_atpg::{search, SearchConfig, SearchOutcome, SearchStats};
use mcp_bdd::{OverflowError, Ref, SymbolicFsm};
use mcp_implication::ImpEngine;
use mcp_netlist::Expanded;
use mcp_obs::AssignmentEvent;
use mcp_sat::{CircuitCnf, SolveResult};

/// Engine-internal verdict for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven multi-cycle.
    Multi {
        /// Attribution for Table 2.
        by: Step,
    },
    /// A violating assignment exists.
    Single {
        /// Attribution for Table 2.
        by: Step,
    },
    /// Resource limit hit.
    Unknown,
}

/// The four `(FFi(t), FFj(t+1))` assignments of the paper's step 4.1.
const ASSIGNMENTS: [(bool, bool); 4] = [(false, false), (false, true), (true, false), (true, true)];

/// Per-pair instrumentation filled by
/// [`classify_pair_implication_probed`]: aggregate search effort, plus —
/// when tracing is on — the per-assignment outcome journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairProbe {
    /// ATPG decisions across every search run for the pair.
    pub decisions: u64,
    /// ATPG backtracks across every search run for the pair.
    pub backtracks: u64,
    /// Searches that hit the backtrack limit.
    pub aborts: u64,
    /// Whether per-assignment events are collected (off by default: the
    /// hot path then skips event construction entirely).
    pub trace: bool,
    /// Per-assignment outcomes, in trial order (empty unless `trace`).
    pub assignments: Vec<AssignmentEvent>,
}

impl PairProbe {
    /// A probe that also collects per-assignment events.
    pub fn traced() -> Self {
        PairProbe {
            trace: true,
            ..PairProbe::default()
        }
    }

    fn absorb(&mut self, stats: &SearchStats) {
        self.decisions += stats.decisions;
        self.backtracks += stats.backtracks;
    }

    fn note(&mut self, a: bool, b: bool, outcome: &str) {
        if self.trace {
            self.assignments.push(AssignmentEvent {
                src_value: a,
                dst_value: b,
                outcome: outcome.to_owned(),
            });
        }
    }
}

/// Classifies one pair with the paper's engine: per-assignment implication
/// followed, only where needed, by the bounded backtrack search.
///
/// `eng` must be an engine over the `k`-frame expansion with an empty
/// trail; it is returned in that state.
pub fn classify_pair_implication(
    eng: &mut ImpEngine<'_>,
    i: usize,
    j: usize,
    k: u32,
    search_cfg: &SearchConfig,
) -> Verdict {
    let mut probe = PairProbe::default();
    classify_pair_implication_probed(eng, i, j, k, search_cfg, &mut probe)
}

/// [`classify_pair_implication`] with instrumentation: search effort and
/// (when `probe.trace`) per-assignment outcomes are accumulated into
/// `probe`.
pub fn classify_pair_implication_probed(
    eng: &mut ImpEngine<'_>,
    i: usize,
    j: usize,
    k: u32,
    search_cfg: &SearchConfig,
    probe: &mut PairProbe,
) -> Verdict {
    let x = eng.expanded();
    let ffi0 = x.ff_at(i, 0);
    let ffi1 = x.ff_at(i, 1);
    let ffj1 = x.ff_at(j, 1);

    let mut any_unknown = false;
    let mut used_search = false;

    for (a, b) in ASSIGNMENTS {
        let cp = eng.checkpoint();
        // Step 4.1.1-4.1.2: premise (source transition + sink "before"
        // value) and implication to fixpoint.
        let premise_ok = eng
            .assign(ffi0, a)
            .and_then(|()| eng.assign(ffi1, !a))
            .and_then(|()| eng.assign(ffj1, b))
            .and_then(|()| eng.propagate())
            .is_ok();
        if !premise_ok {
            // Contradiction: the MC condition holds vacuously here.
            probe.note(a, b, "contradiction");
            eng.backtrack(cp);
            continue;
        }

        // Step 4.1.3: what do the implications say about the sink at
        // t+2 ..= t+k?
        let mut implied_violation = false;
        let mut open: Vec<u32> = Vec::new();
        for m in 2..=k {
            match eng.value(x.ff_at(j, m)).to_bool() {
                Some(v) if v == b => {}
                Some(_) => implied_violation = true,
                None => open.push(m),
            }
        }

        if implied_violation {
            // The implication procedure itself exhibits the violation —
            // provided the premise is justifiable at all (the paper's
            // "the step should also justify the premise" remark).
            let (outcome, st) = search(eng, search_cfg);
            probe.absorb(&st);
            eng.backtrack(cp);
            match outcome {
                SearchOutcome::Sat(_) => {
                    probe.note(a, b, "implied_violation");
                    return Verdict::Single {
                        by: Step::Implication,
                    };
                }
                SearchOutcome::Unsat => {
                    // Vacuous scenario.
                    probe.note(a, b, "unsat");
                    continue;
                }
                SearchOutcome::Aborted => {
                    probe.aborts += 1;
                    probe.note(a, b, "aborted");
                    any_unknown = true;
                    continue;
                }
            }
        }

        if open.is_empty() {
            // Every sink time implied equal: MC condition proven for this
            // assignment by implication alone.
            probe.note(a, b, "unsat");
            eng.backtrack(cp);
            continue;
        }

        // Step 4.1.4: search for a violating pattern, one sink time at a
        // time (their disjunction is covered by trying each).
        used_search = true;
        let mut violated = false;
        let mut scenario_aborted = false;
        for m in open {
            let cp2 = eng.checkpoint();
            let ok = eng
                .assign(x.ff_at(j, m), !b)
                .and_then(|()| eng.propagate())
                .is_ok();
            if !ok {
                eng.backtrack(cp2);
                continue; // this sink time cannot differ
            }
            let (outcome, st) = search(eng, search_cfg);
            probe.absorb(&st);
            eng.backtrack(cp2);
            match outcome {
                SearchOutcome::Sat(_) => {
                    violated = true;
                    break;
                }
                SearchOutcome::Unsat => {}
                SearchOutcome::Aborted => {
                    probe.aborts += 1;
                    scenario_aborted = true;
                    any_unknown = true;
                }
            }
        }
        eng.backtrack(cp);
        if violated {
            probe.note(a, b, "witness");
            return Verdict::Single { by: Step::Atpg };
        }
        probe.note(a, b, if scenario_aborted { "aborted" } else { "unsat" });
    }

    if any_unknown {
        Verdict::Unknown
    } else {
        Verdict::Multi {
            by: if used_search {
                Step::Atpg
            } else {
                Step::Implication
            },
        }
    }
}

/// Classifies one pair with the SAT baseline \[9\]: for each boundary
/// `m ∈ 1..k`, one incremental query `FFi(t)⊕FFi(t+1) ∧
/// FFj(t+m)⊕FFj(t+m+1)` over the shared CNF.
pub fn classify_pair_sat(
    cnf: &mut CircuitCnf,
    x: &Expanded,
    i: usize,
    j: usize,
    k: u32,
) -> Verdict {
    let src_diff = cnf.diff_lit(x.ff_at(i, 0), x.ff_at(i, 1));
    for m in 1..k {
        let sink_diff = cnf.diff_lit(x.ff_at(j, m), x.ff_at(j, m + 1));
        if cnf.solver_mut().solve(&[src_diff, sink_diff]) == SolveResult::Sat {
            return Verdict::Single { by: Step::Atpg };
        }
    }
    Verdict::Multi { by: Step::Atpg }
}

/// Classifies one pair with the symbolic baseline \[8\] (2-frame only).
///
/// `reached` restricts the check (pass [`Ref::TRUE`] for the all-states
/// assumption). A BDD overflow yields [`Verdict::Unknown`].
pub fn classify_pair_bdd(fsm: &mut SymbolicFsm, i: usize, j: usize, reached: Ref) -> Verdict {
    match fsm.is_multicycle_pair(i, j, reached) {
        Ok(true) => Verdict::Multi { by: Step::Atpg },
        Ok(false) => Verdict::Single { by: Step::Atpg },
        Err(OverflowError { .. }) => Verdict::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_atpg::SearchConfig;
    use mcp_gen::{circuits, oracle};
    use mcp_netlist::bench;

    #[test]
    fn implication_engine_matches_oracle_on_fig1() {
        let nl = circuits::fig1();
        let x = Expanded::build(&nl, 2);
        let mut eng = ImpEngine::new(&x);
        let (multi, single) = oracle::exhaustive_mc_pairs(&nl);
        for &(i, j) in &multi {
            let v = classify_pair_implication(&mut eng, i, j, 2, &SearchConfig::default());
            assert!(
                matches!(v, Verdict::Multi { .. }),
                "({i},{j}) should be multi"
            );
        }
        for &(i, j) in &single {
            let v = classify_pair_implication(&mut eng, i, j, 2, &SearchConfig::default());
            assert!(
                matches!(v, Verdict::Single { .. }),
                "({i},{j}) should be single"
            );
        }
    }

    #[test]
    fn fig1_pairs_resolve_by_implication_alone() {
        // The paper's walkthrough: the surviving Fig.1 pairs fall to the
        // implication procedure (Fig.2), not to the search.
        let nl = circuits::fig1();
        let x = Expanded::build(&nl, 2);
        let mut eng = ImpEngine::new(&x);
        let v = classify_pair_implication(&mut eng, 0, 1, 2, &SearchConfig::default());
        assert_eq!(
            v,
            Verdict::Multi {
                by: Step::Implication
            }
        );
    }

    #[test]
    fn sat_engine_matches_oracle_on_fig1() {
        let nl = circuits::fig1();
        let x = Expanded::build(&nl, 2);
        let mut cnf = CircuitCnf::new(&x);
        let (multi, single) = oracle::exhaustive_mc_pairs(&nl);
        for &(i, j) in &multi {
            assert!(matches!(
                classify_pair_sat(&mut cnf, &x, i, j, 2),
                Verdict::Multi { .. }
            ));
        }
        for &(i, j) in &single {
            assert!(matches!(
                classify_pair_sat(&mut cnf, &x, i, j, 2),
                Verdict::Single { .. }
            ));
        }
    }

    #[test]
    fn bdd_engine_matches_oracle_on_fig1() {
        let nl = circuits::fig1();
        let mut fsm = SymbolicFsm::build(&nl, 1 << 22).expect("budget");
        let (multi, single) = oracle::exhaustive_mc_pairs(&nl);
        for &(i, j) in &multi {
            assert!(matches!(
                classify_pair_bdd(&mut fsm, i, j, Ref::TRUE),
                Verdict::Multi { .. }
            ));
        }
        for &(i, j) in &single {
            assert!(matches!(
                classify_pair_bdd(&mut fsm, i, j, Ref::TRUE),
                Verdict::Single { .. }
            ));
        }
    }

    #[test]
    fn k_cycle_classification_tracks_counter_period() {
        // Load at phase 0, capture at phase 3 of a 4-phase counter: the
        // transfer needs 3 cycles. It must pass k=2 and k=3 but fail k=4.
        let nl = mcp_gen::generators::gated_datapath(&mcp_gen::generators::DatapathConfig {
            width: 1,
            counter_bits: 2,
            load_phase: 0,
            capture_phase: 3,
        });
        let a0 = nl.ff_index(nl.find_node("D0_A0").unwrap()).unwrap();
        let b0 = nl.ff_index(nl.find_node("D0_B0").unwrap()).unwrap();
        for (k, expect_multi) in [(2, true), (3, true), (4, false)] {
            let x = Expanded::build(&nl, k);
            let mut eng = ImpEngine::new(&x);
            let v = classify_pair_implication(
                &mut eng,
                a0,
                b0,
                k,
                &SearchConfig {
                    backtrack_limit: 10_000,
                },
            );
            assert_eq!(
                matches!(v, Verdict::Multi { .. }),
                expect_multi,
                "k={k}: got {v:?}"
            );
            // Cross-check with SAT.
            let mut cnf = CircuitCnf::new(&x);
            let vs = classify_pair_sat(&mut cnf, &x, a0, b0, k);
            assert_eq!(
                matches!(vs, Verdict::Multi { .. }),
                expect_multi,
                "SAT k={k}"
            );
        }
    }

    #[test]
    fn backtrack_limit_zero_gives_unknown_on_hard_pairs() {
        // An XOR-heavy structure the implication procedure cannot settle.
        let nl = bench::parse(
            "hard",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(Q)\n\
             S = DFF(SD)\nQ = DFF(QD)\n\
             x1 = XOR(a, b)\nx2 = XOR(b, c)\nx3 = XOR(x1, x2)\n\
             SD = XOR(S, x3)\nQD = XOR(Q, SD)",
        )
        .expect("parse");
        let x = Expanded::build(&nl, 2);
        let mut eng = ImpEngine::new(&x);
        let v = classify_pair_implication(&mut eng, 0, 1, 2, &SearchConfig { backtrack_limit: 0 });
        // With no search budget the XOR cones cannot be justified either
        // way: the honest answer is Unknown or a genuine early verdict —
        // never a wrong one. Check against the oracle.
        let (multi, _) = oracle::exhaustive_mc_pairs(&nl);
        let truly_multi = multi.contains(&(0, 1));
        match v {
            Verdict::Unknown => {}
            Verdict::Multi { .. } => assert!(truly_multi),
            Verdict::Single { .. } => assert!(!truly_multi),
        }
    }
}
