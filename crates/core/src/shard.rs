//! Sharded multi-process verification: the deterministic pair
//! partition and the crash-safe ledger merge.
//!
//! The pair set is embarrassingly distributable — every verdict is
//! per-pair deterministic — so a run can be split over N independent
//! OS processes, each journaling its own ledger-v2 file, and merged
//! back into *the* canonical report. Three properties make the merge
//! sound, all pinned by the test suite:
//!
//! - **Deterministic ownership.** [`plan_shards`] partitions the
//!   prefiltered survivors sink-group-whole via greedy LPT over the
//!   deterministic hardest-first group order. Every process — each
//!   shard, a resume of a killed shard, and the merge planner — derives
//!   the identical partition from the netlist and config alone, so
//!   ownership never depends on which shards happen to have run.
//! - **Digest-checked identity.** Every shard header carries the
//!   netlist/config/pair-set digests plus its shard coordinates and the
//!   parent [run digest](mcp_obs::run_digest). [`merge_shards`] refuses
//!   missing, duplicate, foreign, or incomplete shards with typed
//!   [`AnalyzeError`]s instead of producing a silently short report.
//! - **Merge is resume-from-union.** The union of the shards' engine
//!   verdicts forms one [`ResumePlan`]; the ordinary pipeline then
//!   re-runs the deterministic prefilters, restores every surviving
//!   pair's verdict, and the engines no-op. The merged canonical report
//!   is byte-identical to a single-process `--threads 1` run because it
//!   *is* that run, with the engine work pre-supplied.

use crate::config::McConfig;
use crate::pipeline::{analyze_inner, candidate_pairs, pair_digest, AnalyzeError, DigestKind};
use crate::report::{McReport, StepStats};
use crate::resume::ResumePlan;
use crate::stage::{assign_shards, plan_sink_groups, run_prefilters, Prefiltered};
use mcp_netlist::{Expanded, Netlist};
use mcp_obs::{Ledger, ObsCtx, PairEvent, LEDGER_VERSION};
use std::collections::{BTreeMap, BTreeSet};

/// The deterministic shard partition of one run: shard `s` owns exactly
/// the pairs of `owned(s)`, and the sets are disjoint and cover every
/// prefiltered survivor.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    owned: Vec<BTreeSet<(usize, usize)>>,
}

impl ShardPlan {
    /// Number of shards in the partition.
    pub fn count(&self) -> u64 {
        self.owned.len() as u64
    }

    /// The pair set shard `index` owns.
    ///
    /// # Panics
    ///
    /// Panics when `index >= count()`.
    pub fn owned(&self, index: u64) -> &BTreeSet<(usize, usize)> {
        &self.owned[index as usize]
    }

    /// Owned-pair count per shard — the balance the bench harness
    /// reports.
    pub fn pairs_per_shard(&self) -> Vec<usize> {
        self.owned.iter().map(|s| s.len()).collect()
    }

    /// Total pairs across all shards (the prefiltered survivor count).
    pub fn total_pairs(&self) -> usize {
        self.owned.iter().map(|s| s.len()).sum()
    }
}

/// Computes the partition a sharded run of `cfg` over `count` shards
/// uses, by replaying the deterministic prefilters (static
/// pre-classification + seeded random simulation) and the sink-group
/// LPT assignment — exactly the code path `analyze` takes, so the two
/// can never drift.
///
/// `cfg.shard` is ignored: the partition is a property of the whole
/// run, not of any one shard.
///
/// # Errors
///
/// [`AnalyzeError::InvalidShard`] when `count` is 0.
pub fn plan_shards(
    netlist: &Netlist,
    cfg: &McConfig,
    count: u64,
) -> Result<ShardPlan, AnalyzeError> {
    if count == 0 {
        return Err(AnalyzeError::InvalidShard { index: 0, count });
    }
    // Throwaway context: planning must not journal, count, or trace —
    // the real run (or merge) does that itself.
    let obs = ObsCtx::new();
    let mut stats = StepStats::default();
    let mut results = Vec::new();
    let candidates = candidate_pairs(netlist, cfg);
    let Prefiltered {
        survivors,
        ff_toggles,
    } = run_prefilters(netlist, cfg, &obs, &mut stats, &mut results, candidates);
    let x = Expanded::build(netlist, cfg.frames());
    let groups = plan_sink_groups(&x, &survivors, ff_toggles.as_deref(), cfg.cycles);
    let owned = assign_shards(&groups, count)
        .into_iter()
        .map(|pairs| pairs.into_iter().collect())
        .collect();
    Ok(ShardPlan { owned })
}

/// [`merge_shards_with`] on a fresh (silent) observability context.
///
/// # Errors
///
/// See [`merge_shards_with`].
pub fn merge_shards(
    netlist: &Netlist,
    cfg: &McConfig,
    ledgers: &[Ledger],
) -> Result<McReport, AnalyzeError> {
    merge_shards_with(netlist, cfg, &ObsCtx::new(), ledgers)
}

/// Merges the per-shard ledgers of one sharded run into the canonical
/// report — byte-identical (after [`McReport::canonical`]) to a
/// single-process run of the same netlist and config.
///
/// Soundness gate, in order: every ledger must carry a v2 header whose
/// netlist/config/pair digests match the current invocation and whose
/// recorded run digest is self-consistent; the shard counts must agree
/// and the indices form exactly `{0, …, count-1}` (no shard missing,
/// duplicated, or out of range); every engine verdict must lie inside
/// its shard's recomputed ownership set; and every owned pair must have
/// a verdict. Only then are the verdicts unioned and replayed through
/// the ordinary pipeline.
///
/// Ownership is recomputed under *this* invocation's config, so merge
/// with the same flags the shards ran with (the verdict-affecting ones
/// are digest-enforced; of the neutral ones only `--no-static-classify`
/// moves pairs across the prefilter boundary, and a mismatch there
/// surfaces as a foreign-verdict or incomplete-shard refusal, never as
/// a wrong report).
///
/// # Errors
///
/// [`AnalyzeError::ShardMerge`] for structural unsoundness,
/// [`AnalyzeError::DigestMismatch`] for netlist/config drift,
/// [`AnalyzeError::ShardIncomplete`] for a shard killed before
/// finishing (resume it, then merge again), plus everything
/// [`analyze`](crate::analyze) can return.
pub fn merge_shards_with(
    netlist: &Netlist,
    cfg: &McConfig,
    obs: &ObsCtx,
    ledgers: &[Ledger],
) -> Result<McReport, AnalyzeError> {
    let merge_err = |reason: String| AnalyzeError::ShardMerge { reason };
    if ledgers.is_empty() {
        return Err(merge_err("no shard ledgers given".to_owned()));
    }

    let netlist_hash = netlist.content_hash();
    let fingerprint = cfg.fingerprint();
    let candidates = candidate_pairs(netlist, cfg);
    let digest = pair_digest(&candidates);
    let candidate_set: BTreeSet<(usize, usize)> = candidates.iter().copied().collect();

    let mut count = 0u64;
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for (k, ledger) in ledgers.iter().enumerate() {
        let header = ledger
            .header
            .as_ref()
            .ok_or_else(|| merge_err(format!("ledger #{k} has no run header")))?;
        if header.ledger != LEDGER_VERSION {
            return Err(merge_err(format!(
                "ledger #{k} has format v{} (this build reads v{LEDGER_VERSION})",
                header.ledger
            )));
        }
        if header.netlist_hash != netlist_hash {
            return Err(AnalyzeError::DigestMismatch {
                what: DigestKind::Netlist,
                ledger: header.netlist_hash,
                current: netlist_hash,
            });
        }
        if header.config_fingerprint != fingerprint {
            return Err(AnalyzeError::DigestMismatch {
                what: DigestKind::Config,
                ledger: header.config_fingerprint,
                current: fingerprint,
            });
        }
        if header.pair_digest != digest || header.pairs != candidates.len() as u64 {
            return Err(merge_err(format!(
                "ledger #{k} committed to a different candidate pair set \
                 ({} pairs, digest {:016x}; this run has {}, digest {digest:016x})",
                header.pairs,
                header.pair_digest,
                candidates.len()
            )));
        }
        if header.run_digest != header.expected_run_digest() {
            return Err(merge_err(format!(
                "ledger #{k} records run digest {:016x} but its identity fields imply \
                 {:016x} — a foreign or doctored journal",
                header.run_digest,
                header.expected_run_digest()
            )));
        }
        if header.shard_count == 0 {
            return Err(merge_err(format!(
                "ledger #{k} is not a shard ledger (it was written by an unsharded run, \
                 which already is the full report)"
            )));
        }
        if count == 0 {
            count = header.shard_count;
        } else if header.shard_count != count {
            return Err(merge_err(format!(
                "shard count disagreement: ledger #{k} says {} shards, earlier ledgers \
                 say {count}",
                header.shard_count
            )));
        }
        if header.shard_index >= header.shard_count {
            return Err(merge_err(format!(
                "ledger #{k} claims shard {}/{}, which is out of range",
                header.shard_index, header.shard_count
            )));
        }
        if let Some(prev) = seen.insert(header.shard_index, k) {
            return Err(merge_err(format!(
                "duplicate shard {}/{count} (ledgers #{prev} and #{k})",
                header.shard_index
            )));
        }
    }
    if seen.len() as u64 != count {
        let missing: Vec<String> = (0..count)
            .filter(|i| !seen.contains_key(i))
            .map(|i| i.to_string())
            .collect();
        return Err(merge_err(format!(
            "missing shard(s) {} of {count}",
            missing.join(", ")
        )));
    }

    // Recompute the ownership partition the shards derived, and index
    // it pair → owning shard for the foreign-verdict check.
    let plan = plan_shards(netlist, cfg, count)?;
    let owner_of: BTreeMap<(usize, usize), u64> = (0..count)
        .flat_map(|s| plan.owned(s).iter().map(move |&p| (p, s)))
        .collect();

    // Union the engine verdicts shard by shard, enforcing ownership and
    // completeness. Prefilter events (engine `None`) are recomputed by
    // the replay below, exactly as on resume; engine verdicts for pairs
    // no shard owns are pairs this invocation's prefilters resolve
    // (e.g. the shards ran with `--no-static-classify`) — equally
    // recomputed, so they are skipped rather than restored.
    let mut restored: BTreeMap<(usize, usize), PairEvent> = BTreeMap::new();
    for (&index, &k) in &seen {
        let owned = plan.owned(index);
        let mut verdicts: BTreeMap<(usize, usize), &PairEvent> = BTreeMap::new();
        for event in &ledgers[k].events {
            if event.engine.is_none() {
                continue;
            }
            let pair = (event.src, event.dst);
            if !candidate_set.contains(&pair) {
                return Err(merge_err(format!(
                    "shard {index} carries a verdict for pair ({}, {}) outside the \
                     candidate set",
                    event.src, event.dst
                )));
            }
            match owner_of.get(&pair) {
                Some(&owner) if owner == index => {
                    // Last write wins, as on resume: duplicates only
                    // arise from a shard that was itself resumed, where
                    // replayed and original verdicts are identical.
                    verdicts.insert(pair, event);
                }
                Some(&owner) => {
                    return Err(merge_err(format!(
                        "shard {index} carries a verdict for pair ({}, {}), which is \
                         owned by shard {owner} — ledgers from different partitions \
                         cannot be merged",
                        event.src, event.dst
                    )));
                }
                None => {} // prefilter-resolved under this config
            }
        }
        let missing = owned.iter().filter(|p| !verdicts.contains_key(p)).count();
        if missing > 0 {
            return Err(AnalyzeError::ShardIncomplete { index, missing });
        }
        for (pair, event) in verdicts {
            restored.insert(pair, event.clone());
        }
    }

    // Replay through the ordinary pipeline as a resume-from-union: the
    // prefilters re-run deterministically, every surviving pair's
    // verdict restores, and the engines see an empty work list.
    let mut unsharded = cfg.clone();
    unsharded.shard = None;
    let plan = ResumePlan {
        restored,
        from_cache: false,
    };
    analyze_inner(netlist, &unsharded, obs, Some(&plan), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardSpec;
    use crate::pipeline::analyze_with;
    use mcp_gen::{circuits, suite};
    use mcp_obs::MemSink;
    use std::sync::Arc;

    fn capture(nl: &Netlist, cfg: &McConfig) -> (McReport, Ledger) {
        let sink = Arc::new(MemSink::new());
        let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        let report = analyze_with(nl, cfg, &obs).expect("analyze");
        let ledger = Ledger {
            header: sink.take_header(),
            spans: sink.drain_spans(),
            events: sink.drain(),
        };
        (report, ledger)
    }

    fn shard_ledgers(nl: &Netlist, cfg: &McConfig, count: u64) -> Vec<Ledger> {
        (0..count)
            .map(|index| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.shard = Some(ShardSpec { index, count });
                capture(nl, &shard_cfg).1
            })
            .collect()
    }

    #[test]
    fn partition_is_disjoint_complete_and_deterministic() {
        let nl = suite::quick_suite().remove(1);
        let cfg = McConfig::default();
        for count in [1u64, 2, 4, 7] {
            let plan = plan_shards(&nl, &cfg, count).expect("plan");
            assert_eq!(plan.count(), count);
            let again = plan_shards(&nl, &cfg, count).expect("plan again");
            for s in 0..count {
                assert_eq!(plan.owned(s), again.owned(s), "partition must be stable");
            }
            // Disjoint and covering: the union has no duplicates and
            // matches the total.
            let mut all: Vec<(usize, usize)> = (0..count)
                .flat_map(|s| plan.owned(s).iter().copied())
                .collect();
            let total = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), total, "shards must be disjoint");
            assert_eq!(plan.total_pairs(), total);
        }
        // Different counts really partition differently (not all-in-one).
        let plan = plan_shards(&nl, &cfg, 4).expect("plan");
        if plan.total_pairs() >= 4 {
            assert!(
                (0..4).filter(|&s| !plan.owned(s).is_empty()).count() > 1,
                "LPT must spread non-trivial work over shards"
            );
        }
        assert!(plan_shards(&nl, &cfg, 0).is_err());
    }

    #[test]
    fn merging_shards_reproduces_the_single_process_report() {
        let nl = suite::quick_suite().remove(1);
        let cfg = McConfig::default();
        let (baseline, _) = capture(&nl, &cfg);
        let canonical = serde_json::to_string(&baseline.canonical()).expect("serialize");
        for count in [1u64, 2, 4, 7] {
            let ledgers = shard_ledgers(&nl, &cfg, count);
            // Every shard header carries its coordinates and run digest.
            for (i, l) in ledgers.iter().enumerate() {
                let h = l.header.as_ref().expect("header");
                assert_eq!((h.shard_index, h.shard_count), (i as u64, count));
                assert_eq!(h.run_digest, h.expected_run_digest());
            }
            let merged = merge_shards(&nl, &cfg, &ledgers).expect("merge");
            assert_eq!(
                serde_json::to_string(&merged.canonical()).expect("serialize"),
                canonical,
                "{count}-shard merge must be byte-identical to one process"
            );
        }
    }

    #[test]
    fn merge_refuses_missing_duplicate_and_foreign_shards() {
        let nl = circuits::fig1();
        let cfg = McConfig::default();
        let ledgers = shard_ledgers(&nl, &cfg, 2);

        let err = merge_shards(&nl, &cfg, &[]).unwrap_err();
        assert!(matches!(err, AnalyzeError::ShardMerge { .. }), "{err}");

        let err = merge_shards(&nl, &cfg, &ledgers[..1]).unwrap_err();
        assert!(err.to_string().contains("missing shard"), "{err}");

        let dup = vec![ledgers[0].clone(), ledgers[0].clone()];
        let err = merge_shards(&nl, &cfg, &dup).unwrap_err();
        assert!(err.to_string().contains("duplicate shard"), "{err}");

        // An unsharded ledger is not mergeable.
        let (_, unsharded) = capture(&nl, &cfg);
        let err = merge_shards(&nl, &cfg, &[unsharded]).unwrap_err();
        assert!(err.to_string().contains("not a shard ledger"), "{err}");

        // A doctored run digest is caught even when everything else fits.
        let mut doctored = ledgers.clone();
        doctored[1].header.as_mut().unwrap().run_digest ^= 1;
        let err = merge_shards(&nl, &cfg, &doctored).unwrap_err();
        assert!(err.to_string().contains("run digest"), "{err}");

        // A different circuit's shards refuse with the typed digest error.
        let other = circuits::fig4_fragment();
        let err = merge_shards(&other, &cfg, &ledgers).unwrap_err();
        assert!(
            matches!(
                err,
                AnalyzeError::DigestMismatch {
                    what: DigestKind::Netlist,
                    ..
                }
            ),
            "{err}"
        );

        // A config change likewise.
        let mut recfg = cfg.clone();
        recfg.cycles = 3;
        let err = merge_shards(&nl, &recfg, &ledgers).unwrap_err();
        assert!(
            matches!(
                err,
                AnalyzeError::DigestMismatch {
                    what: DigestKind::Config,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn merge_refuses_an_incomplete_shard_and_accepts_its_resumed_ledger() {
        let nl = suite::quick_suite().remove(1);
        let cfg = McConfig::default();
        let mut ledgers = shard_ledgers(&nl, &cfg, 2);

        // Kill shard 1 retroactively: drop its last engine verdict.
        let full = ledgers[1].clone();
        let last_engine = ledgers[1]
            .events
            .iter()
            .rposition(|e| e.engine.is_some())
            .expect("shard 1 has engine verdicts");
        ledgers[1].events.truncate(last_engine);
        let err = merge_shards(&nl, &cfg, &ledgers).unwrap_err();
        match err {
            AnalyzeError::ShardIncomplete { index, missing } => {
                assert_eq!(index, 1);
                assert!(missing >= 1);
            }
            other => panic!("expected ShardIncomplete, got {other}"),
        }

        // Resume the killed shard from its truncated ledger, then merge.
        let truncated = ledgers[1].clone();
        let mut shard_cfg = cfg.clone();
        shard_cfg.shard = Some(ShardSpec { index: 1, count: 2 });
        let sink = Arc::new(MemSink::new());
        let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        crate::resume::analyze_resume_with(&nl, &shard_cfg, &obs, &truncated).expect("resume");
        ledgers[1] = Ledger {
            header: sink.take_header(),
            spans: sink.drain_spans(),
            events: sink.drain(),
        };
        let merged = merge_shards(&nl, &cfg, &ledgers).expect("merge after resume");

        // Identical to the merge of the never-killed ledgers.
        ledgers[1] = full;
        let clean = merge_shards(&nl, &cfg, &ledgers).expect("clean merge");
        assert_eq!(
            serde_json::to_string(&merged.canonical()).unwrap(),
            serde_json::to_string(&clean.canonical()).unwrap()
        );
    }
}
