//! Multi-cycle FF-pair analysis — the paper's contribution.
//!
//! This crate assembles the workspace's substrates into the analysis flow
//! of *"An Implication-based Method to Detect Multi-Cycle Paths in Large
//! Sequential Circuits"* (Higuchi, DAC 2002):
//!
//! 1. **Structural filter** — keep only topologically connected FF pairs
//!    ([`mcp_netlist::Netlist::connected_ff_pairs`]).
//! 2. **Random-pattern simulation** — disprove most single-cycle pairs
//!    cheaply ([`mcp_sim::mc_filter`]).
//! 3. **Time-frame expansion** — 2 frames (or `k` for k-cycle detection),
//!    optionally with SOCRATES-style static learning.
//! 4. **Per-pair, per-assignment implication + bounded ATPG** — prove the
//!    remaining candidates multi-cycle or exhibit a violating pattern.
//!
//! The same prefilters can drive the two baseline engines for comparison:
//! the SAT formulation of \[9\] ([`Engine::Sat`]) and the BDD-based
//! symbolic formulation of \[8\] ([`Engine::Bdd`]).
//!
//! Finally, [`hazard`] implements the paper's Section 5: validating
//! detected multi-cycle pairs against **static hazards** using static
//! sensitization and static co-sensitization, which plain MC-condition
//! methods (including the baselines) silently ignore.
//!
//! # Quickstart
//!
//! ```
//! use mcp_core::{analyze, McConfig, PairClass};
//! use mcp_netlist::bench;
//!
//! // A register with a hold loop: its self pair is multi-cycle.
//! let nl = bench::parse("hold", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = BUFF(q)")?;
//! let report = analyze(&nl, &McConfig::default())?;
//! assert!(matches!(
//!     report.class_of(0, 0),
//!     Some(PairClass::MultiCycle { .. })
//! ));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod borrowing;
pub mod budget;
pub mod cache;
pub mod cas;
pub mod config;
pub mod eco;
pub mod engines;
pub mod hazard;
pub mod pipeline;
pub mod report;
pub mod resume;
mod schedule;
pub mod sdc;
pub mod shard;
pub mod stage;

pub use borrowing::condition2_candidates;
pub use budget::{max_cycle_budget, max_cycle_budgets, CycleBudget, PairBudgets};
pub use cache::{analyze_cached, analyze_cached_with};
pub use cas::{CacheStats, CasError, CasLock, CasStore, GcOutcome, StageUsage};
pub use config::{Engine, McConfig, Scheduler, ShardSpec};
pub use eco::{analyze_eco_with, EcoSummary};
pub use hazard::{
    check_hazards, check_hazards_with, sensitization_dependencies, HazardCheck, HazardReport,
    SensitizationDependencies,
};
pub use pipeline::{analyze, analyze_with, AnalyzeError, DigestKind};
pub use report::{McReport, PairClass, PairResult, Step, StepStats};
pub use resume::{analyze_resume_with, plan_resume, ResumePlan};
pub use sdc::{to_sdc, SdcOptions};
pub use shard::{merge_shards, merge_shards_with, plan_shards, ShardPlan};
pub use stage::{
    config_slice, stage_key, stage_key_for, ExpandedArtifact, GroupRecord, GroupedArtifact,
    LintedArtifact, ParsedArtifact, PrefilteredArtifact, ReportArtifact, VerdictRecord,
    VerdictsArtifact, STAGES,
};
