//! The staged artifact graph of the analysis pipeline.
//!
//! The pipeline is an explicit chain of stages
//!
//! ```text
//! Parsed → Linted → Expanded → Prefiltered → Grouped → Verdicts → Report
//! ```
//!
//! where each stage is a named, serializable artifact keyed by a
//! content hash of its inputs: the netlist content hash crossed with
//! the fingerprint-covered config slice that stage actually reads
//! ([`stage_key_for`]). The cheap deterministic stages (parse, lint,
//! expansion, prefilters, grouping) are always recomputed — they are
//! seed-deterministic and faster than deserializing — and their
//! artifacts exist as the *identity record* the content-addressed store
//! ([`CasStore`](crate::CasStore)) persists for observability and
//! invalidation. The expensive stage is `Verdicts`: its artifact
//! carries every engine verdict keyed both by FF index and FF *name*,
//! which is what lets a warm rerun splice all engine work from the
//! store and lets ECO re-analysis map surviving verdicts across a
//! netlist edit.
//!
//! This module also owns the stage *implementations* shared by the
//! pipeline, the shard planner and the ECO planner: the deterministic
//! prefilters (`run_prefilters`) and the sink-group planning
//! (`plan_sink_groups`, `assign_shards`). Keeping them in one place
//! is what guarantees the planners can never drift from the run.

use crate::config::McConfig;
use crate::report::{PairClass, PairResult, SimKernelTier, Step, StepStats};
use mcp_netlist::{Expanded, Netlist, XId};
use mcp_obs::{ObsCtx, PairEvent};
use mcp_sim::mc_filter_stats_seeded;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stage name: the parsed netlist identity.
pub const STAGE_PARSED: &str = "parsed";
/// Stage name: the admission-lint outcome.
pub const STAGE_LINTED: &str = "linted";
/// Stage name: the time-frame expansion summary.
pub const STAGE_EXPANDED: &str = "expanded";
/// Stage name: the prefilter outcome (static + random simulation).
pub const STAGE_PREFILTERED: &str = "prefiltered";
/// Stage name: the sink-group plan.
pub const STAGE_GROUPED: &str = "grouped";
/// Stage name: the engine verdicts — the replayable artifact.
pub const STAGE_VERDICTS: &str = "verdicts";
/// Stage name: the canonical report.
pub const STAGE_REPORT: &str = "report";

/// Every stage of the artifact graph, in pipeline order.
pub const STAGES: [&str; 7] = [
    STAGE_PARSED,
    STAGE_LINTED,
    STAGE_EXPANDED,
    STAGE_PREFILTERED,
    STAGE_GROUPED,
    STAGE_VERDICTS,
    STAGE_REPORT,
];

/// Content key of one stage artifact: the stage name crossed with the
/// netlist content hash and the config slice the stage reads.
pub fn stage_key(stage: &str, netlist_hash: u64, config_slice: u64) -> u64 {
    mcp_obs::fnv1a(format!("{stage}:{netlist_hash:016x}:{config_slice:016x}").as_bytes())
}

/// The fingerprint-covered config slice a stage reads.
///
/// Early stages depend on less of the config than the engines do, so
/// their artifacts survive config changes that would invalidate the
/// verdicts: parse and lint read nothing (netlist-only), expansion
/// reads the cycle budget, the prefilters read the sim-filter knobs,
/// and everything from grouping on is keyed by the full
/// verdict-affecting [`McConfig::fingerprint`]. Verdict-*neutral*
/// knobs (threads, scheduler, slicing, lanes, the static pre-pass,
/// `cache_dir` itself) never enter any key, mirroring the fingerprint's
/// own exclusions.
pub fn config_slice(stage: &str, cfg: &McConfig) -> u64 {
    let text = match stage {
        STAGE_PARSED | STAGE_LINTED => String::new(),
        STAGE_EXPANDED => format!("cycles={}", cfg.cycles),
        STAGE_PREFILTERED => format!(
            "cycles={};sim={};seed={};idle={};max={};self_pairs={}",
            cfg.cycles,
            cfg.use_sim_filter,
            cfg.sim.seed,
            cfg.sim.idle_words,
            cfg.sim.max_words,
            cfg.include_self_pairs,
        ),
        _ => return cfg.fingerprint(),
    };
    mcp_obs::fnv1a(text.as_bytes())
}

/// [`stage_key`] with the config slice derived from `cfg` via
/// [`config_slice`].
pub fn stage_key_for(stage: &str, netlist_hash: u64, cfg: &McConfig) -> u64 {
    stage_key(stage, netlist_hash, config_slice(stage, cfg))
}

/// `Parsed` artifact: the circuit's identity and size summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedArtifact {
    /// Circuit name.
    pub circuit: String,
    /// Netlist content hash ([`Netlist::content_hash`]).
    pub netlist_hash: u64,
    /// Primary input count.
    pub inputs: u64,
    /// Flip-flop count.
    pub ffs: u64,
    /// Combinational gate count.
    pub gates: u64,
}

/// `Linted` artifact: the admission-lint outcome for a netlist that
/// passed the gate (a failing netlist never produces artifacts — the
/// run refuses with [`AnalyzeError::CorruptNetlist`](crate::AnalyzeError)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintedArtifact {
    /// Netlist content hash.
    pub netlist_hash: u64,
    /// Whether the error-level lint gate actually ran (`McConfig::lint`).
    pub gated: bool,
}

/// `Expanded` artifact: size summary of the time-frame expansion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpandedArtifact {
    /// Netlist content hash.
    pub netlist_hash: u64,
    /// Frames expanded (the cycle budget).
    pub frames: u32,
    /// Expansion node count.
    pub nodes: u64,
}

/// `Prefiltered` artifact: the pairs the deterministic prefilters could
/// not resolve, plus the per-prefilter resolution counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefilteredArtifact {
    /// Surviving candidate pairs, in candidate order.
    pub survivors: Vec<(usize, usize)>,
    /// Pairs the static dataflow pre-pass proved multi-cycle.
    pub static_multi: u64,
    /// Pairs random simulation disproved.
    pub sim_single: u64,
}

/// One sink group of the `Grouped` artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupRecord {
    /// Sink FF index.
    pub sink: usize,
    /// Source FF indices, ascending.
    pub sources: Vec<usize>,
    /// Exact cone-slice node count (the effort hint).
    pub slice_nodes: u64,
    /// Scheduling cost hint.
    pub cost: u64,
}

/// `Grouped` artifact: the deterministic sink-group plan, in
/// hardest-first order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupedArtifact {
    /// The groups, hardest first.
    pub groups: Vec<GroupRecord>,
}

/// One engine verdict of the `Verdicts` artifact.
///
/// Pairs are recorded both by FF index (exact replay on the identical
/// netlist) and by FF *name* (the stable key ECO re-analysis maps
/// across a netlist edit, where indices may shift).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictRecord {
    /// Source FF index.
    pub src: usize,
    /// Sink FF index.
    pub dst: usize,
    /// Source FF node name.
    pub src_name: String,
    /// Sink FF node name.
    pub dst_name: String,
    /// Resolving step (journal name, see `step_name`).
    pub step: String,
    /// Verdict class: `multi`, `single` or `unknown`.
    pub class: String,
}

/// `Verdicts` artifact: every engine verdict of a completed run, plus
/// the run-identity digests a replay validates before splicing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictsArtifact {
    /// Circuit name.
    pub circuit: String,
    /// Netlist content hash the verdicts belong to.
    pub netlist_hash: u64,
    /// Verdict-affecting config fingerprint.
    pub config_fingerprint: u64,
    /// Candidate pair-set digest.
    pub pair_digest: u64,
    /// Engine verdicts, sorted by `(src, dst)`.
    pub verdicts: Vec<VerdictRecord>,
}

/// `Report` artifact: the canonical (wall-clock-free) report JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportArtifact {
    /// `serde_json` serialization of [`McReport::canonical`](crate::McReport::canonical).
    pub canonical: String,
}

/// Per-stage artifacts collected from one cold run, for persisting into
/// the store. Filled by `analyze_inner` when a collector is supplied.
#[derive(Debug, Default)]
pub(crate) struct StageTrace {
    pub(crate) parsed: Option<ParsedArtifact>,
    pub(crate) linted: Option<LintedArtifact>,
    pub(crate) expanded: Option<ExpandedArtifact>,
    pub(crate) prefiltered: Option<PrefilteredArtifact>,
    pub(crate) grouped: Option<GroupedArtifact>,
    pub(crate) verdicts: Vec<VerdictRecord>,
}

/// Journal name of a resolving [`Step`].
pub(crate) fn step_name(step: Step) -> &'static str {
    match step {
        Step::Structural => "structural",
        Step::RandomSim => "random_sim",
        Step::Implication => "implication",
        Step::Atpg => "atpg",
    }
}

/// Outcome of the deterministic prefilter stages.
pub(crate) struct Prefiltered {
    /// Candidate pairs no prefilter could resolve, in candidate order.
    pub(crate) survivors: Vec<(usize, usize)>,
    /// Per-FF toggle activity from the sim filter (`None` when the
    /// filter was off) — the scheduler's hardness boost.
    pub(crate) ff_toggles: Option<Vec<u64>>,
}

/// Steps 1.5–2 of the pipeline: static pre-classification followed by
/// the random-pattern simulation prefilter. Resolved pairs land in
/// `results`/`stats` (and the journal); the survivors come back.
///
/// Factored out of `analyze_inner` because shard ownership and the ECO
/// dirty-group analysis are both defined over the prefiltered
/// survivors: the merge planner and the ECO planner re-run exactly this
/// code (on a throwaway `ObsCtx`) to recompute the survivor set, and
/// any drift between the paths would unsoundly shift ownership. Both
/// stages are deterministic for a fixed netlist and fingerprint-covered
/// config — the static pass is a pure dataflow fixpoint, and the sim
/// filter draws from a fixed seed word-slot-major, independent of
/// thread count.
pub(crate) fn run_prefilters(
    netlist: &Netlist,
    cfg: &McConfig,
    obs: &ObsCtx,
    stats: &mut StepStats,
    results: &mut Vec<PairResult>,
    mut candidates: Vec<(usize, usize)>,
) -> Prefiltered {
    // Step 1.5: static pre-classification. The forward ternary lattice
    // (`mcp_lint::const_lattice`) evaluated at its *first* Kleene
    // iterate — every FF output X — under-approximates every concrete
    // state, so a node it calls definite holds that value at every time
    // frame, from any initial state, under any stimulus. A sink FF whose
    // D input is such a node ("frozen sink") therefore never transitions:
    // the pair is multi-cycle for every cycle budget and backtrack limit,
    // and the sim prefilter can never produce a violation witness for it
    // either — which is why removing these pairs before the filter leaves
    // the drop set over the remaining pairs untouched (the filter's RNG
    // draws word-slot-major, independent of the pair list), keeping the
    // canonical report byte-identical with the pass on or off. Only the
    // first iterate is sound here: fixpoint-only constants hold *after*
    // the widening horizon, not at frame 0, and feed the lint rules
    // instead. Without a CONST node the lattice has no seeds, so the
    // whole pass is skipped as a no-op.
    let mut base_consts: Option<Vec<mcp_logic::V3>> = None;
    let has_consts = netlist
        .nodes()
        .any(|(_, n)| matches!(n.kind(), mcp_netlist::NodeKind::Const(_)));
    if cfg.static_classify && !candidates.is_empty() && has_consts {
        let t_static = obs.timers.span("analyze/static");
        let _tr_static = obs.trace_span(|| "analyze/static".to_owned());
        let lattice = mcp_lint::const_lattice(netlist);
        obs.metrics
            .dataflow_consts
            .add(lattice.num_definite_base() as u64);
        obs.metrics.dataflow_iters.add(lattice.iterations as u64);
        let frozen: Vec<bool> = (0..netlist.num_ffs())
            .map(|j| lattice.base[netlist.ff_d_input(j).index()].is_definite())
            .collect();
        candidates.retain(|&(i, j)| {
            if !frozen[j] {
                return true;
            }
            results.push(PairResult {
                src: i,
                dst: j,
                class: PairClass::MultiCycle {
                    by: Step::Structural,
                },
            });
            stats.multi_by_static += 1;
            obs.metrics.static_resolved.add(1);
            if obs.sink().enabled() {
                // Resolved before any engine ran: no engine tag, no
                // attributable per-pair time. `--resume` recomputes
                // these (the pass is cheap and deterministic), exactly
                // like sim-prefilter drops.
                obs.sink().record(&PairEvent {
                    src: i,
                    dst: j,
                    step: "structural".to_owned(),
                    class: "multi".to_owned(),
                    engine: None,
                    assignments: Vec::new(),
                    micros: 0,
                    sim_word: None,
                    slice_nodes: None,
                    slice_vars: None,
                    resumed: false,
                    static_pass: true,
                    cached: false,
                    kernel: None,
                });
            }
            false
        });
        base_consts = Some(lattice.base);
        stats.time_static = t_static.stop();
    }

    // Step 2: random-pattern simulation. For k-cycle budgets above 2 the
    // 2-cycle witness is still a valid violation witness (a pair violating
    // the 2-cycle condition also violates any k ≥ 2 condition? No — the
    // k-cycle condition constrains MORE sink times, so a 2-frame witness
    // is indeed a k-frame witness), so the filter applies unchanged.
    let mut ff_toggles: Option<Vec<u64>> = None;
    let survivors: Vec<(usize, usize)> = if cfg.use_sim_filter {
        let t_sim = obs.timers.span("analyze/sim");
        let _tr_sim = obs.trace_span(|| "analyze/sim".to_owned());
        // The base lattice (when the pre-pass computed one) seeds the
        // tape compiler: provably constant gates are pinned and their
        // instructions folded away. Outcome-identical — the constants
        // hold under every stimulus — so only kernel effort shrinks.
        let consts = base_consts.as_deref().unwrap_or(&[]);
        let (out, sim_stats) = mc_filter_stats_seeded(netlist, &candidates, &cfg.sim, consts);
        stats.time_sim = t_sim.stop();
        // Re-record the sim time under the kernel tier that actually ran
        // (known only after the filter returns): per-tier children of
        // `analyze/sim` are what `sim_words_per_sec` attributes against,
        // so warm/static-heavy phases that never simulate don't deflate
        // the rate.
        obs.timers
            .add(&format!("analyze/sim/{}", sim_stats.kernel), stats.time_sim);
        stats.sim_words = out.words_simulated;
        stats.sim_kernel = SimKernelTier::from_tag(sim_stats.kernel);
        obs.metrics.sim_words.add(out.words_simulated);
        obs.metrics.sim_pairs_dropped.add(out.dropped() as u64);
        obs.metrics.sim_passes.add(sim_stats.passes);
        obs.metrics.sim_tape_ops.add(sim_stats.tape_ops);
        obs.metrics.sim_fused_ops.add(sim_stats.fused_ops);
        obs.metrics.jit_compiles.add(sim_stats.jit_compiles);
        obs.metrics.jit_bytes.add(sim_stats.jit_bytes);
        obs.metrics.jit_batches.add(sim_stats.jit_batches);
        for d in &out.drops {
            results.push(PairResult {
                src: d.src,
                dst: d.dst,
                class: PairClass::SingleCycle {
                    by: Step::RandomSim,
                },
            });
            stats.single_by_sim += 1;
            if obs.sink().enabled() {
                // Simulation kills pairs in bulk; elapsed time is not
                // attributable per pair (reported as 0), but the word
                // whose lane witnessed the violation is.
                obs.sink().record(&PairEvent {
                    src: d.src,
                    dst: d.dst,
                    step: "random_sim".to_owned(),
                    class: "single".to_owned(),
                    engine: None,
                    assignments: Vec::new(),
                    micros: 0,
                    sim_word: Some(d.word),
                    slice_nodes: None,
                    slice_vars: None,
                    resumed: false,
                    static_pass: false,
                    cached: false,
                    kernel: Some(sim_stats.kernel.to_owned()),
                });
            }
        }
        ff_toggles = Some(out.ff_toggles);
        out.survivors
    } else {
        candidates
    };
    Prefiltered {
        survivors,
        ff_toggles,
    }
}

/// One unit of engine work: every surviving pair sharing a sink FF.
///
/// Grouping by sink maximizes slice reuse: the `k`-frame sink cone
/// dominates the slice, and every source of the sink already lies inside
/// it (the pair is topologically connected), so one slice — and the
/// engine state built on it — serves the whole group.
pub(crate) struct SinkGroup {
    /// Sink FF index (the `j` of every pair in the group).
    pub(crate) sink: usize,
    /// Source FF indices, ascending — the in-group classification order.
    pub(crate) sources: Vec<usize>,
    /// Exact node count of the group's cone slice (from
    /// [`Expanded::cone_of`]) — the effort hint shared by the scheduler.
    pub(crate) slice_nodes: u64,
    /// Scheduling cost hint: `slice_nodes` boosted by sim-filter source
    /// activity.
    pub(crate) cost: u64,
}

/// The expansion nodes a sink group's engines inspect: source transition
/// boundary (`t`, `t+1`) for every source, sink values at `t+1 ..= t+k`.
/// Their fanin cone is exactly the logic any of the group's per-pair
/// queries can touch.
pub(crate) fn group_roots(x: &Expanded, group: &SinkGroup, cycles: u32) -> Vec<XId> {
    let mut roots = Vec::with_capacity(2 * group.sources.len() + cycles as usize);
    for &i in &group.sources {
        roots.push(x.ff_at(i, 0));
        roots.push(x.ff_at(i, 1));
    }
    for m in 1..=cycles {
        roots.push(x.ff_at(group.sink, m));
    }
    roots.sort_unstable();
    roots.dedup();
    roots
}

/// Groups `survivors` by sink FF and orders the groups hardest-first.
///
/// The cost hint combines two signals available before any engine runs:
///
/// - **Exact slice size** (the node count of the group's cone of
///   influence in the `k`-frame expansion) — the work both the slice
///   build and every per-pair query scale with. This replaces the older
///   netlist-level fanin-cone proxy, which ignored cone overlap and gate
///   depth entirely.
/// - **Sim-filter source activity** ([`mcp_sim::FilterOutcome::ff_toggles`],
///   when the filter ran): a pair that survived *despite* a
///   frequently-toggling source resisted that many concrete premise
///   witnesses, so its refutation (if any) is unlikely to be easy —
///   boost its group ahead of groups whose sources barely toggled.
///
/// Ties break on the sink index, keeping the group order (and thus the
/// static-chunk partition) fully deterministic.
pub(crate) fn plan_sink_groups(
    x: &Expanded,
    survivors: &[(usize, usize)],
    ff_toggles: Option<&[u64]>,
    cycles: u32,
) -> Vec<SinkGroup> {
    let mut by_sink: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(i, j) in survivors {
        by_sink.entry(j).or_default().push(i);
    }
    let mut groups: Vec<SinkGroup> = by_sink
        .into_iter()
        .map(|(sink, mut sources)| {
            sources.sort_unstable();
            sources.dedup();
            let mut g = SinkGroup {
                sink,
                sources,
                slice_nodes: 0,
                cost: 0,
            };
            g.slice_nodes = x.cone_of(&group_roots(x, &g, cycles)).len() as u64;
            // Saturating at 7 keeps the boost bounded: beyond ~7 toggling
            // lanes the premise is plainly easy to excite and tells us
            // nothing more about hardness.
            let boost = match ff_toggles {
                Some(t) => 1 + g.sources.iter().map(|&i| t[i]).max().unwrap_or(0).min(7),
                None => 1,
            };
            g.cost = g.slice_nodes * boost;
            g
        })
        .collect();
    groups.sort_unstable_by_key(|g| (std::cmp::Reverse(g.cost), g.sink));
    groups
}

/// Rewrites `survivors` into the scheduling order implied by `groups`:
/// hardest group first, ascending source within a group. Used directly
/// by the engines that consume a flat pair list (BDD, no-slice
/// implication); the group-fed engines get the same order from the
/// groups themselves.
pub(crate) fn order_hardest_first(survivors: &mut Vec<(usize, usize)>, groups: &[SinkGroup]) {
    survivors.clear();
    for g in groups {
        for &i in &g.sources {
            survivors.push((i, g.sink));
        }
    }
}

/// Partitions the sink groups over `count` shards and returns each
/// shard's pair set (`count` entries, possibly empty).
///
/// Greedy LPT (longest-processing-time) over the groups in their
/// deterministic hardest-first order: each group goes, whole, to the
/// currently least-loaded shard (ties to the lowest shard index). Keeping
/// groups whole preserves the one-slice-per-sink-group economics inside
/// every shard; LPT keeps the load split within 4/3 of optimal for the
/// heavy-tailed group costs. The input order, the costs and the tie
/// break are all deterministic, so every process — shards, resumes, the
/// merge planner — derives the identical partition.
pub(crate) fn assign_shards(groups: &[SinkGroup], count: u64) -> Vec<Vec<(usize, usize)>> {
    let count = count.max(1) as usize;
    let mut shards: Vec<Vec<(usize, usize)>> = vec![Vec::new(); count];
    let mut load = vec![0u64; count];
    for g in groups {
        let lightest = (0..count).min_by_key(|&s| (load[s], s)).unwrap_or(0);
        // Every group costs at least its slice walk even when the cost
        // hint degenerates to 0, so bare group count still balances.
        load[lightest] += g.cost.max(1);
        shards[lightest].extend(g.sources.iter().map(|&i| (i, g.sink)));
    }
    shards
}

/// The [`GroupedArtifact`] projection of a sink-group plan.
pub(crate) fn grouped_artifact(groups: &[SinkGroup]) -> GroupedArtifact {
    GroupedArtifact {
        groups: groups
            .iter()
            .map(|g| GroupRecord {
                sink: g.sink,
                sources: g.sources.clone(),
                slice_nodes: g.slice_nodes,
                cost: g.cost,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Engine;

    #[test]
    fn stage_keys_separate_stages_netlists_and_config_slices() {
        let k = stage_key(STAGE_VERDICTS, 1, 2);
        assert_eq!(stage_key(STAGE_VERDICTS, 1, 2), k);
        assert_ne!(stage_key(STAGE_GROUPED, 1, 2), k);
        assert_ne!(stage_key(STAGE_VERDICTS, 3, 2), k);
        assert_ne!(stage_key(STAGE_VERDICTS, 1, 3), k);
    }

    #[test]
    fn config_slices_narrow_with_the_stage() {
        let base = McConfig::default();
        // Engine changes invalidate verdicts but not expansion or the
        // prefilters.
        let mut sat = base.clone();
        sat.engine = Engine::Sat;
        assert_eq!(
            config_slice(STAGE_EXPANDED, &base),
            config_slice(STAGE_EXPANDED, &sat)
        );
        assert_eq!(
            config_slice(STAGE_PREFILTERED, &base),
            config_slice(STAGE_PREFILTERED, &sat)
        );
        assert_ne!(
            config_slice(STAGE_VERDICTS, &base),
            config_slice(STAGE_VERDICTS, &sat)
        );
        // Cycle-budget changes invalidate everything past parse/lint.
        let mut k3 = base.clone();
        k3.cycles = 3;
        assert_eq!(
            config_slice(STAGE_PARSED, &base),
            config_slice(STAGE_PARSED, &k3)
        );
        assert_ne!(
            config_slice(STAGE_EXPANDED, &base),
            config_slice(STAGE_EXPANDED, &k3)
        );
        assert_ne!(
            config_slice(STAGE_PREFILTERED, &base),
            config_slice(STAGE_PREFILTERED, &k3)
        );
        // Sim-seed changes invalidate the prefilters but not expansion.
        let mut seed = base.clone();
        seed.sim.seed ^= 1;
        assert_eq!(
            config_slice(STAGE_EXPANDED, &base),
            config_slice(STAGE_EXPANDED, &seed)
        );
        assert_ne!(
            config_slice(STAGE_PREFILTERED, &base),
            config_slice(STAGE_PREFILTERED, &seed)
        );
        // Verdict-neutral knobs never enter any stage key. The kernel
        // tier in particular: every tier computes the same outcome, so
        // switching `--sim-kernel` (or losing the jit to a host
        // fallback) must not invalidate cached prefilter artifacts.
        let mut neutral = base.clone();
        neutral.threads = 8;
        neutral.slice = !neutral.slice;
        neutral.static_classify = !neutral.static_classify;
        neutral.sim.kernel = mcp_sim::SimKernel::Reference;
        neutral.sim.lanes = 64;
        for stage in STAGES {
            assert_eq!(
                config_slice(stage, &base),
                config_slice(stage, &neutral),
                "stage {stage} must ignore verdict-neutral knobs"
            );
        }
    }

    #[test]
    fn artifacts_round_trip_through_json() {
        let v = VerdictsArtifact {
            circuit: "c".to_owned(),
            netlist_hash: 7,
            config_fingerprint: 8,
            pair_digest: 9,
            verdicts: vec![VerdictRecord {
                src: 0,
                dst: 1,
                src_name: "a".to_owned(),
                dst_name: "b".to_owned(),
                step: "implication".to_owned(),
                class: "multi".to_owned(),
            }],
        };
        let text = serde_json::to_string(&v).expect("serialize");
        let back: VerdictsArtifact = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, v);
        let g = GroupedArtifact {
            groups: vec![GroupRecord {
                sink: 1,
                sources: vec![0, 2],
                slice_nodes: 10,
                cost: 20,
            }],
        };
        let text = serde_json::to_string(&g).expect("serialize");
        let back: GroupedArtifact = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, g);
    }
}
