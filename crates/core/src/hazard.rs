//! Static-hazard validation of multi-cycle pairs (paper Section 5).
//!
//! The MC condition only constrains *settled* values: `FFj(t+1) ==
//! FFj(t+2)`. Between the clock edges, the combinational logic may still
//! glitch — a **static hazard** — and if the glitch originates at the
//! transitioning source FF and reaches the sink's D input near the clock
//! edge, relaxing the pair's timing constraint is unsafe (the paper's
//! Fig.3: slowing one AND of a decomposed multiplexer lets the `EN2`
//! transition race through both MUX legs into `FF2`).
//!
//! Exact hazard analysis is delay-dependent; the paper instead offers two
//! delay-independent structural checks built on path sensitization theory:
//!
//! * **static sensitization** (a *lower bound* on true sensitization):
//!   flag a hazard when some source→sink path has every side input
//!   possibly settled at a non-controlling value. Cheap and close to
//!   exact, but optimistic — and pairs it validates may *depend on each
//!   other's* timing constraints (Fig.4), so validated sets must be
//!   applied together with care.
//! * **static co-sensitization** (an *upper bound*): flag a hazard when
//!   some path is possibly co-sensitized — every gate whose settled output
//!   is a controlled value receives a controlling value from the on-path
//!   edge. Pairs surviving this check are robustly multi-cycle under any
//!   delay assignment, with no cross-pair dependences.
//!
//! Both checks run per surviving `(FFi(t), FFj(t+1))` scenario, on the
//! values implied for the *settled* second frame; first-cycle values are
//! treated as unknown, mirroring the paper's Fig.4 where the first cycle
//! is all `X` ("because we should take into account static hazards").
//! Unknown (`X`) settled values never block a path — they are treated as
//! possibly-hazardous, the conservative direction.

use crate::report::McReport;
use mcp_implication::ImpEngine;
use mcp_logic::V3;
use mcp_netlist::{Expanded, Netlist, NodeId};
use mcp_obs::ObsCtx;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// Which delay-independent hazard criterion to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HazardCheck {
    /// Static sensitization (lower bound; keeps more pairs, may introduce
    /// dependences between validated pairs).
    Sensitization,
    /// Static co-sensitization (upper bound; fully safe survivors).
    CoSensitization,
}

/// Result of [`check_hazards`]: the partition of multi-cycle pairs into
/// hazard-free and potentially-hazardous — the paper's Table 3 rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HazardReport {
    /// The criterion applied.
    pub check: HazardCheck,
    /// Pairs with no potentially hazardous path in any scenario: their
    /// timing constraints may be relaxed.
    pub robust: Vec<(usize, usize)>,
    /// Pairs with a potentially hazardous path: the MC condition holds but
    /// a glitch may still cross the cycle boundary.
    pub demoted: Vec<(usize, usize)>,
    /// Wall-clock spent checking.
    #[serde(skip)]
    pub elapsed: Duration,
}

/// Validates every multi-cycle pair of `report` against static hazards.
///
/// For each pair and each of the four `(FFi(t), FFj(t+1))` assignments that
/// is consistent (premise + MC conclusion `FFj(t+2) = FFj(t+1)` asserted,
/// as the paper does in Fig.3), the implied two-frame values feed a
/// glitch-path search from the source FF to the sink's D input. Any
/// reachable scenario demotes the pair.
pub fn check_hazards(netlist: &Netlist, report: &McReport, check: HazardCheck) -> HazardReport {
    check_hazards_with(netlist, report, check, &ObsCtx::new())
}

/// [`check_hazards`] with an explicit observability context: the check's
/// wall-clock lands in the `hazard/check` span and the implication work
/// it performs is flushed into the shared counters.
pub fn check_hazards_with(
    netlist: &Netlist,
    report: &McReport,
    check: HazardCheck,
    obs: &ObsCtx,
) -> HazardReport {
    let span = obs.timers.span("hazard/check");
    let x = Expanded::build(netlist, 2);
    let mut eng = ImpEngine::new(&x);

    let mut robust = Vec::new();
    let mut demoted = Vec::new();
    let mut v0 = vec![V3::X; netlist.num_nodes()];
    let mut v1 = vec![V3::X; netlist.num_nodes()];

    for (i, j) in report.multi_cycle_pairs() {
        let mut hazardous = false;
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let cp = eng.checkpoint();
            let consistent = eng
                .assign(x.ff_at(i, 0), a)
                .and_then(|()| eng.assign(x.ff_at(i, 1), !a))
                .and_then(|()| eng.assign(x.ff_at(j, 1), b))
                // The pair satisfies the MC condition, so the sink holds:
                .and_then(|()| eng.assign(x.ff_at(j, 2), b))
                .and_then(|()| eng.propagate())
                .is_ok();
            if consistent {
                for (id, _) in netlist.nodes() {
                    v0[id.index()] = eng.value(x.value_of(0, id));
                    v1[id.index()] = eng.value(x.value_of(1, id));
                }
                if glitch_path_exists(netlist, i, j, &v0, &v1, check) {
                    hazardous = true;
                }
            }
            eng.backtrack(cp);
            if hazardous {
                break;
            }
        }
        if hazardous {
            demoted.push((i, j));
        } else {
            robust.push((i, j));
        }
    }

    obs.metrics.implications.add(eng.implications());
    obs.metrics.contradictions.add(eng.contradictions());
    HazardReport {
        check,
        robust,
        demoted,
        elapsed: span.stop(),
    }
}

/// Searches for a potentially hazardous path from FF `i`'s output to FF
/// `j`'s D input, given the settled node values of the cycle before
/// (`v0`) and after (`v1`) the transition edge (indexed by
/// [`NodeId::index`]).
///
/// The two criteria sit on opposite sides of the exact (delay-dependent)
/// hazard condition. An edge `f → g` is traversable when:
///
/// * **Sensitization** — every side input of `g` is *provably* implied to
///   settle at the non-controlling value (frame-1 value definite and
///   non-controlling). A side whose settled value is unknown blocks: the
///   criterion demotes only pairs with a demonstrably statically
///   sensitized path, which is why it is a lower bound that can miss real
///   hazards (the paper's Fig.4 caveat — the unknown first-cycle values
///   mean a "blocked" side may in fact let a glitch through when some
///   other relaxed pair perturbs it).
/// * **Co-sensitization** — blocked only when `g`'s settled output is
///   provably the controlled value while the on-path edge provably
///   settles non-controlling (the path edge then cannot be the
///   co-sensitizing one). Side-input values are deliberately ignored —
///   the paper's Fig.4 path stays co-sensitizable even though a side
///   input carries a controlling value. Unknowns never block — the
///   conservative upper bound.
///
/// XOR/XNOR/NOT/BUF gates have no controlling value and never block either
/// criterion. Since traversability of an edge does not depend on the path
/// taken to reach it, existence of a fully traversable path is plain BFS
/// reachability — linear, no path enumeration.
pub fn glitch_path_exists(
    netlist: &Netlist,
    i: usize,
    j: usize,
    v0: &[V3],
    v1: &[V3],
    check: HazardCheck,
) -> bool {
    let src = netlist.dffs()[i];
    let dst = netlist.ff_d_input(j);
    if src == dst {
        // A direct wire: the source transition arrives unfiltered.
        return true;
    }

    let mut reached = vec![false; netlist.num_nodes()];
    let mut queue = VecDeque::new();
    reached[src.index()] = true;
    queue.push_back(src);

    while let Some(f) = queue.pop_front() {
        for &g in netlist.fanouts(f) {
            if !netlist.node(g).kind().is_gate() || reached[g.index()] {
                continue;
            }
            if edge_traversable(netlist, f, g, v0, v1, check) {
                if g == dst {
                    return true;
                }
                reached[g.index()] = true;
                queue.push_back(g);
            }
        }
    }
    false
}

fn edge_traversable(
    netlist: &Netlist,
    f: NodeId,
    g: NodeId,
    v0: &[V3],
    v1: &[V3],
    check: HazardCheck,
) -> bool {
    let node = netlist.node(g);
    let kind = node.kind().gate_kind().expect("checked gate");
    let Some(c) = kind.controlling_value() else {
        return true; // parity/unary gates never block either criterion
    };
    let controlled = kind.controlled_output().expect("and/or family");
    match check {
        HazardCheck::Sensitization => {
            // Provable static sensitization: every side input implied to
            // settle at the non-controlling value. An unknown side cannot
            // be *shown* non-controlling, so it blocks — this is what
            // makes the criterion a lower bound that can miss hazards.
            node.fanins()
                .iter()
                .filter(|&&s| s != f)
                .all(|&s| v1[s.index()] == V3::from(!c))
        }
        HazardCheck::CoSensitization => {
            // Pure co-sensitization (side values deliberately ignored — the
            // paper's Fig.4 keeps the path co-sensitizable even though a
            // side input carries a controlling value): a gate whose settled
            // output is the controlled value must receive the controlling
            // value from the on-path edge.
            let _ = v0;
            !(v1[g.index()] == V3::from(controlled) && v1[f.index()] == V3::from(!c))
        }
    }
}

/// The dependency report of the sensitization check (the paper's Section
/// 5.2 caveat, formalized).
///
/// A pair validated by static sensitization is only safe *conditionally*:
/// each blocked path relies on some side input holding its implied
/// controlling value in time. If the flip-flops driving that side input
/// reach the same sink through their own multi-cycle pairs and those
/// constraints are relaxed too, the blockade may arrive late and the
/// hazard can materialize — the paper's Fig.4 scenario. Survivors of the
/// co-sensitization check carry no such conditions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensitizationDependencies {
    /// For each sensitization-robust pair `(i, j)`, the other multi-cycle
    /// pairs `(k, j)` whose relaxation could invalidate its robustness
    /// (the `k` are FFs feeding a provably-controlling blocking side
    /// input on some otherwise-reachable path). Pairs with an empty list
    /// are unconditionally robust under the sensitization criterion.
    pub deps: Vec<PairDependencies>,
}

/// A robust pair together with the pairs its robustness depends on.
pub type PairDependencies = ((usize, usize), Vec<(usize, usize)>);

/// Computes, for every sensitization-robust multi-cycle pair, the set of
/// other multi-cycle pairs its robustness depends on (see
/// [`SensitizationDependencies`]).
///
/// For each robust pair and each consistent scenario, the glitch BFS is
/// replayed; whenever an edge is blocked by a side input whose settled
/// value is *provably controlling*, the FFs in that side's fan-in cone
/// are recorded. A recorded FF `k` contributes a dependency edge to
/// `(k, j)` when `(k, j)` is itself a multi-cycle pair of the report —
/// exactly the "if a path from B to C is also detected as a multi-cycle
/// path" condition of the paper.
pub fn sensitization_dependencies(
    netlist: &Netlist,
    report: &McReport,
) -> SensitizationDependencies {
    let x = Expanded::build(netlist, 2);
    let mut eng = ImpEngine::new(&x);
    let mc: std::collections::HashSet<(usize, usize)> =
        report.multi_cycle_pairs().into_iter().collect();
    let robust = check_hazards(netlist, report, HazardCheck::Sensitization).robust;

    let mut v0 = vec![V3::X; netlist.num_nodes()];
    let mut v1 = vec![V3::X; netlist.num_nodes()];
    let mut deps = Vec::with_capacity(robust.len());

    for &(i, j) in &robust {
        let mut blocking_ffs: Vec<usize> = Vec::new();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let cp = eng.checkpoint();
            let consistent = eng
                .assign(x.ff_at(i, 0), a)
                .and_then(|()| eng.assign(x.ff_at(i, 1), !a))
                .and_then(|()| eng.assign(x.ff_at(j, 1), b))
                .and_then(|()| eng.assign(x.ff_at(j, 2), b))
                .and_then(|()| eng.propagate())
                .is_ok();
            if consistent {
                for (id, _) in netlist.nodes() {
                    v0[id.index()] = eng.value(x.value_of(0, id));
                    v1[id.index()] = eng.value(x.value_of(1, id));
                }
                collect_blocking_sides(netlist, i, j, &v1, &mut blocking_ffs);
            }
            eng.backtrack(cp);
        }
        blocking_ffs.sort_unstable();
        blocking_ffs.dedup();
        let pair_deps: Vec<(usize, usize)> = blocking_ffs
            .into_iter()
            .filter(|&k| k != i && mc.contains(&(k, j)))
            .map(|k| (k, j))
            .collect();
        deps.push(((i, j), pair_deps));
    }

    SensitizationDependencies { deps }
}

/// Scans the source→sink path cone and records, for every potential side
/// input that is provably settled at its gate's controlling value, the FFs
/// feeding it. Conservative: every gate on *some* structural path is
/// examined, whether or not the glitch provably reaches it — the report is
/// a superset of the load-bearing blockades, which is the safe direction
/// for a "these constraints interact" warning.
fn collect_blocking_sides(netlist: &Netlist, i: usize, j: usize, v1: &[V3], out: &mut Vec<usize>) {
    let cone = netlist.path_cone(i, j);
    let mut in_cone = vec![false; netlist.num_nodes()];
    for &n in &cone {
        in_cone[n.index()] = true;
    }
    for &g in &cone {
        let node = netlist.node(g);
        let Some(kind) = node.kind().gate_kind() else {
            continue;
        };
        let Some(c) = kind.controlling_value() else {
            continue;
        };
        for (pos, &side) in node.fanins().iter().enumerate() {
            // `side` is a potential side input iff some *other* fanin of
            // this gate lies on a path (is in the cone).
            let has_on_path_sibling = node
                .fanins()
                .iter()
                .enumerate()
                .any(|(k, &f)| k != pos && in_cone[f.index()]);
            if has_on_path_sibling && v1[side.index()] == V3::from(c) {
                let (ffs, _) = netlist.cone_sources(side);
                out.extend(ffs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, McConfig};
    use mcp_gen::circuits;

    #[test]
    fn fig3_pair_ff3_ff2_is_demoted_by_both_checks() {
        // The paper's Section 5.1 example: (FF3, FF2) satisfies the MC
        // condition but the EN2 transition can glitch through the
        // decomposed MUX2 into FF2.
        let nl = circuits::fig3();
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        assert!(
            report.multi_cycle_pairs().contains(&(2, 1)),
            "(FF3,FF2) must be MC before hazard checking"
        );

        for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
            let hz = check_hazards(&nl, &report, check);
            assert!(
                hz.demoted.contains(&(2, 1)),
                "{check:?} must demote (FF3,FF2): demoted={:?}",
                hz.demoted
            );
        }
    }

    #[test]
    fn hazard_report_partitions_mc_pairs() {
        let nl = circuits::fig3();
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        let mc = report.multi_cycle_pairs();
        for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
            let hz = check_hazards(&nl, &report, check);
            let mut all: Vec<_> = hz.robust.iter().chain(hz.demoted.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(all, mc, "{check:?} must partition the MC pairs");
        }
    }

    #[test]
    fn cosensitization_demotes_at_least_as_much_as_sensitization() {
        // Co-sensitization is an upper bound on sensitization: every
        // sensitizable path is co-sensitizable, so the co-sens check flags
        // a superset of hazards (Table 3's ordering).
        for nl in [circuits::fig1(), circuits::fig3()] {
            let report = analyze(&nl, &McConfig::default()).expect("analyze");
            let sens = check_hazards(&nl, &report, HazardCheck::Sensitization);
            let cosens = check_hazards(&nl, &report, HazardCheck::CoSensitization);
            for pair in &sens.demoted {
                assert!(
                    cosens.demoted.contains(pair),
                    "{pair:?} demoted by sens but not co-sens"
                );
            }
            assert!(cosens.robust.len() <= sens.robust.len());
        }
    }

    #[test]
    fn fig4_distinguishes_the_two_criteria() {
        // The paper's Fig.4: a transitioning A through N = NOT(A) into
        // C = AND(N, B) with B settled at the controlling value 0. The
        // path is NOT statically sensitizable (B blocks it) but IS
        // statically co-sensitizable (C is controlled and N can present
        // the controlling value).
        let nl = circuits::fig4_fragment();
        let n = nl.num_nodes();
        let mut v0 = vec![V3::X; n];
        let mut v1 = vec![V3::X; n];
        let qa = nl.find_node("QA").unwrap();
        let qb = nl.find_node("QB").unwrap();
        let c = nl.find_node("C").unwrap();
        // A falls 1 -> 0; B stable 0; C settled 0.
        v0[qa.index()] = V3::One;
        v1[qa.index()] = V3::Zero;
        v0[qb.index()] = V3::Zero;
        v1[qb.index()] = V3::Zero;
        v0[c.index()] = V3::Zero;
        v1[c.index()] = V3::Zero;

        let i = nl.ff_index(qa).unwrap();
        let j = nl.ff_index(nl.find_node("QC").unwrap()).unwrap();
        assert!(!glitch_path_exists(
            &nl,
            i,
            j,
            &v0,
            &v1,
            HazardCheck::Sensitization
        ));
        assert!(glitch_path_exists(
            &nl,
            i,
            j,
            &v0,
            &v1,
            HazardCheck::CoSensitization
        ));
    }

    #[test]
    fn side_input_settling_noncontrolling_sensitizes() {
        let nl = circuits::fig4_fragment();
        let n = nl.num_nodes();
        let mut v0 = vec![V3::X; n];
        let mut v1 = vec![V3::X; n];
        let qb = nl.find_node("QB").unwrap();
        // B settles at the non-controlling 1 (its first-cycle value is
        // irrelevant — the paper treats it as unknown): the A-path is
        // statically sensitizable, so both criteria flag a hazard.
        v0[qb.index()] = V3::Zero;
        v1[qb.index()] = V3::One;
        let i = nl.ff_index(nl.find_node("QA").unwrap()).unwrap();
        let j = nl.ff_index(nl.find_node("QC").unwrap()).unwrap();
        assert!(glitch_path_exists(
            &nl,
            i,
            j,
            &v0,
            &v1,
            HazardCheck::Sensitization
        ));
        assert!(glitch_path_exists(
            &nl,
            i,
            j,
            &v0,
            &v1,
            HazardCheck::CoSensitization
        ));
    }

    /// A Fig.4-style circuit where a robust pair's blockade depends on
    /// another multi-cycle pair: QC's capture is gated by CP =
    /// decode(counter == 3); QA and QB load at phase 0 and reconverge at
    /// QC's data. C1 toggles only into counter states 2 and 0, so (C1, QC)
    /// is itself multi-cycle — and it is exactly the FF whose implied
    /// value blocks (QA, QC)'s glitch paths.
    fn dependency_circuit() -> mcp_netlist::Netlist {
        use mcp_logic::GateKind;
        use mcp_netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("deps");
        let c0 = b.dff("C0");
        let c1 = b.dff("C1");
        let t0 = b.gate("T0", GateKind::Not, [c0]).unwrap();
        let t1 = b.gate("T1", GateKind::Xor, [c1, c0]).unwrap();
        b.set_dff_input(c0, t0).unwrap();
        b.set_dff_input(c1, t1).unwrap();
        let n0 = b.gate("N0", GateKind::Not, [c0]).unwrap();
        let n1 = b.gate("N1", GateKind::Not, [c1]).unwrap();
        let ld = b.gate("LD", GateKind::And, [n0, n1]).unwrap(); // counter == 0
        let cp = b.gate("CP", GateKind::And, [c0, c1]).unwrap(); // counter == 3

        let ina = b.input("INA");
        let inb = b.input("INB");
        let qa = b.dff("QA");
        let ma = b.mux("MA", ld, qa, ina).unwrap();
        b.set_dff_input(qa, ma).unwrap();
        let qb = b.dff("QB");
        let mb = b.mux("MB", ld, qb, inb).unwrap();
        b.set_dff_input(qb, mb).unwrap();

        let na = b.gate("NA", GateKind::Not, [qa]).unwrap();
        let data = b.gate("DATA", GateKind::And, [na, qb]).unwrap();
        let qc = b.dff("QC");
        let mc = b.mux("MC", cp, qc, data).unwrap();
        b.set_dff_input(qc, mc).unwrap();
        b.mark_output(qc);
        b.finish().unwrap()
    }

    #[test]
    fn dependencies_identify_the_load_bearing_mc_pair() {
        let nl = dependency_circuit();
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        let ff = |name: &str| nl.ff_index(nl.find_node(name).unwrap()).unwrap();
        let (c0, c1, qa, qb, qc) = (ff("C0"), ff("C1"), ff("QA"), ff("QB"), ff("QC"));

        // Ground truth: (QA,QC), (QB,QC) and (C1,QC) are multi-cycle;
        // (C0,QC) is not (C0 toggles into the capture state 3).
        let mc = report.multi_cycle_pairs();
        assert!(mc.contains(&(qa, qc)), "mc = {mc:?}");
        assert!(mc.contains(&(qb, qc)));
        assert!(mc.contains(&(c1, qc)));
        assert!(!mc.contains(&(c0, qc)));

        let deps = sensitization_dependencies(&nl, &report);
        let of = |pair: (usize, usize)| -> Option<&Vec<(usize, usize)>> {
            deps.deps.iter().find(|(p, _)| *p == pair).map(|(_, d)| d)
        };
        // (QA, QC) must be sensitization-robust (its paths are blocked by
        // CP = 0 and the unknown QB), and its robustness must be recorded
        // as depending on (C1, QC) — the Fig.4 dependency.
        let qa_deps = of((qa, qc)).expect("(QA,QC) robust");
        assert!(
            qa_deps.contains(&(c1, qc)),
            "(QA,QC) should depend on (C1,QC): {qa_deps:?}"
        );
        assert!(
            !qa_deps.contains(&(c0, qc)),
            "(C0,QC) is single-cycle, not a dependency"
        );
    }

    #[test]
    fn pinned_chain_dependencies_point_only_at_the_shared_counter() {
        // The pinned-transfer structure's blockades are the counter-decoded
        // enables: any recorded dependency must be a counter-to-sink pair.
        let nl = mcp_gen::generators::composite(
            "pinned",
            &mcp_gen::generators::CompositeConfig {
                seed: 3,
                pinned_chains: 2,
                ..Default::default()
            },
        );
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        let deps = sensitization_dependencies(&nl, &report);
        for r in 0..2 {
            let s = nl
                .ff_index(nl.find_node(&format!("PN{r}_S")).unwrap())
                .unwrap();
            let t = nl
                .ff_index(nl.find_node(&format!("PN{r}_T")).unwrap())
                .unwrap();
            let entry = deps.deps.iter().find(|(p, _)| *p == (s, t));
            let entry = entry.expect("pinned pair is robust").1.clone();
            for &(k, sink) in &entry {
                assert_eq!(sink, t);
                assert!(
                    nl.node(nl.dffs()[k]).name().starts_with("PN_CTR_"),
                    "unexpected dependency FF {}",
                    nl.node(nl.dffs()[k]).name()
                );
            }
        }
    }

    #[test]
    fn all_x_values_split_the_criteria() {
        // With nothing implied, sensitization cannot *prove* any path
        // sensitized (unknown sides block), while co-sensitization cannot
        // prove any path blocked (unknowns traverse) — the two bounds at
        // their widest.
        let nl = circuits::fig4_fragment();
        let v0 = vec![V3::X; nl.num_nodes()];
        let v1 = vec![V3::X; nl.num_nodes()];
        let i = nl.ff_index(nl.find_node("QA").unwrap()).unwrap();
        let j = nl.ff_index(nl.find_node("QC").unwrap()).unwrap();
        assert!(!glitch_path_exists(
            &nl,
            i,
            j,
            &v0,
            &v1,
            HazardCheck::Sensitization
        ));
        assert!(glitch_path_exists(
            &nl,
            i,
            j,
            &v0,
            &v1,
            HazardCheck::CoSensitization
        ));
    }
}
