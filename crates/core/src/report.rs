//! Analysis results and per-step statistics.

use mcp_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The analysis step that settled a pair's classification — the paper's
/// Table 2 attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Step {
    /// Step 1: no combinational path exists (only possible for pairs never
    /// in the candidate set; present for completeness of reports).
    Structural,
    /// Step 2: random-pattern simulation found a concrete violation.
    RandomSim,
    /// Step 4 (implication): the implication procedure alone decided every
    /// assignment.
    Implication,
    /// Step 4 (search): at least one assignment needed the backtrack
    /// search (or, for the baseline engines, the SAT/BDD query).
    Atpg,
}

/// Classification of one FF pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairClass {
    /// A violating pattern exists (or was simulated): some path must make
    /// the hop in a single cycle.
    SingleCycle {
        /// The step that found the violation.
        by: Step,
    },
    /// Proven: whenever the source transitions, the sink provably holds
    /// through the configured cycle budget.
    MultiCycle {
        /// The step that completed the proof.
        by: Step,
    },
    /// The engine gave up within its resource limits (backtrack limit, BDD
    /// node budget). Treat as single-cycle for timing safety.
    Unknown,
}

impl PairClass {
    /// Whether this pair is proven multi-cycle.
    pub fn is_multi(&self) -> bool {
        matches!(self, PairClass::MultiCycle { .. })
    }
}

/// The sim-kernel tier that actually ran the random-pattern prefilter —
/// the post-fallback reality, recorded in [`StepStats::sim_kernel`] and
/// the `stats` table. More specific than the configured
/// `--sim-kernel`: a jit request on a non-x86-64 host lands on `Fused`,
/// and a successful jit records which emitter fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimKernelTier {
    /// Native code from the AVX2 emitter.
    JitAvx2,
    /// Native code from the scalar-`u64` emitter.
    JitScalar,
    /// The fused-tape interpreter.
    Fused,
    /// The unfused tape interpreter.
    Tape,
    /// The graph-walking 64-lane reference simulator.
    Reference,
}

impl SimKernelTier {
    /// Maps a `FilterStats::kernel` tag to the tier, `None` for an
    /// unrecognized tag (future tiers in old binaries).
    pub fn from_tag(tag: &str) -> Option<SimKernelTier> {
        match tag {
            "jit-avx2" => Some(SimKernelTier::JitAvx2),
            "jit-scalar" => Some(SimKernelTier::JitScalar),
            "fused" => Some(SimKernelTier::Fused),
            "tape" => Some(SimKernelTier::Tape),
            "reference" => Some(SimKernelTier::Reference),
            _ => None,
        }
    }

    /// The canonical tag, inverse of [`from_tag`](Self::from_tag).
    pub fn tag(self) -> &'static str {
        match self {
            SimKernelTier::JitAvx2 => "jit-avx2",
            SimKernelTier::JitScalar => "jit-scalar",
            SimKernelTier::Fused => "fused",
            SimKernelTier::Tape => "tape",
            SimKernelTier::Reference => "reference",
        }
    }
}

/// One classified pair: FF indices plus verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairResult {
    /// Source FF index.
    pub src: usize,
    /// Sink FF index.
    pub dst: usize,
    /// Verdict.
    pub class: PairClass,
}

/// Counters for the paper's Table 2: pairs resolved and time spent per
/// step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Topologically connected pairs (Table 1 `FF-pair`).
    pub candidates: usize,
    /// Multi-cycle pairs resolved by the static dataflow pre-pass (the
    /// sink's D input is provably constant, so it can never transition).
    #[serde(default)]
    pub multi_by_static: usize,
    /// Single-cycle pairs disproven by random simulation.
    pub single_by_sim: usize,
    /// Single-cycle pairs found by the implication procedure (an implied
    /// violation, confirmed justifiable).
    pub single_by_implication: usize,
    /// Single-cycle pairs found by the backtrack search / baseline query.
    pub single_by_atpg: usize,
    /// Multi-cycle pairs proven by implication alone.
    pub multi_by_implication: usize,
    /// Multi-cycle pairs needing the search / baseline query.
    pub multi_by_atpg: usize,
    /// Pairs the engine could not settle.
    pub unknown: usize,
    /// 64-pattern words simulated by the prefilter.
    pub sim_words: u64,
    /// Kernel tier that ran the prefilter, `None` when the sim filter
    /// was off (or in reports from before the tier ladder existed).
    /// Host-dependent (the jit tier falls back per host), so
    /// [`McReport::canonical`] clears it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sim_kernel: Option<SimKernelTier>,
    /// Wall-clock spent in the static dataflow pre-pass.
    #[serde(default)]
    pub time_static: Duration,
    /// Wall-clock spent in the simulation prefilter.
    pub time_sim: Duration,
    /// Wall-clock spent in expansion + static learning.
    pub time_prepare: Duration,
    /// Wall-clock spent in the pair loop (implication + search), summed
    /// across worker threads.
    pub time_pairs: Duration,
    /// End-to-end wall-clock.
    pub time_total: Duration,
}

impl StepStats {
    /// Total multi-cycle pairs.
    pub fn multi_total(&self) -> usize {
        self.multi_by_static + self.multi_by_implication + self.multi_by_atpg
    }

    /// Total single-cycle pairs.
    pub fn single_total(&self) -> usize {
        self.single_by_sim + self.single_by_implication + self.single_by_atpg
    }
}

/// The result of [`analyze`](crate::analyze): per-pair verdicts plus
/// aggregated statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McReport {
    /// Circuit name the report describes.
    pub circuit: String,
    /// Per-pair verdicts for every topologically connected pair analyzed.
    pub pairs: Vec<PairResult>,
    /// Aggregated per-step statistics.
    pub stats: StepStats,
    /// Observability snapshot at the end of the run: engine counters plus
    /// span timings (see [`mcp_obs`]).
    pub metrics: MetricsSnapshot,
}

impl McReport {
    pub(crate) fn new(
        circuit: String,
        pairs: Vec<PairResult>,
        stats: StepStats,
        metrics: MetricsSnapshot,
    ) -> Self {
        McReport {
            circuit,
            pairs,
            stats,
            metrics,
        }
    }

    /// The strategy-independent projection of the report: a copy with
    /// every wall-clock field zeroed, the span-timing map emptied, the
    /// engine *effort* counters (implication/ATPG/SAT/BDD work, slice
    /// sizes, learned-implication counts, simulated word counts) cleared,
    /// and multi-cycle attribution folded into a single bucket.
    ///
    /// Everything that remains — verdicts, per-step pair counts, the
    /// input-side counters (lint) — describes *what was decided about
    /// the circuit*, not *how hard the engine worked for it*, so two
    /// runs differing only in thread count, scheduling policy, cone
    /// slicing (`McConfig::slice`), or the static dataflow pre-pass
    /// (`McConfig::static_classify`) serialize to **byte-identical**
    /// JSON. Effort counters cannot share that property across slice
    /// modes (a sliced engine examines fewer nodes by design), and word
    /// counts cannot share it across static modes (statically resolved
    /// pairs let the prefilter's alive set drain sooner); they remain
    /// available — and still deterministic for a fixed config — in
    /// [`McReport::metrics`].
    ///
    /// Multi-cycle verdicts are attribution-folded (`by` rewritten to
    /// [`Step::Atpg`], the per-step multi counts summed into one) because
    /// the *verdict* is mode-independent but the resolving step is not:
    /// a provably frozen sink is `multi_by_static` with the pre-pass on
    /// and `multi_by_implication`/`multi_by_atpg` with it off. Single
    /// attribution needs no folding — the pre-pass only ever proves
    /// multi.
    pub fn canonical(&self) -> McReport {
        let mut r = self.clone();
        r.stats.time_static = Duration::ZERO;
        r.stats.time_sim = Duration::ZERO;
        r.stats.time_prepare = Duration::ZERO;
        r.stats.time_pairs = Duration::ZERO;
        r.stats.time_total = Duration::ZERO;
        r.stats.sim_words = 0;
        // The tier is a host/flag fact, not a circuit fact: the same
        // run jits on one machine and falls back to `fused` on another.
        r.stats.sim_kernel = None;
        r.stats.multi_by_atpg = r.stats.multi_total();
        r.stats.multi_by_static = 0;
        r.stats.multi_by_implication = 0;
        for p in &mut r.pairs {
            if let PairClass::MultiCycle { by } = &mut p.class {
                *by = Step::Atpg;
            }
        }
        r.metrics.spans.clear();
        let c = &r.metrics.counters;
        r.metrics.counters = mcp_obs::Counters {
            sim_pairs_dropped: c.sim_pairs_dropped,
            lint_rules_run: c.lint_rules_run,
            lint_violations: c.lint_violations,
            lint_nodes_visited: c.lint_nodes_visited,
            ..mcp_obs::Counters::default()
        };
        r
    }

    /// The verdict for `(src, dst)`, or `None` when the pair is not
    /// topologically connected (hence trivially multi-cycle / vacuous).
    pub fn class_of(&self, src: usize, dst: usize) -> Option<PairClass> {
        self.pairs
            .iter()
            .find(|p| p.src == src && p.dst == dst)
            .map(|p| p.class)
    }

    /// All proven multi-cycle pairs, sorted.
    pub fn multi_cycle_pairs(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .pairs
            .iter()
            .filter(|p| p.class.is_multi())
            .map(|p| (p.src, p.dst))
            .collect();
        v.sort_unstable();
        v
    }

    /// All single-cycle pairs, sorted.
    pub fn single_cycle_pairs(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .pairs
            .iter()
            .filter(|p| matches!(p.class, PairClass::SingleCycle { .. }))
            .map(|p| (p.src, p.dst))
            .collect();
        v.sort_unstable();
        v
    }

    /// All unknown pairs, sorted.
    pub fn unknown_pairs(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .pairs
            .iter()
            .filter(|p| matches!(p.class, PairClass::Unknown))
            .map(|p| (p.src, p.dst))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> McReport {
        McReport::new(
            "c".to_owned(),
            vec![
                PairResult {
                    src: 0,
                    dst: 1,
                    class: PairClass::MultiCycle {
                        by: Step::Implication,
                    },
                },
                PairResult {
                    src: 1,
                    dst: 0,
                    class: PairClass::SingleCycle {
                        by: Step::RandomSim,
                    },
                },
                PairResult {
                    src: 2,
                    dst: 2,
                    class: PairClass::Unknown,
                },
            ],
            StepStats::default(),
            MetricsSnapshot::default(),
        )
    }

    #[test]
    fn lookup_and_partitions() {
        let r = sample();
        assert!(r.class_of(0, 1).unwrap().is_multi());
        assert_eq!(r.class_of(9, 9), None);
        assert_eq!(r.multi_cycle_pairs(), vec![(0, 1)]);
        assert_eq!(r.single_cycle_pairs(), vec![(1, 0)]);
        assert_eq!(r.unknown_pairs(), vec![(2, 2)]);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let r = sample();
        let json = serde_json::to_string(&r).expect("serialize");
        let back: McReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.pairs.len(), 3);
        assert_eq!(back.multi_cycle_pairs(), r.multi_cycle_pairs());
        assert_eq!(back.class_of(1, 0), r.class_of(1, 0));
    }

    #[test]
    fn canonical_zeroes_clocks_spans_and_effort_counters() {
        let mut r = sample();
        r.stats.time_total = Duration::from_millis(5);
        r.stats.time_pairs = Duration::from_millis(3);
        r.metrics.spans.insert(
            "analyze".to_owned(),
            mcp_obs::SpanStat {
                total: Duration::from_millis(5),
                count: 1,
            },
        );
        r.metrics.counters.implications = 42;
        r.metrics.counters.slice_builds = 7;
        r.metrics.counters.sim_words = 9;
        r.metrics.counters.static_resolved = 2;
        r.metrics.counters.lint_rules_run = 4;
        r.metrics.counters.sim_fused_ops = 11;
        r.metrics.counters.jit_compiles = 1;
        r.metrics.counters.jit_bytes = 640;
        r.metrics.counters.jit_batches = 6;
        r.stats.sim_words = 9;
        r.stats.sim_kernel = Some(SimKernelTier::JitAvx2);
        r.stats.multi_by_implication = 1;
        r.stats.multi_by_static = 2;
        let c = r.canonical();
        assert_eq!(c.stats.time_total, Duration::ZERO);
        assert_eq!(c.stats.time_pairs, Duration::ZERO);
        assert!(c.metrics.spans.is_empty());
        // Engine effort varies with the slicing strategy, word counts
        // with the static pre-pass: projected out.
        assert_eq!(c.metrics.counters.implications, 0);
        assert_eq!(c.metrics.counters.slice_builds, 0);
        assert_eq!(c.metrics.counters.sim_words, 0);
        assert_eq!(c.metrics.counters.static_resolved, 0);
        assert_eq!(c.stats.sim_words, 0);
        // The kernel tier and its effort counters are host facts (the
        // jit falls back per host): projected out.
        assert_eq!(c.stats.sim_kernel, None);
        assert_eq!(c.metrics.counters.sim_fused_ops, 0);
        assert_eq!(c.metrics.counters.jit_compiles, 0);
        assert_eq!(c.metrics.counters.jit_bytes, 0);
        assert_eq!(c.metrics.counters.jit_batches, 0);
        // Multi attribution folds into one bucket; the verdict survives.
        assert_eq!(c.stats.multi_by_atpg, 3);
        assert_eq!(c.stats.multi_by_static, 0);
        assert_eq!(c.stats.multi_by_implication, 0);
        assert_eq!(c.stats.multi_total(), r.stats.multi_total());
        assert_eq!(
            c.class_of(0, 1),
            Some(PairClass::MultiCycle { by: Step::Atpg }),
            "multi `by` folds to one representative"
        );
        assert_eq!(c.class_of(1, 0), r.class_of(1, 0), "single `by` survives");
        assert_eq!(c.multi_cycle_pairs(), r.multi_cycle_pairs());
        // Input-side lint work survives.
        assert_eq!(c.metrics.counters.lint_rules_run, 4);
        assert_eq!(c.circuit, r.circuit);
    }

    #[test]
    fn step_totals() {
        let s = StepStats {
            single_by_sim: 10,
            single_by_implication: 2,
            single_by_atpg: 1,
            multi_by_implication: 4,
            multi_by_atpg: 1,
            ..StepStats::default()
        };
        assert_eq!(s.single_total(), 13);
        assert_eq!(s.multi_total(), 5);
    }
}
