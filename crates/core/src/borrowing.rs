//! Condition-2 candidates: timing-budget borrowing (paper Section 3.1).
//!
//! The paper's full multi-cycle-pair definition has a second disjunct the
//! implemented analysis deliberately omits: a pair `(FFi, FFj)` also
//! qualifies when the transition *does* reach the sink but
//!
//! > (a) the transition at the sink is never observed at any primary
//! > output, and (b) for any FF `FFk`, `(FFj, FFk)` is a multi-cycle FF
//! > pair under the assumption that a transition is propagated from `FFi`
//! > to `FFj` in the previous clock cycle.
//!
//! The paper: *"Condition 2 is difficult to check because the analysis may
//! require traversal of many states. In addition ... can be viewed as some
//! kind of timing budget borrowing from the subsequent FF pair. Thus we
//! consider only Condition 1 in this paper."*
//!
//! This module implements the *candidate screen* for Condition 2: the
//! single-cycle pairs whose sink satisfies a **structural** version of (a)
//! and whose outgoing pairs all satisfy Condition 1 — i.e. exactly the
//! pairs on which the expensive nested analysis could still win. The
//! screen is sound as a screen (a pair failing it cannot satisfy
//! Condition 2 for structural reasons) but candidates are **not** proven
//! multi-cycle: they are reported for targeted follow-up, not folded into
//! [`McReport`] verdicts.

use crate::report::{McReport, PairClass};
use mcp_netlist::Netlist;
use std::collections::VecDeque;

/// Finds the Condition-2 candidates of a report (see [module docs](self)).
///
/// A single-cycle pair `(i, j)` qualifies when:
///
/// 1. `FFj`'s output has no combinational path to any primary output
///    (structural under-approximation of "the transition at the sink is
///    never observed at any primary output"), and
/// 2. every connected outgoing pair `(j, k)` is classified multi-cycle —
///    the subsequent stage has budget to lend.
///
/// Returns the candidates sorted by `(i, j)`.
pub fn condition2_candidates(netlist: &Netlist, report: &McReport) -> Vec<(usize, usize)> {
    let sink_ok: Vec<bool> = (0..netlist.num_ffs())
        .map(|j| !reaches_primary_output(netlist, j) && outgoing_all_multi(netlist, report, j))
        .collect();

    let mut out: Vec<(usize, usize)> = report
        .pairs
        .iter()
        .filter(|p| matches!(p.class, PairClass::SingleCycle { .. }))
        .filter(|p| sink_ok[p.dst])
        .map(|p| (p.src, p.dst))
        .collect();
    out.sort_unstable();
    out
}

/// Whether FF `j`'s output combinationally reaches a primary output.
fn reaches_primary_output(netlist: &Netlist, j: usize) -> bool {
    let src = netlist.dffs()[j];
    let mut seen = vec![false; netlist.num_nodes()];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back(src);
    while let Some(n) = queue.pop_front() {
        if netlist.outputs().contains(&n) {
            return true;
        }
        for &o in netlist.fanouts(n) {
            if netlist.node(o).kind().is_gate() && !seen[o.index()] {
                seen[o.index()] = true;
                queue.push_back(o);
            }
        }
    }
    false
}

/// Whether every structurally connected outgoing pair `(j, k)` is
/// classified multi-cycle. Pairs missing from the report (e.g. self pairs
/// excluded under \[9\]'s convention) count as unknown and disqualify —
/// the conservative direction. A sink with no outgoing pairs at all
/// trivially satisfies (b): nothing downstream consumes it, the strongest
/// borrowing case.
fn outgoing_all_multi(netlist: &Netlist, report: &McReport, j: usize) -> bool {
    netlist
        .connected_ff_pairs()
        .into_iter()
        .filter(|&(s, _)| s == j)
        .all(|(s, k)| report.class_of(s, k).map(|c| c.is_multi()).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, McConfig};
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;

    /// A three-stage chain S → J → K where only K is observable:
    /// S is free-running (S.D = IN); J loads S in counter phase 0 and
    /// holds otherwise, so (S, J) is single-cycle by Condition 1 (S can
    /// toggle right at J's capture window) while J's own toggles are
    /// counter-synchronized; K captures J in phase 2 — one phase after
    /// J can have toggled the counter sits at 1, so (J, K) is multi-cycle.
    /// (S, J) is then exactly a Condition-2 candidate: J is invisible to
    /// the primary output and its only consumer has budget to lend.
    fn borrowing_circuit() -> mcp_netlist::Netlist {
        let mut b = NetlistBuilder::new("borrow");
        let input = b.input("IN");
        let s = b.dff("S");
        b.set_dff_input(s, input).unwrap();

        // 2-bit counter; LD decodes phase 0, CP decodes phase 2.
        let c0 = b.dff("C0");
        let c1 = b.dff("C1");
        let t0 = b.gate("T0", GateKind::Not, [c0]).unwrap();
        let t1 = b.gate("T1", GateKind::Xor, [c1, c0]).unwrap();
        b.set_dff_input(c0, t0).unwrap();
        b.set_dff_input(c1, t1).unwrap();
        let n0 = b.gate("N0", GateKind::Not, [c0]).unwrap();
        let n1 = b.gate("N1", GateKind::Not, [c1]).unwrap();
        let ld = b.gate("LD", GateKind::And, [n0, n1]).unwrap();
        let cp = b.gate("CP", GateKind::And, [n0, c1]).unwrap();

        let j = b.dff("J");
        let mj = b.mux("MJ", ld, j, s).unwrap();
        b.set_dff_input(j, mj).unwrap();

        let k = b.dff("K");
        let mk = b.mux("MK", cp, k, j).unwrap();
        b.set_dff_input(k, mk).unwrap();
        b.mark_output(k);
        b.finish().unwrap()
    }

    #[test]
    fn gated_unobservable_sink_is_a_candidate() {
        let nl = borrowing_circuit();
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        let ff = |n: &str| nl.ff_index(nl.find_node(n).unwrap()).unwrap();
        let (s, j, k) = (ff("S"), ff("J"), ff("K"));

        // Ground truth by condition 1: (S, J) is single-cycle (J follows S
        // every cycle); (J, K) is multi-cycle (K captures once per 4).
        assert!(!report.class_of(s, j).unwrap().is_multi());
        assert!(report.class_of(j, k).unwrap().is_multi());

        let cands = condition2_candidates(&nl, &report);
        // J is invisible to the PO and its only consumer K borrows budget:
        // (S, J) is exactly the pair Condition 2 could additionally relax.
        assert!(cands.contains(&(s, j)), "candidates: {cands:?}");
        // K drives the primary output: no pair into K may qualify.
        assert!(cands.iter().all(|&(_, dst)| dst != k));
    }

    #[test]
    fn observable_sinks_never_qualify() {
        // Make J itself a primary output: the same pair must disappear.
        let mut b = NetlistBuilder::new("obs");
        let input = b.input("IN");
        let s = b.dff("S");
        b.set_dff_input(s, input).unwrap();
        let j = b.dff("J");
        b.set_dff_input(j, s).unwrap();
        b.mark_output(j);
        let nl = b.finish().unwrap();
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        assert!(condition2_candidates(&nl, &report).is_empty());
    }

    #[test]
    fn single_cycle_consumers_disqualify_the_sink() {
        // J feeds K directly (single-cycle): no borrowing available.
        let mut b = NetlistBuilder::new("nb");
        let input = b.input("IN");
        let s = b.dff("S");
        b.set_dff_input(s, input).unwrap();
        let j = b.dff("J");
        b.set_dff_input(j, s).unwrap();
        let k = b.dff("K");
        b.set_dff_input(k, j).unwrap();
        b.mark_output(k);
        let nl = b.finish().unwrap();
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        let cands = condition2_candidates(&nl, &report);
        let ff = |n: &str| nl.ff_index(nl.find_node(n).unwrap()).unwrap();
        assert!(
            !cands.contains(&(ff("S"), ff("J"))),
            "candidates: {cands:?}"
        );
    }

    #[test]
    fn candidates_are_a_subset_of_single_cycle_pairs() {
        for nl in mcp_gen::suite::quick_suite() {
            let report = analyze(&nl, &McConfig::default()).expect("analyze");
            let singles = report.single_cycle_pairs();
            for pair in condition2_candidates(&nl, &report) {
                assert!(singles.contains(&pair), "{}: {pair:?}", nl.name());
            }
        }
    }
}
