//! The end-to-end analysis pipeline (paper Section 4.1).

use crate::config::{Engine, McConfig};
use crate::engines::{
    classify_pair_bdd, classify_pair_implication_probed, classify_pair_sat, PairProbe, Verdict,
};
use crate::report::{McReport, PairClass, PairResult, Step, StepStats};
use crate::resume::ResumePlan;
use crate::schedule::{run_items, PairFeed};
use crate::stage::{
    assign_shards, group_roots, grouped_artifact, order_hardest_first, plan_sink_groups,
    run_prefilters, step_name, ExpandedArtifact, LintedArtifact, ParsedArtifact, Prefiltered,
    PrefilteredArtifact, SinkGroup, StageTrace, VerdictRecord,
};
use mcp_atpg::SearchConfig;
use mcp_bdd::{InitStates, Ref, SymbolicFsm};
use mcp_implication::{learn, ImpEngine, LearnConfig, LearnedImplications};
use mcp_netlist::{Expanded, Netlist};
use mcp_obs::{ObsCtx, PairEvent, RunHeader, LEDGER_VERSION};
use mcp_sat::CircuitCnf;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Error produced by [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// `cycles` must be at least 2 (a "1-cycle pair" is vacuous).
    InvalidCycles {
        /// The rejected value.
        got: u32,
    },
    /// The BDD engine only supports the classic 2-cycle check.
    BddNeedsTwoCycles {
        /// The rejected value.
        got: u32,
    },
    /// The simulation lane width is not one of the supported values
    /// (64, 128, 256, 512). Reachable via `--sim-lanes` or the
    /// `MCPATH_SIM_LANES` environment variable.
    InvalidSimLanes {
        /// The rejected value.
        got: u32,
    },
    /// The pre-flight lint pass found error-level structural defects
    /// (combinational cycles, unconnected DFFs, ...). Engine verdicts on
    /// such a netlist would be meaningless; fix the netlist or disable
    /// the gate with [`McConfig::lint`]` = false`.
    CorruptNetlist {
        /// The error-level findings.
        report: mcp_lint::Diagnostics,
    },
    /// `--resume` was handed a ledger that does not belong to this run:
    /// wrong format version, different candidate pair set, or a
    /// different shard identity. Splicing verdicts across any of those
    /// boundaries would corrupt the report, so the resume is refused;
    /// rerun without `--resume` instead. (Netlist and config drift get
    /// the dedicated [`AnalyzeError::DigestMismatch`].)
    ResumeMismatch {
        /// What specifically failed to match.
        reason: String,
    },
    /// The shard spec is invalid: the index must be below the count and
    /// the count at least 1.
    InvalidShard {
        /// Requested 0-based shard index.
        index: u64,
        /// Requested shard count.
        count: u64,
    },
    /// A resume or merge ledger carries a different run-identity digest
    /// than the current invocation. Verdicts spliced across a netlist or
    /// verdict-affecting-config boundary would be meaningless, so the
    /// operation is refused — naming both digests so the two runs can be
    /// told apart.
    DigestMismatch {
        /// Which digest disagreed.
        what: DigestKind,
        /// The digest recorded in the ledger header.
        ledger: u64,
        /// The digest of the current netlist / config.
        current: u64,
    },
    /// The ledgers handed to `merge` do not form one complete,
    /// consistent sharded run: a ledger is missing its header or from a
    /// foreign run, a shard index is missing or duplicated, or a ledger
    /// carries verdicts for pairs its shard does not own.
    ShardMerge {
        /// What specifically is unsound.
        reason: String,
    },
    /// One shard ledger lacks verdicts for pairs that shard owns — the
    /// process was killed mid-run. Resume that shard to completion
    /// (`mcpath shard ... --resume`) and merge again.
    ShardIncomplete {
        /// The incomplete shard's 0-based index.
        index: u64,
        /// Owned pairs with no verdict in its ledger.
        missing: usize,
    },
    /// A cache entry exists under the expected key but is unreadable or
    /// fails its integrity check (truncated or hand-edited JSON, a
    /// payload digest that no longer matches, or an envelope naming a
    /// different stage/key than its filename). Splicing from such an
    /// entry could silently corrupt the report, so the run refuses —
    /// delete the offending file (or the whole cache directory) and
    /// rerun cold.
    CacheCorrupt {
        /// The stage whose entry is damaged.
        stage: String,
        /// What specifically failed to check out.
        reason: String,
    },
    /// The artifact cache directory could not be created, read or
    /// written.
    CacheIo {
        /// The underlying I/O failure.
        reason: String,
    },
}

/// Which run-identity digest disagreed in
/// [`AnalyzeError::DigestMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigestKind {
    /// The netlist content hash (the ledger belongs to a different
    /// circuit, or the circuit changed on disk).
    Netlist,
    /// The verdict-affecting config fingerprint
    /// ([`McConfig::fingerprint`]).
    Config,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::InvalidCycles { got } => {
                write!(f, "cycle budget must be ≥ 2, got {got}")
            }
            AnalyzeError::BddNeedsTwoCycles { got } => {
                write!(f, "the BDD engine supports cycles = 2 only, got {got}")
            }
            AnalyzeError::InvalidSimLanes { got } => {
                write!(f, "sim lanes must be one of 64, 128, 256, 512, got {got}")
            }
            AnalyzeError::CorruptNetlist { report } => {
                write!(
                    f,
                    "netlist fails structural lint with {} error(s); \
                     rerun with linting disabled to analyze anyway",
                    report.len()
                )?;
                for d in report.iter() {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            AnalyzeError::ResumeMismatch { reason } => {
                write!(f, "cannot resume from this ledger: {reason}")
            }
            AnalyzeError::InvalidShard { index, count } => {
                write!(
                    f,
                    "shard index must be below the shard count (which must be ≥ 1), \
                     got shard {index}/{count}"
                )
            }
            AnalyzeError::DigestMismatch {
                what,
                ledger,
                current,
            } => {
                let (kind, hint) = match what {
                    DigestKind::Netlist => {
                        ("netlist", "the ledger was written for a different circuit")
                    }
                    DigestKind::Config => (
                        "config",
                        "a verdict-affecting option — engine, cycles, sim filter/seed, \
                         backtracks, learning, self pairs — changed",
                    ),
                };
                write!(
                    f,
                    "{kind} mismatch: ledger digest {ledger:016x}, current {current:016x} \
                     ({hint})"
                )
            }
            AnalyzeError::ShardMerge { reason } => {
                write!(f, "cannot merge shard ledgers: {reason}")
            }
            AnalyzeError::ShardIncomplete { index, missing } => {
                write!(
                    f,
                    "shard {index} is incomplete: {missing} owned pair(s) have no verdict \
                     in its ledger; resume that shard to completion before merging"
                )
            }
            AnalyzeError::CacheCorrupt { stage, reason } => {
                write!(
                    f,
                    "corrupt cache entry for stage `{stage}`: {reason}; \
                     delete the entry (or the cache directory) and rerun cold"
                )
            }
            AnalyzeError::CacheIo { reason } => {
                write!(f, "cache directory I/O error: {reason}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Runs the full multi-cycle FF-pair analysis on a circuit.
///
/// The flow is the paper's: structural filter → random-pattern simulation →
/// time-frame expansion (+ optional static learning) → per-pair
/// classification with the configured [`Engine`]. Every topologically
/// connected FF pair receives a [`PairClass`] verdict; the report also
/// carries the per-step counters of the paper's Table 2.
///
/// # Errors
///
/// Returns [`AnalyzeError`] for invalid cycle budgets (see [`McConfig`]).
/// Engine resource exhaustion is **not** an error: affected pairs are
/// reported [`PairClass::Unknown`].
pub fn analyze(netlist: &Netlist, cfg: &McConfig) -> Result<McReport, AnalyzeError> {
    analyze_with(netlist, cfg, &ObsCtx::new())
}

/// [`analyze`] with an explicit observability context: span timers and
/// engine counters accumulate into `obs`, per-pair events go to its sink,
/// and the returned report embeds the final
/// [`MetricsSnapshot`](mcp_obs::MetricsSnapshot).
///
/// # Errors
///
/// Returns [`AnalyzeError`] for invalid cycle budgets (see [`McConfig`]).
pub fn analyze_with(
    netlist: &Netlist,
    cfg: &McConfig,
    obs: &ObsCtx,
) -> Result<McReport, AnalyzeError> {
    analyze_inner(netlist, cfg, obs, None, None)
}

/// The structural candidate pair set the pipeline commits to: every
/// topologically connected FF pair, minus self pairs when excluded.
/// Shared with the resume planner, which must reproduce it exactly to
/// validate a ledger's pair digest.
pub(crate) fn candidate_pairs(netlist: &Netlist, cfg: &McConfig) -> Vec<(usize, usize)> {
    let mut candidates = netlist.connected_ff_pairs();
    if !cfg.include_self_pairs {
        candidates.retain(|&(i, j)| i != j);
    }
    candidates
}

/// Order-independent digest of a candidate pair set, written into the
/// run-ledger header and checked on resume.
pub(crate) fn pair_digest(pairs: &[(usize, usize)]) -> u64 {
    let mut sorted = pairs.to_vec();
    sorted.sort_unstable();
    let mut bytes = Vec::with_capacity(sorted.len() * 16);
    for (i, j) in sorted {
        bytes.extend_from_slice(&(i as u64).to_le_bytes());
        bytes.extend_from_slice(&(j as u64).to_le_bytes());
    }
    mcp_obs::fnv1a(&bytes)
}

/// Reconstructs an engine verdict from its journaled event — the inverse
/// of [`verdict_event`], used by `--resume` to restore completed pairs.
fn verdict_from_event(event: &mcp_obs::PairEvent) -> Verdict {
    let by = match event.step.as_str() {
        "structural" => Step::Structural,
        "random_sim" => Step::RandomSim,
        "implication" => Step::Implication,
        _ => Step::Atpg,
    };
    match event.class.as_str() {
        "multi" => Verdict::Multi { by },
        "single" => Verdict::Single { by },
        _ => Verdict::Unknown,
    }
}

pub(crate) fn analyze_inner(
    netlist: &Netlist,
    cfg: &McConfig,
    obs: &ObsCtx,
    resume: Option<&ResumePlan>,
    mut trace: Option<&mut StageTrace>,
) -> Result<McReport, AnalyzeError> {
    if cfg.cycles < 2 {
        return Err(AnalyzeError::InvalidCycles { got: cfg.cycles });
    }
    if matches!(cfg.engine, Engine::Bdd { .. }) && cfg.cycles != 2 {
        return Err(AnalyzeError::BddNeedsTwoCycles { got: cfg.cycles });
    }
    // Validated even when the tape kernel (or the filter itself) is off:
    // a bad `--sim-lanes` / `MCPATH_SIM_LANES` value is a config error
    // either way, and catching it here keeps `mc_filter` panic-free in
    // pipeline use.
    if cfg.sim.lane_words().is_none() {
        return Err(AnalyzeError::InvalidSimLanes { got: cfg.sim.lanes });
    }
    if let Some(spec) = cfg.shard {
        if !spec.is_valid() {
            return Err(AnalyzeError::InvalidShard {
                index: spec.index,
                count: spec.count,
            });
        }
    }
    // Step 0: admission lint. Error-level findings (combinational cycles,
    // unconnected or multi-driven DFFs, zero-width gates) void every
    // assumption the engines make about the netlist, so refuse outright.
    if cfg.lint {
        let t_lint = obs.timers.span("analyze/lint");
        let report = mcp_lint::Registry::with_default_rules().run_with_metrics(
            netlist,
            &mcp_lint::LintConfig::errors_only(),
            Some(&obs.metrics),
        );
        t_lint.stop();
        if report.has_errors() {
            return Err(AnalyzeError::CorruptNetlist { report });
        }
    }

    let t_total = obs.timers.span("analyze");
    let tr_total = obs.trace_span(|| "analyze".to_owned());
    let mut stats = StepStats::default();
    let mut results: Vec<PairResult> = Vec::new();

    // Step 1: structural candidates.
    let candidates = candidate_pairs(netlist, cfg);
    stats.candidates = candidates.len();

    // Open the ledger with the run's identity, before any event can be
    // appended: format version plus the digests `--resume` and `merge`
    // will check. A shard journals its shard identity and the parent-run
    // digest, but commits to the *full* candidate set — shard membership
    // is derived, not part of the pair digest — so every sibling shard
    // (and an unsharded run of the same config) shares these digests.
    if obs.sink().enabled() {
        let netlist_hash = netlist.content_hash();
        let config_fingerprint = cfg.fingerprint();
        let digest = pair_digest(&candidates);
        let (shard_index, shard_count) = cfg.shard.map_or((0, 0), |s| (s.index, s.count));
        obs.sink().record_header(&RunHeader {
            ledger: LEDGER_VERSION,
            circuit: netlist.name().to_owned(),
            netlist_hash,
            config_fingerprint,
            pair_digest: digest,
            pairs: candidates.len() as u64,
            shard_index,
            shard_count,
            run_digest: mcp_obs::run_digest(netlist_hash, config_fingerprint, digest),
        });
    }

    // Steps 1.5–2: the deterministic prefilters (static
    // pre-classification + random-pattern simulation), shared with the
    // merge planner, which replays them to recompute shard ownership.
    let Prefiltered {
        mut survivors,
        ff_toggles,
    } = run_prefilters(netlist, cfg, obs, &mut stats, &mut results, candidates);

    let t_prepare = t_total.child("prepare");
    let tr_prepare = obs.trace_span(|| "analyze/prepare".to_owned());
    let x = Expanded::build(netlist, cfg.frames());

    // Record the early-stage artifacts before sharding or splicing can
    // touch the survivor set: the artifacts describe the canonical
    // (unsharded, cold) shape of the run.
    if let Some(t) = trace.as_deref_mut() {
        let nh = netlist.content_hash();
        let s = netlist.stats();
        t.parsed = Some(ParsedArtifact {
            circuit: netlist.name().to_owned(),
            netlist_hash: nh,
            inputs: s.inputs as u64,
            ffs: s.ffs as u64,
            gates: s.gates as u64,
        });
        t.linted = Some(LintedArtifact {
            netlist_hash: nh,
            gated: cfg.lint,
        });
        t.prefiltered = Some(PrefilteredArtifact {
            survivors: survivors.clone(),
            static_multi: stats.multi_by_static as u64,
            sim_single: stats.single_by_sim as u64,
        });
        t.expanded = Some(ExpandedArtifact {
            netlist_hash: nh,
            frames: cfg.frames(),
            nodes: x.num_nodes() as u64,
        });
    }

    // Shard filter: keep only the pairs this process owns under the
    // deterministic sink-group partition. Ownership is computed over the
    // *pre-resume* survivors — the prefilters are seed-deterministic, so
    // every sibling (and a later resume of this shard) derives the same
    // partition, while a resume-dependent partition could shift pairs
    // between shards mid-run and lose them.
    if let Some(spec) = cfg.shard {
        let groups = plan_sink_groups(&x, &survivors, ff_toggles.as_deref(), cfg.cycles);
        let owned: std::collections::BTreeSet<(usize, usize)> = assign_shards(&groups, spec.count)
            .swap_remove(spec.index as usize)
            .into_iter()
            .collect();
        let before = survivors.len();
        survivors.retain(|p| owned.contains(p));
        obs.metrics.shard_pairs_owned.add(survivors.len() as u64);
        obs.metrics
            .shard_pairs_skipped
            .add((before - survivors.len()) as u64);
    }

    // Resume: pairs the prior run's ledger already resolved with an
    // engine verdict skip the scheduler entirely — their verdicts are
    // restored verbatim (and re-journaled with `resumed` set, so the new
    // ledger is itself complete). The sim prefilter above re-ran from
    // the same seed on the same candidates, so its drops are recomputed
    // rather than restored; only engine work is saved. Restored verdicts
    // for pairs outside the current survivor set (another shard's pairs,
    // when a full-run ledger feeds a merge) are simply not this
    // process's problem and stay untouched in the plan.
    let mut restored: Vec<((usize, usize), Verdict)> = Vec::new();
    if let Some(plan) = resume {
        survivors.retain(|&(i, j)| match plan.restored.get(&(i, j)) {
            Some(event) => {
                restored.push(((i, j), verdict_from_event(event)));
                if obs.sink().enabled() {
                    let mut replay = event.clone();
                    if plan.from_cache {
                        // A cache splice is not a crash recovery: the
                        // event advertises its provenance via `cached`
                        // and carries no engine tag, so a warm run's
                        // ledger shows zero engine work.
                        replay.cached = true;
                    } else {
                        replay.resumed = true;
                    }
                    obs.sink().record(&replay);
                }
                false
            }
            None => true,
        });
        if plan.from_cache {
            obs.metrics.cache_pairs_spliced.add(restored.len() as u64);
        } else {
            obs.metrics.resume_pairs_loaded.add(restored.len() as u64);
        }
    }

    // Sink-group planning: survivors sharing a sink FF form one work
    // unit, so a single cone slice (and the per-group engine state built
    // on it) serves every source of that sink. The groups also carry the
    // hardest-first cost hints: with work stealing the queue is drained
    // from the front, so front-loading the expensive groups keeps the
    // tail of the run short (a cheap group never strands behind an
    // expensive one). Verdicts are order-independent, and the report is
    // re-sorted by pair at the end, so this is pure scheduling policy.
    let groups = plan_sink_groups(&x, &survivors, ff_toggles.as_deref(), cfg.cycles);
    order_hardest_first(&mut survivors, &groups);
    if let Some(t) = trace.as_deref_mut() {
        // Post-splice the groups cover only the re-verified residue; the
        // canonical Grouped artifact is the plan over *all* prefilter
        // survivors, recomputed the same way the shard planner does it.
        t.grouped = Some(if restored.is_empty() {
            grouped_artifact(&groups)
        } else {
            let full = t
                .prefiltered
                .as_ref()
                .map(|p| p.survivors.as_slice())
                .unwrap_or(&[]);
            grouped_artifact(&plan_sink_groups(
                &x,
                full,
                ff_toggles.as_deref(),
                cfg.cycles,
            ))
        });
    }
    drop(tr_prepare);

    // Steps 3-4: engine-specific classification of the survivors. The
    // progress meter extrapolates its ETA over the scheduler's cost
    // hints, not pair counts: groups run hardest-first, so count-based
    // extrapolation would wildly overestimate early in the run.
    let done = AtomicUsize::new(0);
    let done_cost = AtomicU64::new(0);
    let total = survivors.len();
    let total_cost: u64 = groups.iter().map(|g| g.cost).sum();
    let pair_share: BTreeMap<(usize, usize), u64> = groups
        .iter()
        .flat_map(|g| {
            let share = g.cost / g.sources.len().max(1) as u64;
            g.sources.iter().map(move |&i| ((i, g.sink), share))
        })
        .collect();
    let tick = |pair: (usize, usize)| {
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        let share = pair_share.get(&pair).copied().unwrap_or(0);
        let c = done_cost.fetch_add(share, Ordering::Relaxed) + share;
        obs.progress_with_cost("pairs", d, total, (c, total_cost));
    };
    let verdicts: Vec<((usize, usize), Verdict)> = match cfg.engine {
        Engine::Implication => {
            let search_cfg = SearchConfig {
                backtrack_limit: cfg.backtrack_limit,
            };
            if cfg.slice {
                stats.time_prepare = t_prepare.stop();
                run_group_loop(&groups, cfg, &mut stats, obs, |feed, out| {
                    while let Some(g) = feed.next() {
                        let group = &groups[g];
                        let _tr = obs.trace_span(|| format!("analyze/pairs/sink:{}", group.sink));
                        let slice = x.build_slice(&group_roots(&x, group, cfg.cycles));
                        let sx = slice.model();
                        let sizes = (slice.num_nodes() as u64, slice.num_vars() as u64);
                        note_slice_build(obs, sizes, group.sources.len());
                        // Static learning is slice-local: the learned set
                        // is sound on slice and whole circuit alike, but
                        // only the slice's share is worth paying for here.
                        let learned = if cfg.static_learning {
                            let l = learn(
                                sx,
                                &LearnConfig {
                                    max_implications: cfg.learn_budget,
                                },
                            );
                            obs.metrics.learned_implications.add(l.len() as u64);
                            Some(l)
                        } else {
                            None
                        };
                        let mut eng = match &learned {
                            Some(l) => new_engine_with_learned(sx, l),
                            None => ImpEngine::new(sx),
                        };
                        // Engine construction itself propagates (the
                        // learned forced literals); subtract that baseline
                        // so the flushed totals are pure per-group deltas
                        // — independent of which worker ran the group.
                        let base_implications = eng.implications();
                        let base_contradictions = eng.contradictions();
                        for &i in &group.sources {
                            let v = classify_one_implication(
                                &mut eng,
                                i,
                                group.sink,
                                cfg,
                                &search_cfg,
                                obs,
                                Some(sizes),
                            );
                            tick((i, group.sink));
                            out.push(((i, group.sink), v));
                        }
                        obs.metrics
                            .implications
                            .add(eng.implications() - base_implications);
                        obs.metrics
                            .contradictions
                            .add(eng.contradictions() - base_contradictions);
                    }
                })
            } else {
                let learned = if cfg.static_learning {
                    let l = learn(
                        &x,
                        &LearnConfig {
                            max_implications: cfg.learn_budget,
                        },
                    );
                    obs.metrics.learned_implications.add(l.len() as u64);
                    Some(l)
                } else {
                    None
                };
                stats.time_prepare = t_prepare.stop();
                run_pair_loop(&survivors, cfg, &mut stats, obs, |feed, out| {
                    let mut eng = match &learned {
                        Some(l) => new_engine_with_learned(&x, l),
                        None => ImpEngine::new(&x),
                    };
                    // Engine construction itself propagates (the learned
                    // forced literals); subtract that baseline so the
                    // flushed totals are pure per-pair deltas —
                    // independent of how many workers were spawned.
                    let base_implications = eng.implications();
                    let base_contradictions = eng.contradictions();
                    while let Some((i, j)) = feed.next() {
                        let v =
                            classify_one_implication(&mut eng, i, j, cfg, &search_cfg, obs, None);
                        tick((i, j));
                        out.push(((i, j), v));
                    }
                    obs.metrics
                        .implications
                        .add(eng.implications() - base_implications);
                    obs.metrics
                        .contradictions
                        .add(eng.contradictions() - base_contradictions);
                })
            }
        }
        Engine::Sat => {
            // Each sink group is solved on one incremental solver in
            // fixed ascending-source order: variable numbering, decisions
            // and learnt clauses of a group are identical no matter which
            // worker runs the group, which is what makes the report
            // (including SAT counter totals) byte-identical for any
            // thread count. Within a group the queries share learnt
            // clauses — the whole-circuit clone-per-pair of earlier
            // revisions is gone from the hot path.
            if cfg.slice {
                stats.time_prepare = t_prepare.stop();
                run_group_loop(&groups, cfg, &mut stats, obs, |feed, out| {
                    while let Some(g) = feed.next() {
                        let group = &groups[g];
                        let _tr = obs.trace_span(|| format!("analyze/pairs/sink:{}", group.sink));
                        let slice = x.build_slice(&group_roots(&x, group, cfg.cycles));
                        let sx = slice.model();
                        let mut cnf = CircuitCnf::new(sx);
                        // Difference literals in canonical order:
                        // ascending sources, then the sink boundaries.
                        for &i in &group.sources {
                            cnf.diff_lit(sx.ff_at(i, 0), sx.ff_at(i, 1));
                        }
                        for m in 1..cfg.cycles {
                            cnf.diff_lit(sx.ff_at(group.sink, m), sx.ff_at(group.sink, m + 1));
                        }
                        let sizes = (slice.num_nodes() as u64, cnf.solver().num_vars() as u64);
                        note_slice_build(obs, sizes, group.sources.len());
                        for &i in &group.sources {
                            let t_pair = Instant::now();
                            let v = classify_pair_sat(&mut cnf, sx, i, group.sink, cfg.cycles);
                            if obs.sink().enabled() {
                                obs.sink().record(&verdict_event(
                                    i,
                                    group.sink,
                                    &v,
                                    "sat",
                                    Vec::new(),
                                    t_pair.elapsed(),
                                    Some(sizes),
                                ));
                            }
                            tick((i, group.sink));
                            out.push(((i, group.sink), v));
                        }
                        // The solver started from zero for this group, so
                        // its stats are already pure per-group deltas.
                        flush_sat_stats(obs, &cnf);
                    }
                })
            } else {
                // Whole-circuit template with every pair's difference
                // literals created in canonical (sorted-pair) order,
                // cloned once per sink group (not per pair).
                let template = {
                    let mut cnf = CircuitCnf::new(&x);
                    let mut sorted = survivors.clone();
                    sorted.sort_unstable();
                    for &(i, j) in &sorted {
                        cnf.diff_lit(x.ff_at(i, 0), x.ff_at(i, 1));
                        for m in 1..cfg.cycles {
                            cnf.diff_lit(x.ff_at(j, m), x.ff_at(j, m + 1));
                        }
                    }
                    cnf
                };
                stats.time_prepare = t_prepare.stop();
                run_group_loop(&groups, cfg, &mut stats, obs, |feed, out| {
                    while let Some(g) = feed.next() {
                        let group = &groups[g];
                        let _tr = obs.trace_span(|| format!("analyze/pairs/sink:{}", group.sink));
                        let mut cnf = template.clone();
                        for &i in &group.sources {
                            let t_pair = Instant::now();
                            let v = classify_pair_sat(&mut cnf, &x, i, group.sink, cfg.cycles);
                            if obs.sink().enabled() {
                                obs.sink().record(&verdict_event(
                                    i,
                                    group.sink,
                                    &v,
                                    "sat",
                                    Vec::new(),
                                    t_pair.elapsed(),
                                    None,
                                ));
                            }
                            tick((i, group.sink));
                            out.push(((i, group.sink), v));
                        }
                        // The template's stats are zero (building it only
                        // adds clauses), so the clone's totals are the
                        // group's deltas.
                        flush_sat_stats(obs, &cnf);
                    }
                })
            }
        }
        Engine::Bdd {
            node_limit,
            reachability,
        } => {
            let t_pairs = t_total.child("pairs");
            let _tr_pairs = obs.trace_span(|| "analyze/pairs/bdd".to_owned());
            let mut verdicts = Vec::with_capacity(survivors.len());
            match SymbolicFsm::build(netlist, node_limit) {
                Err(_) => {
                    // The model itself blew the budget: everything unknown.
                    stats.time_prepare = t_prepare.stop();
                    for &(i, j) in &survivors {
                        verdicts.push(((i, j), Verdict::Unknown));
                    }
                }
                Ok(mut fsm) => {
                    let reached = if reachability {
                        fsm.reachable(InitStates::Zero).ok()
                    } else {
                        Some(Ref::TRUE)
                    };
                    stats.time_prepare = t_prepare.stop();
                    match reached {
                        None => {
                            for &(i, j) in &survivors {
                                verdicts.push(((i, j), Verdict::Unknown));
                            }
                        }
                        Some(r) => {
                            for &(i, j) in &survivors {
                                let t_pair = Instant::now();
                                let v = classify_pair_bdd(&mut fsm, i, j, r);
                                if obs.sink().enabled() {
                                    obs.sink().record(&verdict_event(
                                        i,
                                        j,
                                        &v,
                                        "bdd",
                                        Vec::new(),
                                        t_pair.elapsed(),
                                        None,
                                    ));
                                }
                                tick((i, j));
                                verdicts.push(((i, j), v));
                            }
                        }
                    }
                    obs.metrics
                        .bdd_peak_nodes
                        .raise_to(fsm.bdd().num_nodes() as u64);
                    obs.metrics.bdd_cache_lookups.add(fsm.bdd().cache_lookups());
                    obs.metrics.bdd_cache_hits.add(fsm.bdd().cache_hits());
                }
            }
            stats.time_pairs = t_pairs.stop();
            verdicts
        }
    };

    // Merge the run's verdicts with any restored by `--resume` or a
    // cache splice; the final sort below makes the interleaving
    // irrelevant. With a stage trace attached, every merged verdict also
    // lands in the Verdicts artifact — keyed by FF name as well as
    // index, so ECO re-analysis can map it across a netlist edit.
    let ff_names: Option<Vec<&str>> = trace.is_some().then(|| {
        netlist
            .dffs()
            .iter()
            .map(|&id| netlist.node(id).name())
            .collect()
    });
    for ((i, j), v) in verdicts.into_iter().chain(restored) {
        let class = match v {
            Verdict::Multi { by } => {
                match by {
                    Step::Implication => stats.multi_by_implication += 1,
                    _ => stats.multi_by_atpg += 1,
                }
                PairClass::MultiCycle { by }
            }
            Verdict::Single { by } => {
                match by {
                    Step::Implication => stats.single_by_implication += 1,
                    _ => stats.single_by_atpg += 1,
                }
                PairClass::SingleCycle { by }
            }
            Verdict::Unknown => {
                stats.unknown += 1;
                PairClass::Unknown
            }
        };
        if let Some(t) = trace.as_deref_mut() {
            let names = ff_names.as_ref().expect("FF names built with the trace");
            let (step, cls) = match v {
                Verdict::Multi { by } => (step_name(by), "multi"),
                Verdict::Single { by } => (step_name(by), "single"),
                Verdict::Unknown => ("atpg", "unknown"),
            };
            t.verdicts.push(VerdictRecord {
                src: i,
                dst: j,
                src_name: names[i].to_owned(),
                dst_name: names[j].to_owned(),
                step: step.to_owned(),
                class: cls.to_owned(),
            });
        }
        results.push(PairResult {
            src: i,
            dst: j,
            class,
        });
    }

    results.sort_unstable_by_key(|p| (p.src, p.dst));
    stats.time_total = t_total.stop();
    drop(tr_total);
    // Close the ledger with the timestamped span tree (pair verdicts are
    // already durable — they were flushed as they landed).
    if obs.tracing() {
        for span in obs.tracer.drain() {
            obs.sink().record_span(&span);
        }
    }
    let _ = obs.sink().flush();
    Ok(McReport::new(
        netlist.name().to_owned(),
        results,
        stats,
        obs.snapshot(),
    ))
}

/// Builds the journal record for one engine-classified pair. `slice` is
/// the `(nodes, vars)` size of the cone slice the pair ran on, or `None`
/// when the engine ran on the whole-circuit expansion.
fn verdict_event(
    i: usize,
    j: usize,
    v: &Verdict,
    engine: &str,
    assignments: Vec<mcp_obs::AssignmentEvent>,
    elapsed: Duration,
    slice: Option<(u64, u64)>,
) -> PairEvent {
    let (step, class) = match v {
        Verdict::Multi { by } => (step_name(*by), "multi"),
        Verdict::Single { by } => (step_name(*by), "single"),
        Verdict::Unknown => ("atpg", "unknown"),
    };
    PairEvent {
        src: i,
        dst: j,
        step: step.to_owned(),
        class: class.to_owned(),
        engine: Some(engine.to_owned()),
        assignments,
        micros: elapsed.as_micros() as u64,
        sim_word: None,
        slice_nodes: slice.map(|(n, _)| n),
        slice_vars: slice.map(|(_, v)| v),
        resumed: false,
        static_pass: false,
        cached: false,
        kernel: None,
    }
}

fn new_engine_with_learned<'a>(x: &'a Expanded, learned: &'a LearnedImplications) -> ImpEngine<'a> {
    let mut eng = ImpEngine::new(x).with_learned(learned);
    // Assert globally forced literals up front; a conflict here would mean
    // the circuit has no consistent assignment at all, which cannot happen
    // for well-formed netlists.
    for &(id, v) in learned.forced() {
        let _ = eng.assign(id, v);
    }
    let _ = eng.propagate();
    eng
}

/// Accounts one slice construction of `(nodes, vars)` size that serves a
/// `group_size`-pair sink group: every pair after the first is a reuse
/// ("cache hit") that would have been a fresh build under per-pair
/// slicing.
fn note_slice_build(obs: &ObsCtx, (nodes, vars): (u64, u64), group_size: usize) {
    obs.metrics.slice_builds.add(1);
    obs.metrics.slice_cache_hits.add(group_size as u64 - 1);
    obs.metrics.slice_nodes.add(nodes);
    obs.metrics.slice_vars.add(vars);
    obs.metrics.slice_nodes_peak.raise_to(nodes);
}

/// Classifies one pair on an implication engine (whole-circuit or
/// sliced — `eng`'s expansion decides), flushing per-pair search effort
/// counters and the journal event.
fn classify_one_implication(
    eng: &mut ImpEngine<'_>,
    i: usize,
    j: usize,
    cfg: &McConfig,
    search_cfg: &SearchConfig,
    obs: &ObsCtx,
    slice: Option<(u64, u64)>,
) -> Verdict {
    let t_pair = Instant::now();
    let mut probe = if obs.sink().enabled() {
        PairProbe::traced()
    } else {
        PairProbe::default()
    };
    let v = classify_pair_implication_probed(eng, i, j, cfg.cycles, search_cfg, &mut probe);
    obs.metrics.atpg_decisions.add(probe.decisions);
    obs.metrics.atpg_backtracks.add(probe.backtracks);
    obs.metrics.atpg_aborts.add(probe.aborts);
    if obs.sink().enabled() {
        obs.sink().record(&verdict_event(
            i,
            j,
            &v,
            "implication",
            std::mem::take(&mut probe.assignments),
            t_pair.elapsed(),
            slice,
        ));
    }
    v
}

/// Adds a solver's lifetime totals to the SAT effort counters. Callers
/// must hand over a solver whose totals are pure deltas for the work
/// being flushed (fresh per group, or cloned from a zero-stats template).
fn flush_sat_stats(obs: &ObsCtx, cnf: &CircuitCnf) {
    let s = cnf.solver().stats();
    obs.metrics.sat_decisions.add(s.decisions);
    obs.metrics.sat_propagations.add(s.propagations);
    obs.metrics.sat_conflicts.add(s.conflicts);
    obs.metrics.sat_learned.add(s.learnt);
    obs.metrics.sat_restarts.add(s.restarts);
}

/// Runs `work` over `pairs` on `cfg.threads` workers under
/// `cfg.scheduler` (see [`crate::schedule`]); collects all verdicts and
/// accumulates per-worker busy time into `stats.time_pairs` and the
/// `analyze/pairs` span (one entry per worker). With no pairs this is a
/// clean no-op: `work` is never invoked, so engines are not built.
fn run_pair_loop<F>(
    pairs: &[(usize, usize)],
    cfg: &McConfig,
    stats: &mut StepStats,
    obs: &ObsCtx,
    work: F,
) -> Vec<((usize, usize), Verdict)>
where
    F: Fn(&mut PairFeed<'_, (usize, usize)>, &mut Vec<((usize, usize), Verdict)>) + Sync,
{
    let (out, busy) = run_items(
        pairs,
        cfg.threads,
        cfg.scheduler,
        obs,
        "analyze/pairs",
        work,
    );
    stats.time_pairs += busy;
    out
}

/// [`run_pair_loop`], but feeding whole sink-group indices
/// (`0..groups.len()`): a worker that claims group `g` classifies every
/// pair of `groups[g]` before taking more work, so per-group engine
/// state (cone slice, learned set, incremental SAT solver) is built once
/// and reused across the group — and the per-group counter deltas stay
/// independent of which worker ran it.
fn run_group_loop<F>(
    groups: &[SinkGroup],
    cfg: &McConfig,
    stats: &mut StepStats,
    obs: &ObsCtx,
    work: F,
) -> Vec<((usize, usize), Verdict)>
where
    F: Fn(&mut PairFeed<'_, usize>, &mut Vec<((usize, usize), Verdict)>) + Sync,
{
    let ids: Vec<usize> = (0..groups.len()).collect();
    let (out, busy) = run_items(&ids, cfg.threads, cfg.scheduler, obs, "analyze/pairs", work);
    stats.time_pairs += busy;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_gen::{circuits, generators, oracle, suite};

    #[test]
    fn fig1_reproduces_the_papers_walkthrough() {
        let nl = circuits::fig1();
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        // 9 candidates, 4 dropped by simulation, 5 multi-cycle — the
        // paper's Section 4.2 numbers.
        assert_eq!(report.stats.candidates, 9);
        assert_eq!(
            report.multi_cycle_pairs(),
            vec![(0, 0), (0, 1), (1, 1), (2, 1), (3, 0)]
        );
        assert_eq!(report.stats.single_total(), 4);
        assert!(report.unknown_pairs().is_empty());
    }

    #[test]
    fn all_three_engines_agree_with_the_oracle() {
        let circuits: Vec<Netlist> = vec![
            circuits::fig1(),
            circuits::fig4_fragment(),
            generators::gated_datapath(&generators::DatapathConfig::default()),
            generators::lfsr(4, 1),
        ];
        for nl in &circuits {
            let (multi, _single) = oracle::exhaustive_mc_pairs(nl);
            for engine in [
                Engine::Implication,
                Engine::Sat,
                Engine::Bdd {
                    node_limit: 1 << 22,
                    reachability: false,
                },
            ] {
                let cfg = McConfig {
                    engine,
                    backtrack_limit: 100_000,
                    ..McConfig::default()
                };
                let report = analyze(nl, &cfg).expect("analyze");
                assert_eq!(
                    report.multi_cycle_pairs(),
                    multi,
                    "engine {engine:?} on {}",
                    nl.name()
                );
                assert!(report.unknown_pairs().is_empty());
            }
        }
    }

    #[test]
    fn sim_filter_off_gives_same_verdicts() {
        let nl = circuits::fig1();
        let with = analyze(&nl, &McConfig::default()).expect("analyze");
        let without = analyze(
            &nl,
            &McConfig {
                use_sim_filter: false,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(with.multi_cycle_pairs(), without.multi_cycle_pairs());
        assert_eq!(
            with.single_cycle_pairs().len(),
            without.single_cycle_pairs().len()
        );
        // Without the filter everything is attributed to step 4.
        assert_eq!(without.stats.single_by_sim, 0);
    }

    #[test]
    fn static_learning_does_not_change_verdicts() {
        let nl = suite::quick_suite().remove(1); // m298
        let base = analyze(&nl, &McConfig::default()).expect("analyze");
        let learned = analyze(
            &nl,
            &McConfig {
                static_learning: true,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(base.multi_cycle_pairs(), learned.multi_cycle_pairs());
        assert_eq!(
            base.single_cycle_pairs().len(),
            learned.single_cycle_pairs().len()
        );
    }

    #[test]
    fn parallel_equals_sequential() {
        // Stronger than verdict equality: the canonical (wall-clock-free)
        // serialized report must be byte-identical for any thread count,
        // under both scheduling policies.
        let nl = suite::quick_suite().remove(2); // m526
        let baseline = serde_json::to_string(
            &analyze(&nl, &McConfig::default())
                .expect("analyze")
                .canonical(),
        )
        .expect("serialize");
        for scheduler in [crate::Scheduler::WorkSteal, crate::Scheduler::Static] {
            for threads in [1usize, 2, 8] {
                let par = analyze(
                    &nl,
                    &McConfig {
                        threads,
                        scheduler,
                        ..McConfig::default()
                    },
                )
                .expect("analyze");
                let bytes = serde_json::to_string(&par.canonical()).expect("serialize");
                assert_eq!(
                    bytes, baseline,
                    "canonical report drifted at threads={threads} under {scheduler:?}"
                );
            }
        }
    }

    #[test]
    fn empty_pair_loop_no_ops_cleanly_at_any_thread_count() {
        use mcp_netlist::bench;
        // No FFs at all: the candidate set (and thus the survivor set) is
        // empty, and the pair loop must no-op without clamp underflow,
        // zero-size chunks, or spurious engine construction.
        let nl = bench::parse("comb", "INPUT(a)\nOUTPUT(b)\nb = NOT(a)").expect("parse");
        for engine in [Engine::Implication, Engine::Sat] {
            for scheduler in [crate::Scheduler::WorkSteal, crate::Scheduler::Static] {
                for threads in [0usize, 1, 8] {
                    let report = analyze(
                        &nl,
                        &McConfig {
                            engine,
                            threads,
                            scheduler,
                            ..McConfig::default()
                        },
                    )
                    .expect("analyze");
                    assert!(report.pairs.is_empty());
                    assert_eq!(report.stats.candidates, 0);
                    assert_eq!(report.stats.time_pairs, Duration::ZERO);
                }
            }
        }
    }

    #[test]
    fn hardest_first_ordering_is_a_deterministic_permutation() {
        let nl = suite::quick_suite().remove(0); // m27
        let x = Expanded::build(&nl, 2);
        let mut pairs = nl.connected_ff_pairs();
        let original = pairs.clone();
        let toggles = vec![3u64; nl.num_ffs()];
        let groups = plan_sink_groups(&x, &pairs, Some(&toggles), 2);
        // Groups come out hardest-first by the exact slice-size hint.
        assert!(
            groups.windows(2).all(|w| w[0].cost >= w[1].cost),
            "group costs must be non-increasing"
        );
        assert!(groups.iter().all(|g| g.slice_nodes > 0));
        order_hardest_first(&mut pairs, &groups);
        let mut sorted_a = pairs.clone();
        sorted_a.sort_unstable();
        let mut sorted_b = original.clone();
        sorted_b.sort_unstable();
        assert_eq!(sorted_a, sorted_b, "ordering must be a permutation");
        // Re-running produces the identical order (ties broken by sink).
        let again_groups = plan_sink_groups(&x, &original, Some(&toggles), 2);
        let mut again = original.clone();
        order_hardest_first(&mut again, &again_groups);
        assert_eq!(again, pairs);
        // Without toggle data the slice-size hint still applies.
        let no_sim_groups = plan_sink_groups(&x, &original, None, 2);
        let mut no_sim = original;
        order_hardest_first(&mut no_sim, &no_sim_groups);
        let mut sorted_c = no_sim.clone();
        sorted_c.sort_unstable();
        assert_eq!(sorted_c, sorted_b);
    }

    #[test]
    fn slicing_does_not_change_the_canonical_report() {
        // The slice-mode determinism contract: the canonical report is
        // byte-identical with slicing on and off, for every engine that
        // honors the flag.
        let nl = suite::quick_suite().remove(2); // m526
        for engine in [Engine::Implication, Engine::Sat] {
            let on = analyze(
                &nl,
                &McConfig {
                    engine,
                    slice: true,
                    ..McConfig::default()
                },
            )
            .expect("analyze");
            let off = analyze(
                &nl,
                &McConfig {
                    engine,
                    slice: false,
                    ..McConfig::default()
                },
            )
            .expect("analyze");
            assert_eq!(
                serde_json::to_string(&on.canonical()).expect("serialize"),
                serde_json::to_string(&off.canonical()).expect("serialize"),
                "canonical report drifted between slice modes under {engine:?}"
            );
        }
    }

    #[test]
    fn excluding_self_pairs_matches_the_sat_baseline_convention() {
        let nl = circuits::fig1();
        let report = analyze(
            &nl,
            &McConfig {
                include_self_pairs: false,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert!(report.pairs.iter().all(|p| p.src != p.dst));
        assert_eq!(report.stats.candidates, 7); // 9 minus (FF1,FF1),(FF2,FF2)
    }

    #[test]
    fn corrupt_netlists_are_refused_unless_lint_is_off() {
        use mcp_logic::GateKind;
        use mcp_netlist::NetlistBuilder;
        // g1 = AND(a, g2), g2 = NOT(g1): a combinational cycle that only
        // `finish_unchecked` lets through.
        let mut b = NetlistBuilder::new("cyclic");
        let a = b.input("a");
        let g1 = b.gate("g1", GateKind::And, [a, a]).unwrap();
        let g2 = b.gate("g2", GateKind::Not, [g1]).unwrap();
        b.rewire_fanin(g1, 1, g2).unwrap();
        b.mark_output(g2);
        let nl = b.finish_unchecked();

        let err = analyze(&nl, &McConfig::default()).unwrap_err();
        match &err {
            AnalyzeError::CorruptNetlist { report } => {
                assert!(report.iter().any(|d| d.rule == "comb-cycle"), "{report:?}");
            }
            other => panic!("expected CorruptNetlist, got {other:?}"),
        }
        assert!(err.to_string().contains("comb-cycle"));

        // With the gate disabled the (FF-free) netlist analyzes trivially.
        let report = analyze(
            &nl,
            &McConfig {
                lint: false,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn lint_gate_admits_clean_netlists_and_counts_rules() {
        let nl = circuits::fig1();
        let obs = mcp_obs::ObsCtx::new();
        analyze_with(&nl, &McConfig::default(), &obs).expect("analyze");
        let c = obs.snapshot().counters;
        assert!(c.lint_rules_run > 0);
        assert_eq!(c.lint_violations, 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let nl = circuits::fig1();
        assert!(matches!(
            analyze(
                &nl,
                &McConfig {
                    cycles: 1,
                    ..McConfig::default()
                }
            ),
            Err(AnalyzeError::InvalidCycles { got: 1 })
        ));
        assert!(matches!(
            analyze(
                &nl,
                &McConfig {
                    cycles: 3,
                    engine: Engine::Bdd {
                        node_limit: 1000,
                        reachability: false
                    },
                    ..McConfig::default()
                }
            ),
            Err(AnalyzeError::BddNeedsTwoCycles { got: 3 })
        ));
        let mut bad_lanes = McConfig::default();
        bad_lanes.sim.lanes = 96;
        let err = analyze(&nl, &bad_lanes).unwrap_err();
        assert!(matches!(err, AnalyzeError::InvalidSimLanes { got: 96 }));
        assert!(err.to_string().contains("96"));
        // Rejected even when the tape kernel — or the filter — is off:
        // the config is wrong regardless of which path would consume it.
        bad_lanes.sim.tape = false;
        bad_lanes.use_sim_filter = false;
        assert!(matches!(
            analyze(&nl, &bad_lanes),
            Err(AnalyzeError::InvalidSimLanes { got: 96 })
        ));
    }

    #[test]
    fn tape_and_lane_width_do_not_change_the_canonical_report() {
        let nl = suite::quick_suite().remove(2); // m526
        let baseline = {
            let mut cfg = McConfig::default();
            cfg.sim.tape = false;
            serde_json::to_string(&analyze(&nl, &cfg).expect("analyze").canonical())
                .expect("serialize")
        };
        for lanes in mcp_sim::filter::SUPPORTED_LANES {
            let mut cfg = McConfig::default();
            cfg.sim.tape = true;
            cfg.sim.lanes = lanes;
            let bytes = serde_json::to_string(&analyze(&nl, &cfg).expect("analyze").canonical())
                .expect("serialize");
            assert_eq!(
                bytes, baseline,
                "canonical report drifted at {lanes} sim lanes"
            );
        }
    }

    #[test]
    fn bdd_overflow_reports_unknown_not_panic() {
        let nl = generators::gated_datapath(&generators::DatapathConfig::default());
        let report = analyze(
            &nl,
            &McConfig {
                engine: Engine::Bdd {
                    node_limit: 8,
                    reachability: false,
                },
                use_sim_filter: false,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(report.unknown_pairs().len(), report.pairs.len());
    }

    #[test]
    fn frozen_sinks_are_resolved_before_sim_or_engines() {
        let nl = generators::frozen_sink_demo(4);
        let obs = mcp_obs::ObsCtx::new();
        let on = analyze_with(&nl, &McConfig::default(), &obs).expect("analyze");
        // Every (core, debug) pair is frozen-sink: 4 debug sinks fed by
        // a tied-off AND, one core source each.
        assert_eq!(on.stats.multi_by_static, 4);
        assert_eq!(on.stats.multi_total(), 4);
        let c = obs.snapshot().counters;
        assert_eq!(c.static_resolved, on.stats.multi_by_static as u64);
        assert!(c.dataflow_consts > 0, "the tie-off must prove constants");
        assert!(c.dataflow_iters >= 1);
        // Every structural-step verdict names a debug sink (FF indices
        // 3.. in declaration order: CORE0-2 then DBG0-3).
        for p in &on.pairs {
            let is_static = p.class
                == PairClass::MultiCycle {
                    by: Step::Structural,
                };
            assert_eq!(is_static, p.dst >= 3, "pair ({}, {})", p.src, p.dst);
        }

        let off = analyze(
            &nl,
            &McConfig {
                static_classify: false,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(off.stats.multi_by_static, 0);
        assert_eq!(
            serde_json::to_string(&on.canonical()).expect("serialize"),
            serde_json::to_string(&off.canonical()).expect("serialize"),
            "canonical report must not see the pre-pass"
        );
        // The frozen pairs are undroppable by simulation, so with the
        // pass off the filter grinds to its idle-words stop; with them
        // gone it stops the moment the core pairs die.
        assert!(
            on.stats.sim_words < off.stats.sim_words,
            "pre-pass must shrink simulated words: {} vs {}",
            on.stats.sim_words,
            off.stats.sim_words
        );
    }

    #[test]
    fn static_pre_pass_is_inert_without_const_nodes() {
        // No CONST node → no lattice seeds → the pass must not run (and
        // must not bill dataflow counters).
        let nl = circuits::fig1();
        let obs = mcp_obs::ObsCtx::new();
        let report = analyze_with(&nl, &McConfig::default(), &obs).expect("analyze");
        assert_eq!(report.stats.multi_by_static, 0);
        assert_eq!(report.stats.time_static, Duration::ZERO);
        let c = obs.snapshot().counters;
        assert_eq!(c.static_resolved, 0);
        assert_eq!(c.dataflow_consts, 0);
        assert_eq!(c.dataflow_iters, 0);
    }

    #[test]
    fn static_events_are_journaled_without_an_engine_tag() {
        use mcp_obs::MemSink;
        use std::sync::Arc;
        let nl = generators::frozen_sink_demo(3);
        let sink = Arc::new(MemSink::new());
        let obs = mcp_obs::ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        let report = analyze_with(&nl, &McConfig::default(), &obs).expect("analyze");
        let events = sink.drain();
        let statics: Vec<_> = events.iter().filter(|e| e.static_pass).collect();
        assert_eq!(statics.len(), report.stats.multi_by_static);
        for e in &statics {
            assert_eq!(e.step, "structural");
            assert_eq!(e.class, "multi");
            assert_eq!(e.engine, None, "no engine ran for a static verdict");
            assert_eq!(e.micros, 0);
        }
        // Engine verdicts and sim drops never carry the flag.
        assert!(events.iter().all(|e| !e.static_pass || e.engine.is_none()));
    }

    #[test]
    fn static_classification_keeps_the_canonical_report_byte_identical() {
        // The acceptance matrix: engines × schedulers × threads {1,2,8}
        // × slice modes, pre-pass on vs off, all byte-identical.
        let nl = generators::frozen_sink_demo(5);
        let mut baseline: Option<String> = None;
        for engine in [Engine::Implication, Engine::Sat] {
            for scheduler in [crate::Scheduler::WorkSteal, crate::Scheduler::Static] {
                for threads in [1usize, 2, 8] {
                    for slice in [true, false] {
                        for static_classify in [true, false] {
                            let report = analyze(
                                &nl,
                                &McConfig {
                                    engine,
                                    scheduler,
                                    threads,
                                    slice,
                                    static_classify,
                                    ..McConfig::default()
                                },
                            )
                            .expect("analyze");
                            let bytes =
                                serde_json::to_string(&report.canonical()).expect("serialize");
                            match &baseline {
                                None => baseline = Some(bytes),
                                Some(b) => assert_eq!(
                                    &bytes, b,
                                    "canonical report drifted: {engine:?} {scheduler:?} \
                                     threads={threads} slice={slice} static={static_classify}"
                                ),
                            }
                        }
                    }
                }
            }
        }
        // The BDD engine ignores threads/scheduler/slice; its canonical
        // report must still match the baseline at both pre-pass settings.
        for static_classify in [true, false] {
            let report = analyze(
                &nl,
                &McConfig {
                    engine: Engine::Bdd {
                        node_limit: 1 << 20,
                        reachability: false,
                    },
                    static_classify,
                    ..McConfig::default()
                },
            )
            .expect("analyze");
            let bytes = serde_json::to_string(&report.canonical()).expect("serialize");
            assert_eq!(
                Some(bytes),
                baseline,
                "BDD drifted at static={static_classify}"
            );
        }
    }

    #[test]
    fn table2_shape_holds_on_the_quick_suite() {
        // The paper's Table 2 headline: most single-cycle pairs die in
        // simulation; most multi-cycle pairs are proven by implication.
        let mut single_sim = 0usize;
        let mut single_other = 0usize;
        let mut multi_imp = 0usize;
        let mut multi_atpg = 0usize;
        // A raised backtrack limit keeps every pair resolvable; the
        // paper's default of 50 leaves a handful of m820 pairs aborted,
        // which would say nothing about the step shape under test.
        let cfg = McConfig {
            backtrack_limit: 1024,
            ..McConfig::default()
        };
        for nl in suite::quick_suite() {
            let r = analyze(&nl, &cfg).expect("analyze");
            single_sim += r.stats.single_by_sim;
            single_other += r.stats.single_by_implication + r.stats.single_by_atpg;
            multi_imp += r.stats.multi_by_implication;
            multi_atpg += r.stats.multi_by_atpg;
            assert_eq!(r.stats.unknown, 0, "{} has unknowns", nl.name());
        }
        assert!(
            single_sim > 5 * single_other.max(1),
            "simulation should dominate single-cycle detection: {single_sim} vs {single_other}"
        );
        assert!(
            multi_imp > multi_atpg,
            "implication should dominate multi-cycle proofs: {multi_imp} vs {multi_atpg}"
        );
    }
}
