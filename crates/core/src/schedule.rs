//! Work distribution for the per-pair engine loop.
//!
//! The surviving FF pairs form an embarrassingly parallel workload with a
//! brutally skewed cost profile: per Table 2, most pairs fall to the
//! implication procedure in microseconds while the ATPG/SAT residue pairs
//! each cost orders of magnitude more. Static chunking therefore
//! serializes on whichever worker drew the residue; [`run_items`] instead
//! offers a work-stealing policy — a global [`Injector`] seeded by the
//! caller (hardest-first, see the pipeline's cost hints), per-worker LIFO
//! deques, and stealing from both the injector and sibling workers when a
//! deque runs dry.
//!
//! Determinism contract: the scheduler changes only *which worker*
//! processes a pair and *when* — callers' work closures must make each
//! pair's outcome and flushed counter deltas independent of that (fresh
//! or fully-restored engine state per pair). Under that contract the
//! merged output, re-sorted by pair, is byte-identical for any thread
//! count and either policy.

use crate::config::Scheduler;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use mcp_obs::ObsCtx;
use std::time::{Duration, Instant};

/// The stream of work items one worker consumes; obtained inside a
/// [`run_items`] work closure. Hides whether the run is a static slice
/// walk or a stealing loop so engine closures are written once.
pub(crate) enum PairFeed<'a, T> {
    /// Sequential / static-chunk feed: a contiguous slice cursor.
    Slice {
        /// The chunk assigned to this worker.
        pairs: &'a [T],
        /// Next unread index.
        at: usize,
    },
    /// Work-stealing feed.
    Steal {
        /// This worker's own deque.
        local: Worker<T>,
        /// The shared injector holding not-yet-claimed items.
        injector: &'a Injector<T>,
        /// Thief handles onto every worker's deque (including our own,
        /// which is harmlessly empty whenever we consult it).
        stealers: &'a [Stealer<T>],
    },
}

impl<T: Copy> PairFeed<'_, T> {
    /// The next item to process, or `None` when no work remains
    /// anywhere. Popped items are never re-queued, so a `None` is final
    /// for this worker.
    pub(crate) fn next(&mut self) -> Option<T> {
        match self {
            PairFeed::Slice { pairs, at } => {
                let p = pairs.get(*at).copied();
                *at += 1;
                p
            }
            PairFeed::Steal {
                local,
                injector,
                stealers,
            } => loop {
                if let Some(p) = local.pop() {
                    return Some(p);
                }
                // A `Retry` from any source means a racing operation was
                // in flight; loop again rather than concluding "empty".
                let mut retry = false;
                match injector.steal_batch_and_pop(local) {
                    Steal::Success(p) => return Some(p),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
                for s in stealers.iter() {
                    match s.steal() {
                        Steal::Success(p) => return Some(p),
                        Steal::Retry => retry = true,
                        Steal::Empty => {}
                    }
                }
                if !retry {
                    return None;
                }
            },
        }
    }
}

/// Runs `work` over `items` on `threads` workers under the given
/// scheduling policy, returning all produced results (in arbitrary
/// order — callers sort) plus the summed per-worker busy time.
///
/// The output element type `O` is independent of the item type `T`: a
/// closure fed sink-group indices can still emit one keyed record per
/// pair inside the group. Each worker's busy time is also added to the
/// `span_path` timer of `obs`, one entry per worker. An empty `items`
/// returns immediately without invoking `work` (so callers' engine setup
/// is never spent on a no-op), and `threads` is clamped to
/// `1..=items.len()`.
pub(crate) fn run_items<T, O, F>(
    items: &[T],
    threads: usize,
    scheduler: Scheduler,
    obs: &ObsCtx,
    span_path: &str,
    work: F,
) -> (Vec<O>, Duration)
where
    T: Send + Sync + Copy,
    O: Send,
    F: Fn(&mut PairFeed<'_, T>, &mut Vec<O>) + Sync,
{
    if items.is_empty() {
        return (Vec::new(), Duration::ZERO);
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        let span = obs.timers.span(span_path);
        let _tr = obs.trace_span(|| format!("{span_path}/worker"));
        let mut out = Vec::with_capacity(items.len());
        let mut feed = PairFeed::Slice {
            pairs: items,
            at: 0,
        };
        work(&mut feed, &mut out);
        let dt = span.stop();
        return (out, dt);
    }

    let mut all = Vec::with_capacity(items.len());
    let mut busy = Duration::ZERO;
    match scheduler {
        Scheduler::Static => {
            let chunk = items.len().div_ceil(threads);
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = items
                    .chunks(chunk)
                    .map(|slice| {
                        s.spawn(|_| {
                            let t = Instant::now();
                            let _tr = obs.trace_span(|| format!("{span_path}/worker"));
                            let mut out = Vec::with_capacity(slice.len());
                            let mut feed = PairFeed::Slice {
                                pairs: slice,
                                at: 0,
                            };
                            work(&mut feed, &mut out);
                            (out, t.elapsed())
                        })
                    })
                    .collect();
                for h in handles {
                    let (out, dt) = h.join().expect("worker panicked");
                    all.extend(out);
                    obs.timers.add(span_path, dt);
                    busy += dt;
                }
            })
            .expect("scope");
        }
        Scheduler::WorkSteal => {
            let injector = Injector::new();
            for &p in items {
                injector.push(p);
            }
            let workers: Vec<Worker<T>> = (0..threads).map(|_| Worker::new_lifo()).collect();
            let stealers: Vec<Stealer<T>> = workers.iter().map(Worker::stealer).collect();
            let injector = &injector;
            let stealers = &stealers;
            // Move only `local` into each closure; the work closure is
            // shared by reference (`F: Sync`), like in the static arm.
            let work = &work;
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = workers
                    .into_iter()
                    .map(|local| {
                        s.spawn(move |_| {
                            let t = Instant::now();
                            let _tr = obs.trace_span(|| format!("{span_path}/worker"));
                            let mut out = Vec::new();
                            let mut feed = PairFeed::Steal {
                                local,
                                injector,
                                stealers,
                            };
                            work(&mut feed, &mut out);
                            (out, t.elapsed())
                        })
                    })
                    .collect();
                for h in handles {
                    let (out, dt) = h.join().expect("worker panicked");
                    all.extend(out);
                    obs.timers.add(span_path, dt);
                    busy += dt;
                }
            })
            .expect("scope");
        }
    }
    (all, busy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, i + 1)).collect()
    }

    fn run_sorted(
        items: &[(usize, usize)],
        threads: usize,
        scheduler: Scheduler,
    ) -> Vec<((usize, usize), usize)> {
        let obs = ObsCtx::new();
        let (mut out, _) = run_items(
            items,
            threads,
            scheduler,
            &obs,
            "test/pairs",
            |feed, out| {
                while let Some((i, j)) = feed.next() {
                    out.push(((i, j), i * 100 + j));
                }
            },
        );
        out.sort_unstable_by_key(|&(p, _)| p);
        out
    }

    #[test]
    fn every_item_is_processed_exactly_once_under_both_policies() {
        let items = items(237);
        let expected = run_sorted(&items, 1, Scheduler::WorkSteal);
        for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
            for threads in [2, 3, 8, 500] {
                assert_eq!(
                    run_sorted(&items, threads, scheduler),
                    expected,
                    "{scheduler:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_items_never_invoke_work() {
        let obs = ObsCtx::new();
        for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
            for threads in [0, 1, 8] {
                let (out, busy) = run_items::<(usize, usize), (), _>(
                    &[],
                    threads,
                    scheduler,
                    &obs,
                    "test/pairs",
                    |_feed, _out| panic!("work must not run on an empty item set"),
                );
                assert!(out.is_empty());
                assert_eq!(busy, Duration::ZERO);
            }
        }
        assert!(
            obs.timers.snapshot().is_empty(),
            "no span entries for no-op runs"
        );
    }

    #[test]
    fn threads_are_clamped_to_the_item_count() {
        // 3 items, 8 threads: must not panic (zero-size chunks, empty
        // deques) and must still produce every result.
        let items = items(3);
        for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
            assert_eq!(run_sorted(&items, 8, scheduler).len(), 3);
        }
    }

    #[test]
    fn stealing_rebalances_a_skewed_workload() {
        // One expensive item at the front, many cheap ones behind it. A
        // worker stuck on the expensive item must not strand the rest:
        // with stealing, other workers drain them concurrently. We can't
        // assert wall-clock in a unit test, so assert the load balance:
        // no single worker processed everything.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items = items(64);
        let obs = ObsCtx::new();
        let max_per_worker = AtomicUsize::new(0);
        let (out, _) = run_items(
            &items,
            4,
            Scheduler::WorkSteal,
            &obs,
            "test/pairs",
            |feed, out| {
                let mut mine = 0usize;
                while let Some((i, j)) = feed.next() {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    mine += 1;
                    out.push(((i, j), ()));
                }
                max_per_worker.fetch_max(mine, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), items.len());
        assert!(
            max_per_worker.load(Ordering::Relaxed) < items.len(),
            "work stealing should spread a skewed workload over workers"
        );
    }

    #[test]
    fn busy_time_sums_every_worker() {
        let items = items(8);
        let obs = ObsCtx::new();
        let (_, busy) = run_items(
            &items,
            4,
            Scheduler::WorkSteal,
            &obs,
            "test/pairs",
            |feed, out| {
                while let Some(p) = feed.next() {
                    std::thread::sleep(Duration::from_millis(2));
                    out.push((p, ()));
                }
            },
        );
        // 8 items × 2ms each ≥ 16ms of busy time regardless of threads.
        assert!(busy >= Duration::from_millis(16), "busy = {busy:?}");
        let snap = obs.timers.snapshot();
        assert_eq!(snap["test/pairs"].count, 4, "one span entry per worker");
        assert_eq!(snap["test/pairs"].total, busy);
    }
}
