//! ECO-incremental re-analysis: re-verify only what a netlist edit can
//! have touched.
//!
//! An engineering change order (ECO) edits a handful of gates in an
//! otherwise unchanged circuit. Re-running the full analysis discards
//! almost everything the previous run proved; [`analyze_eco_with`]
//! instead:
//!
//! 1. loads the **old** revision's `Verdicts` artifact from the store,
//! 2. computes the name-keyed structural delta with [`mcp_netlist::diff()`],
//! 3. replans the **new** revision's sink groups (the same deterministic
//!    prefilter + grouping code the shard planner replays), and
//! 4. marks a group *dirty* exactly when its cone of influence in the
//!    new time-frame expansion contains a changed node. Dirty groups are
//!    re-verified by the engines; every clean group's pairs splice their
//!    old verdicts (matched by FF *name* — indices may shift across the
//!    edit), and pairs with no old verdict (newly created) are
//!    re-verified too.
//!
//! **Soundness.** An engine verdict for a sink group depends only on the
//! group's cone: the slice/no-slice canonical-identity contract
//! guarantees classifying on the cone slice equals classifying on the
//! whole circuit. A clean group's cone is name-and-structure identical
//! in both revisions (any node whose kind or fanin wiring changed is in
//! the delta, and a node reading a *removed* node has changed fanins, so
//! removals can never hide inside a clean cone) — hence the old verdict
//! is the verdict the engine would recompute. Two configurations break
//! the cone-locality argument and fall back to a full run: the BDD
//! engine (whole-circuit symbolic FSM) and whole-circuit static learning
//! (`static_learning` without `slice`), whose learned implications can
//! couple a group to logic outside its cone and shift step attribution.
//!
//! The prefilters and lint still run fresh on the new netlist — they are
//! whole-circuit stages, and their surviving counters must reflect the
//! new revision — so the final canonical report is **byte-identical** to
//! a cold full analysis of the new netlist.

use crate::cache::{cached_event, check_verdicts_identity, persist_trace};
use crate::cas::CasStore;
use crate::config::{Engine, McConfig};
use crate::pipeline::{analyze_inner, candidate_pairs, pair_digest, AnalyzeError};
use crate::report::{McReport, StepStats};
use crate::resume::ResumePlan;
use crate::stage::{
    group_roots, plan_sink_groups, run_prefilters, Prefiltered, StageTrace, VerdictsArtifact,
    STAGE_VERDICTS,
};
use mcp_netlist::{Expanded, Netlist};
use mcp_obs::{ObsCtx, PairEvent};
use std::collections::{BTreeMap, BTreeSet};

/// What an ECO re-analysis actually did, for reporting and CI assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EcoSummary {
    /// `true` when no old verdicts could be spliced at all (no artifact
    /// for the old revision, or a config that breaks cone locality) and
    /// the analysis degenerated to a full cold run.
    pub full_run: bool,
    /// Changed or added node names in the delta.
    pub changed_nodes: usize,
    /// Removed node names in the delta.
    pub removed_nodes: usize,
    /// Sink groups in the new revision's plan.
    pub groups_total: usize,
    /// Groups whose cone intersects the delta (re-verified).
    pub groups_reverified: usize,
    /// Groups spliced entirely from the old revision's verdicts.
    pub groups_spliced: usize,
    /// Pairs answered from the old verdicts.
    pub pairs_spliced: usize,
    /// Pairs handed to the engines (dirty groups + newly created pairs).
    pub pairs_reverified: usize,
}

/// Analyzes the `new` revision, splicing verdicts from the `old`
/// revision's cached run for every sink group the edit provably cannot
/// have affected, and re-verifying the rest. The canonical report is
/// byte-identical to a cold full analysis of `new`; on success the
/// store is populated with the new revision's artifacts, so subsequent
/// warm or ECO runs chain off this one.
///
/// # Errors
///
/// Everything [`analyze`](crate::analyze) can return, plus
/// [`AnalyzeError::CacheCorrupt`] / [`AnalyzeError::CacheIo`] for
/// damaged or unwritable cache entries.
pub fn analyze_eco_with(
    old: &Netlist,
    new: &Netlist,
    cfg: &McConfig,
    obs: &ObsCtx,
    store: &CasStore,
) -> Result<(McReport, EcoSummary), AnalyzeError> {
    // The cone-locality argument needs per-group engine verdicts:
    // whole-circuit symbolic FSMs (BDD) and whole-circuit learned
    // implication sets couple groups to logic outside their cones.
    let cone_local =
        !matches!(cfg.engine, Engine::Bdd { .. }) && (cfg.slice || !cfg.static_learning);
    let old_key = crate::stage::stage_key_for(STAGE_VERDICTS, old.content_hash(), cfg);
    let old_art = if cone_local {
        store.get::<VerdictsArtifact>(STAGE_VERDICTS, old_key)?
    } else {
        None
    };
    let Some(old_art) = old_art else {
        // Nothing to splice from: a plain (cached) full run of the new
        // revision, which also populates the store.
        let report = crate::cache::analyze_cached_with(new, cfg, obs, store)?;
        let d = mcp_netlist::diff(old, new);
        return Ok((
            report,
            EcoSummary {
                full_run: true,
                changed_nodes: d.changed.len(),
                removed_nodes: d.removed.len(),
                ..EcoSummary::default()
            },
        ));
    };
    check_verdicts_identity(
        &old_art,
        old.content_hash(),
        cfg.fingerprint(),
        pair_digest(&candidate_pairs(old, cfg)),
    )?;
    obs.metrics.cache_hits.add(1);

    let delta = mcp_netlist::diff(old, new);

    // Replan the new revision on a throwaway context, exactly like the
    // shard planner: the real run re-journals and re-counts these stages
    // itself, and the two code paths are the same functions so they
    // cannot drift.
    let plan_obs = ObsCtx::new();
    let mut plan_stats = StepStats::default();
    let mut plan_results = Vec::new();
    let candidates = candidate_pairs(new, cfg);
    let Prefiltered {
        survivors,
        ff_toggles,
    } = run_prefilters(
        new,
        cfg,
        &plan_obs,
        &mut plan_stats,
        &mut plan_results,
        candidates,
    );
    let x = Expanded::build(new, cfg.frames());
    let groups = plan_sink_groups(&x, &survivors, ff_toggles.as_deref(), cfg.cycles);

    // Old verdicts keyed by FF *name*: indices can shift when the edit
    // inserts or deletes flip-flops, names cannot.
    let old_verdicts: BTreeMap<(&str, &str), &crate::stage::VerdictRecord> = old_art
        .verdicts
        .iter()
        .map(|r| ((r.src_name.as_str(), r.dst_name.as_str()), r))
        .collect();
    let ff_names: Vec<&str> = new.dffs().iter().map(|&id| new.node(id).name()).collect();

    let mut summary = EcoSummary {
        groups_total: groups.len(),
        changed_nodes: delta.changed.len(),
        removed_nodes: delta.removed.len(),
        ..EcoSummary::default()
    };
    let mut restored: BTreeMap<(usize, usize), PairEvent> = BTreeMap::new();
    let mut invalidated = 0u64;
    for group in &groups {
        // Dirty iff any node of the group's cone originates from a
        // changed netlist node. Every expansion node of a cone traces to
        // an origin except the frame-0 FF pseudo-inputs, which carry no
        // structure of their own.
        let roots = group_roots(&x, group, cfg.cycles);
        let dirty = !delta.changed.is_empty()
            && x.cone_of(&roots).iter().any(|&id| {
                x.node(id)
                    .origin()
                    .is_some_and(|(_, nid)| delta.changed.contains(new.node(nid).name()))
            });
        if dirty {
            summary.groups_reverified += 1;
            // Pairs whose old verdict exists but can no longer be
            // trusted: the edit invalidated them.
            invalidated += group
                .sources
                .iter()
                .filter(|&&i| old_verdicts.contains_key(&(ff_names[i], ff_names[group.sink])))
                .count() as u64;
            summary.pairs_reverified += group.sources.len();
            continue;
        }
        summary.groups_spliced += 1;
        for &i in &group.sources {
            match old_verdicts.get(&(ff_names[i], ff_names[group.sink])) {
                Some(r) => {
                    let mut event = cached_event(r);
                    // Re-key to the new revision's FF indices.
                    event.src = i;
                    event.dst = group.sink;
                    restored.insert((i, group.sink), event);
                    summary.pairs_spliced += 1;
                }
                // A pair the old run never classified (e.g. newly
                // connected through an unchanged cone — possible when
                // the edit rewired logic *outside* this cone that used
                // to block the prefilters): re-verify it.
                None => summary.pairs_reverified += 1,
            }
        }
    }
    obs.metrics
        .eco_groups_reverified
        .add(summary.groups_reverified as u64);
    obs.metrics
        .eco_groups_spliced
        .add(summary.groups_spliced as u64);
    obs.metrics.cache_invalidations.add(invalidated);

    let plan = ResumePlan {
        restored,
        from_cache: true,
    };
    let mut trace = StageTrace::default();
    let report = analyze_inner(new, cfg, obs, Some(&plan), Some(&mut trace))?;
    persist_trace(
        store,
        new.content_hash(),
        cfg,
        new.name(),
        pair_digest(&candidate_pairs(new, cfg)),
        trace,
    )?;
    Ok((report, summary))
}

/// The sinks of `groups` whose cones intersect `changed`, resolved
/// against `new` — exposed for the CLI's ECO reporting and tests.
pub fn dirty_sinks(new: &Netlist, cfg: &McConfig, changed: &BTreeSet<String>) -> Vec<usize> {
    let plan_obs = ObsCtx::new();
    let mut stats = StepStats::default();
    let mut results = Vec::new();
    let candidates = candidate_pairs(new, cfg);
    let Prefiltered {
        survivors,
        ff_toggles,
    } = run_prefilters(new, cfg, &plan_obs, &mut stats, &mut results, candidates);
    let x = Expanded::build(new, cfg.frames());
    let groups = plan_sink_groups(&x, &survivors, ff_toggles.as_deref(), cfg.cycles);
    groups
        .iter()
        .filter(|g| {
            let roots = group_roots(&x, g, cfg.cycles);
            x.cone_of(&roots).iter().any(|&id| {
                x.node(id)
                    .origin()
                    .is_some_and(|(_, nid)| changed.contains(new.node(nid).name()))
            })
        })
        .map(|g| g.sink)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::analyze_cached_with;
    use crate::cas::CasStore;
    use crate::pipeline::analyze_with;
    use mcp_gen::suite;
    use mcp_netlist::bench;
    use mcp_obs::MemSink;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcpath-eco-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn canon(report: &McReport) -> String {
        serde_json::to_string(&report.canonical()).expect("serialize")
    }

    /// One-gate edit to m27: flips an AND to an OR through the bench
    /// text, exactly what an ECO does.
    fn edited(nl: &Netlist) -> Netlist {
        let text = bench::to_bench(nl);
        let mut done = false;
        let patched: Vec<String> = text
            .lines()
            .map(|l| {
                if !done && l.contains("= AND(") {
                    done = true;
                    l.replace("= AND(", "= OR(")
                } else {
                    l.to_owned()
                }
            })
            .collect();
        assert!(done, "no AND gate to edit in {}", nl.name());
        bench::parse(nl.name(), &patched.join("\n")).expect("parse edited")
    }

    #[test]
    fn eco_equals_cold_full_run_and_splices_clean_groups() {
        let dir = tempdir("basic");
        let store = CasStore::open(&dir).expect("open");
        let old = suite::quick_suite().remove(1); // m298
        let new = edited(&old);
        let cfg = McConfig::default();
        analyze_cached_with(&old, &cfg, &ObsCtx::new(), &store).expect("seed old");

        let sink = Arc::new(MemSink::new());
        let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        let (eco, summary) = analyze_eco_with(&old, &new, &cfg, &obs, &store).expect("eco");
        let cold = analyze_with(&new, &cfg, &ObsCtx::new()).expect("cold");
        assert_eq!(canon(&eco), canon(&cold), "ECO must equal the cold run");

        assert!(!summary.full_run);
        assert_eq!(summary.changed_nodes, 1, "{summary:?}");
        assert!(summary.groups_spliced > 0, "{summary:?}");
        assert!(summary.groups_reverified > 0, "{summary:?}");
        assert!(summary.pairs_spliced > 0);
        // The journal separates spliced from re-verified work.
        let events = sink.drain();
        let cached = events.iter().filter(|e| e.cached).count();
        let engine = events.iter().filter(|e| e.engine.is_some()).count();
        assert_eq!(cached, summary.pairs_spliced);
        assert_eq!(engine, summary.pairs_reverified);
        let c = obs.snapshot().counters;
        assert_eq!(c.eco_groups_spliced, summary.groups_spliced as u64);
        assert_eq!(c.eco_groups_reverified, summary.groups_reverified as u64);
        assert!(c.cache_invalidations > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_revisions_splice_everything() {
        let dir = tempdir("noop");
        let store = CasStore::open(&dir).expect("open");
        let nl = suite::quick_suite().remove(0); // m27
        let cfg = McConfig::default();
        let seeded = analyze_cached_with(&nl, &cfg, &ObsCtx::new(), &store).expect("seed");
        let obs = ObsCtx::new();
        let (eco, summary) = analyze_eco_with(&nl, &nl, &cfg, &obs, &store).expect("eco");
        assert_eq!(canon(&eco), canon(&seeded));
        assert_eq!(summary.groups_reverified, 0, "{summary:?}");
        assert_eq!(summary.pairs_reverified, 0, "{summary:?}");
        assert_eq!(summary.changed_nodes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_old_artifact_falls_back_to_a_full_run() {
        let dir = tempdir("fallback");
        let store = CasStore::open(&dir).expect("open");
        let old = suite::quick_suite().remove(0);
        let new = edited(&old);
        let cfg = McConfig::default();
        // No seed run for `old`: ECO must degrade to a (correct) full run.
        let (eco, summary) =
            analyze_eco_with(&old, &new, &cfg, &ObsCtx::new(), &store).expect("eco");
        assert!(summary.full_run);
        let cold = analyze_with(&new, &cfg, &ObsCtx::new()).expect("cold");
        assert_eq!(canon(&eco), canon(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cone_coupling_configs_refuse_to_splice() {
        // Whole-circuit static learning (no slice) breaks cone locality;
        // the ECO path must fall back to a full run rather than splice.
        let dir = tempdir("guard");
        let store = CasStore::open(&dir).expect("open");
        let old = suite::quick_suite().remove(0);
        let new = edited(&old);
        let cfg = McConfig {
            static_learning: true,
            slice: false,
            ..McConfig::default()
        };
        analyze_cached_with(&old, &cfg, &ObsCtx::new(), &store).expect("seed");
        let (eco, summary) =
            analyze_eco_with(&old, &new, &cfg, &ObsCtx::new(), &store).expect("eco");
        assert!(summary.full_run, "{summary:?}");
        let cold = analyze_with(&new, &cfg, &ObsCtx::new()).expect("cold");
        assert_eq!(canon(&eco), canon(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eco_matches_cold_across_threads_and_schedulers() {
        // The acceptance matrix: ECO equality must hold under any
        // verdict-neutral execution shape.
        let dir = tempdir("matrix");
        let store = CasStore::open(&dir).expect("open");
        let old = suite::quick_suite().remove(0); // m27
        let new = edited(&old);
        analyze_cached_with(&old, &McConfig::default(), &ObsCtx::new(), &store).expect("seed");
        let cold = analyze_with(&new, &McConfig::default(), &ObsCtx::new()).expect("cold");
        let baseline = canon(&cold);
        for scheduler in [crate::Scheduler::WorkSteal, crate::Scheduler::Static] {
            for threads in [1usize, 2, 8] {
                let cfg = McConfig {
                    threads,
                    scheduler,
                    ..McConfig::default()
                };
                let (eco, _) =
                    analyze_eco_with(&old, &new, &cfg, &ObsCtx::new(), &store).expect("eco");
                assert_eq!(canon(&eco), baseline, "{scheduler:?} t={threads}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
