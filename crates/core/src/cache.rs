//! Warm-cache analysis: replay a prior run's verdicts from the
//! content-addressed store.
//!
//! [`analyze_cached_with`] is `analyze_with` plus a [`CasStore`]: a
//! *cold* run (no usable `Verdicts` artifact) analyzes normally while
//! collecting every stage artifact, then persists them; a *warm* rerun
//! of the same netlist × verdict-affecting config finds the `Verdicts`
//! artifact under its stage key, validates its identity digests, and
//! splices every verdict into the pipeline without constructing a
//! single engine. The cheap deterministic stages — lint, expansion, the
//! prefilters — still run fresh on the warm path, which is what keeps
//! the canonical report *byte-identical* to a cold run: their surviving
//! counters (`sim_pairs_dropped`, the lint counters) are recomputed
//! rather than guessed, and the spliced verdicts preserve the exact
//! step attribution the engines produced.
//!
//! Spliced pairs are journaled with `cached: true` and **no engine
//! tag**, so a warm run's ledger provably contains zero engine events —
//! the acceptance check CI enforces.

use crate::cas::{CasError, CasStore};
use crate::config::McConfig;
use crate::pipeline::{analyze_inner, candidate_pairs, pair_digest, AnalyzeError, DigestKind};
use crate::report::McReport;
use crate::resume::ResumePlan;
use crate::stage::{
    stage_key_for, StageTrace, VerdictRecord, VerdictsArtifact, STAGE_EXPANDED, STAGE_GROUPED,
    STAGE_LINTED, STAGE_PARSED, STAGE_PREFILTERED, STAGE_VERDICTS,
};
use mcp_netlist::Netlist;
use mcp_obs::{ObsCtx, PairEvent};
use std::collections::BTreeMap;

impl From<CasError> for AnalyzeError {
    fn from(e: CasError) -> Self {
        match e {
            CasError::Io { reason } => AnalyzeError::CacheIo { reason },
            CasError::Corrupt {
                stage,
                path,
                reason,
            } => AnalyzeError::CacheCorrupt {
                stage,
                reason: format!("{reason} ({})", path.display()),
            },
            // Analysis never takes the store lock (reads and atomic
            // puts are safe under a resident holder); a Locked error
            // reaching here is an I/O-level refusal.
            CasError::Locked { path, pid } => AnalyzeError::CacheIo {
                reason: format!("store locked by process {pid} ({})", path.display()),
            },
        }
    }
}

/// Synthesizes the splice event for one cached verdict: no engine tag,
/// no attributable time, `cached` set. The inverse of the pipeline's
/// own `verdict_event`, with provenance swapped from "an engine just
/// ran" to "the store already knew".
pub(crate) fn cached_event(r: &VerdictRecord) -> PairEvent {
    PairEvent {
        src: r.src,
        dst: r.dst,
        step: r.step.clone(),
        class: r.class.clone(),
        engine: None,
        assignments: Vec::new(),
        micros: 0,
        sim_word: None,
        slice_nodes: None,
        slice_vars: None,
        resumed: false,
        static_pass: false,
        cached: true,
        // No kernel tag: a splice simulates zero words, and untagged
        // events are exactly what per-tier throughput attribution skips.
        kernel: None,
    }
}

/// Validates a `Verdicts` artifact against the current run identity.
/// The stage key already encodes netlist hash and fingerprint, so a
/// mismatch here means a corrupted or hand-moved entry — but the check
/// costs nothing and turns a silent wrong-report into a typed refusal.
pub(crate) fn check_verdicts_identity(
    art: &VerdictsArtifact,
    netlist_hash: u64,
    fingerprint: u64,
    pairs: u64,
) -> Result<(), AnalyzeError> {
    if art.netlist_hash != netlist_hash {
        return Err(AnalyzeError::DigestMismatch {
            what: DigestKind::Netlist,
            ledger: art.netlist_hash,
            current: netlist_hash,
        });
    }
    if art.config_fingerprint != fingerprint {
        return Err(AnalyzeError::DigestMismatch {
            what: DigestKind::Config,
            ledger: art.config_fingerprint,
            current: fingerprint,
        });
    }
    if art.pair_digest != pairs {
        return Err(AnalyzeError::CacheCorrupt {
            stage: STAGE_VERDICTS.to_owned(),
            reason: format!(
                "pair digest {:016x} does not match the current candidate set {:016x}",
                art.pair_digest, pairs
            ),
        });
    }
    Ok(())
}

/// Persists every artifact a cold run collected. Called after the run
/// succeeded, so a crash mid-persist can only lose cache entries, never
/// report correctness.
pub(crate) fn persist_trace(
    store: &CasStore,
    netlist_hash: u64,
    cfg: &McConfig,
    circuit: &str,
    pairs: u64,
    trace: StageTrace,
) -> Result<(), AnalyzeError> {
    let StageTrace {
        parsed,
        linted,
        expanded,
        prefiltered,
        grouped,
        mut verdicts,
    } = trace;
    if let Some(a) = parsed {
        store.put(
            STAGE_PARSED,
            stage_key_for(STAGE_PARSED, netlist_hash, cfg),
            &a,
        )?;
    }
    if let Some(a) = linted {
        store.put(
            STAGE_LINTED,
            stage_key_for(STAGE_LINTED, netlist_hash, cfg),
            &a,
        )?;
    }
    if let Some(a) = expanded {
        store.put(
            STAGE_EXPANDED,
            stage_key_for(STAGE_EXPANDED, netlist_hash, cfg),
            &a,
        )?;
    }
    if let Some(a) = prefiltered {
        store.put(
            STAGE_PREFILTERED,
            stage_key_for(STAGE_PREFILTERED, netlist_hash, cfg),
            &a,
        )?;
    }
    if let Some(a) = grouped {
        store.put(
            STAGE_GROUPED,
            stage_key_for(STAGE_GROUPED, netlist_hash, cfg),
            &a,
        )?;
    }
    verdicts.sort_unstable_by_key(|r| (r.src, r.dst));
    store.put(
        STAGE_VERDICTS,
        stage_key_for(STAGE_VERDICTS, netlist_hash, cfg),
        &VerdictsArtifact {
            circuit: circuit.to_owned(),
            netlist_hash,
            config_fingerprint: cfg.fingerprint(),
            pair_digest: pairs,
            verdicts,
        },
    )?;
    Ok(())
}

/// [`analyze_cached_with`] on a fresh [`ObsCtx`].
///
/// # Errors
///
/// Everything [`analyze`](crate::analyze) can return, plus
/// [`AnalyzeError::CacheCorrupt`] / [`AnalyzeError::CacheIo`] for
/// damaged or unwritable cache entries.
pub fn analyze_cached(
    netlist: &Netlist,
    cfg: &McConfig,
    store: &CasStore,
) -> Result<McReport, AnalyzeError> {
    analyze_cached_with(netlist, cfg, &ObsCtx::new(), store)
}

/// Analyzes `netlist`, answering from `store` when a prior run of the
/// identical netlist × verdict-affecting config already persisted its
/// verdicts, and populating the store otherwise.
///
/// Warm path: zero engine constructions, `cache_hits` counts the
/// artifact lookup, `cache_pairs_spliced` the replayed verdicts, and
/// every spliced journal event carries `cached: true` with no engine
/// tag. Cold path: a normal run plus `cache_misses`, with all seven
/// stage artifacts persisted on success. The canonical report is
/// byte-identical between the two paths.
///
/// # Errors
///
/// Everything [`analyze`](crate::analyze) can return, plus
/// [`AnalyzeError::CacheCorrupt`] / [`AnalyzeError::CacheIo`].
pub fn analyze_cached_with(
    netlist: &Netlist,
    cfg: &McConfig,
    obs: &ObsCtx,
    store: &CasStore,
) -> Result<McReport, AnalyzeError> {
    let netlist_hash = netlist.content_hash();
    let vkey = stage_key_for(crate::stage::STAGE_VERDICTS, netlist_hash, cfg);
    match store.get::<VerdictsArtifact>(crate::stage::STAGE_VERDICTS, vkey)? {
        Some(art) => {
            let digest = pair_digest(&candidate_pairs(netlist, cfg));
            check_verdicts_identity(&art, netlist_hash, cfg.fingerprint(), digest)?;
            obs.metrics.cache_hits.add(1);
            let restored: BTreeMap<(usize, usize), PairEvent> = art
                .verdicts
                .iter()
                .map(|r| ((r.src, r.dst), cached_event(r)))
                .collect();
            let plan = ResumePlan {
                restored,
                from_cache: true,
            };
            analyze_inner(netlist, cfg, obs, Some(&plan), None)
        }
        None => {
            obs.metrics.cache_misses.add(1);
            let mut trace = StageTrace::default();
            let report = analyze_inner(netlist, cfg, obs, None, Some(&mut trace))?;
            let digest = pair_digest(&candidate_pairs(netlist, cfg));
            persist_trace(store, netlist_hash, cfg, netlist.name(), digest, trace)?;
            Ok(report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze_with;
    use mcp_gen::{circuits, suite};
    use mcp_obs::MemSink;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcpath-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn canon(report: &McReport) -> String {
        serde_json::to_string(&report.canonical()).expect("serialize")
    }

    #[test]
    fn warm_rerun_is_byte_identical_with_zero_engine_events() {
        let dir = tempdir("warm");
        let store = CasStore::open(&dir).expect("open");
        let nl = suite::quick_suite().remove(0); // m27
        let cfg = McConfig::default();

        let cold_obs = ObsCtx::new();
        let cold = analyze_cached_with(&nl, &cfg, &cold_obs, &store).expect("cold");
        assert_eq!(cold_obs.snapshot().counters.cache_misses, 1);

        let sink = Arc::new(MemSink::new());
        let warm_obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        let warm = analyze_cached_with(&nl, &cfg, &warm_obs, &store).expect("warm");
        assert_eq!(canon(&warm), canon(&cold), "warm must equal cold");
        // Zero engine work: every journaled event is prefilter- or
        // cache-attributed.
        let events = sink.drain();
        assert!(!events.is_empty());
        assert!(
            events.iter().all(|e| e.engine.is_none()),
            "a warm run must journal no engine-tagged events"
        );
        assert!(events.iter().any(|e| e.cached));
        let c = warm_obs.snapshot().counters;
        assert_eq!(c.cache_hits, 1);
        assert!(c.cache_pairs_spliced > 0);
        // And the plain (storeless) run agrees too.
        let plain = analyze_with(&nl, &cfg, &ObsCtx::new()).expect("plain");
        assert_eq!(canon(&plain), canon(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_fingerprint_changes_miss_instead_of_splicing() {
        let dir = tempdir("fp");
        let store = CasStore::open(&dir).expect("open");
        let nl = circuits::fig1();
        analyze_cached(&nl, &McConfig::default(), &store).expect("cold");
        // A different cycle budget lands on a different stage key: a
        // miss (and a second cold run), never a cross-config splice.
        let obs = ObsCtx::new();
        let k3 = McConfig {
            cycles: 3,
            ..McConfig::default()
        };
        analyze_cached_with(&nl, &k3, &obs, &store).expect("k3");
        assert_eq!(obs.snapshot().counters.cache_misses, 1);
        assert_eq!(obs.snapshot().counters.cache_hits, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_verdicts_entry_is_refused_with_a_typed_error() {
        let dir = tempdir("corrupt");
        let store = CasStore::open(&dir).expect("open");
        let nl = circuits::fig1();
        let cfg = McConfig::default();
        analyze_cached(&nl, &cfg, &store).expect("cold");
        let key = stage_key_for(crate::stage::STAGE_VERDICTS, nl.content_hash(), &cfg);
        let path = dir.join(format!("verdicts-{key:016x}.json"));
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, text.replace("multi", "singl")).expect("corrupt");
        match analyze_cached(&nl, &cfg, &store) {
            Err(AnalyzeError::CacheCorrupt { stage, .. }) => assert_eq!(stage, "verdicts"),
            other => panic!("expected CacheCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_runs_replay_across_thread_counts_and_schedulers() {
        // A cache written sequentially must splice identically under any
        // verdict-neutral execution shape (the fingerprint ignores them).
        let dir = tempdir("shape");
        let store = CasStore::open(&dir).expect("open");
        let nl = suite::quick_suite().remove(0);
        let cold = analyze_cached(&nl, &McConfig::default(), &store).expect("cold");
        for scheduler in [crate::Scheduler::WorkSteal, crate::Scheduler::Static] {
            for threads in [1usize, 2, 8] {
                let cfg = McConfig {
                    threads,
                    scheduler,
                    ..McConfig::default()
                };
                let obs = ObsCtx::new();
                let warm = analyze_cached_with(&nl, &cfg, &obs, &store).expect("warm");
                assert_eq!(canon(&warm), canon(&cold), "{scheduler:?} t={threads}");
                assert_eq!(obs.snapshot().counters.cache_hits, 1);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
