//! Per-pair maximal cycle-budget computation.
//!
//! The k-cycle extension (paper Section 4.1) asks a per-`k` question; a
//! timing flow usually wants the answer the other way around: *how many
//! cycles can this pair be given?* [`max_cycle_budget`] answers it with
//! one expansion at the limit and one scenario sweep, finding for each
//! `(FFi(t), FFj(t+1))` assignment the earliest sink time that can differ
//! and taking the minimum — instead of re-running the whole analysis per
//! `k` as a naive sweep would.

use crate::config::McConfig;
use crate::pipeline::AnalyzeError;
use crate::schedule::run_items;
use mcp_atpg::{search, SearchConfig, SearchOutcome};
use mcp_implication::ImpEngine;
use mcp_netlist::{Expanded, Netlist};
use mcp_obs::ObsCtx;

/// The verified cycle budget of one FF pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleBudget {
    /// The pair is single-cycle: some pattern needs the hop in one cycle.
    SingleCycle,
    /// The sink provably holds for `verified` cycles after a source
    /// transition, and a violating pattern exists at `verified + 1`.
    Exact {
        /// The maximal verified budget (≥ 2).
        verified: u32,
    },
    /// The sink provably holds through the search limit; the true budget
    /// is `at_least` or more (possibly unbounded, e.g. hold registers).
    AtLeast {
        /// The limit up to which the budget was verified.
        at_least: u32,
    },
    /// The search aborted within its backtrack limit before the budget
    /// could be bracketed.
    Unknown,
}

/// Computes the maximal verified cycle budget of pair `(i, j)`, searching
/// sink times up to `limit` (the expansion uses `limit` frames).
///
/// # Errors
///
/// Returns [`AnalyzeError::InvalidCycles`] when `limit < 2`.
///
/// # Panics
///
/// Panics if `i` or `j` is out of range for `netlist`.
pub fn max_cycle_budget(
    netlist: &Netlist,
    i: usize,
    j: usize,
    limit: u32,
    cfg: &McConfig,
) -> Result<CycleBudget, AnalyzeError> {
    if limit < 2 {
        return Err(AnalyzeError::InvalidCycles { got: limit });
    }
    let x = Expanded::build(netlist, limit);
    let mut eng = ImpEngine::new(&x);
    let search_cfg = SearchConfig {
        backtrack_limit: cfg.backtrack_limit,
    };
    Ok(budget_for_pair(&mut eng, &x, i, j, limit, &search_cfg))
}

/// A pair list with each pair's verified budget, sorted by pair.
pub type PairBudgets = Vec<((usize, usize), CycleBudget)>;

/// [`max_cycle_budget`] for a whole pair list at once: one shared
/// expansion, and the per-pair sweeps distributed over `cfg.threads`
/// workers under `cfg.scheduler` (each worker owns an engine; the sweep
/// fully restores engine state between pairs, so results are independent
/// of which worker handles which pair). Results come back sorted by
/// pair, making the output deterministic for any thread count.
///
/// # Errors
///
/// Returns [`AnalyzeError::InvalidCycles`] when `limit < 2`.
///
/// # Panics
///
/// Panics if any pair index is out of range for `netlist`.
pub fn max_cycle_budgets(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    limit: u32,
    cfg: &McConfig,
) -> Result<PairBudgets, AnalyzeError> {
    if limit < 2 {
        return Err(AnalyzeError::InvalidCycles { got: limit });
    }
    let x = Expanded::build(netlist, limit);
    let search_cfg = SearchConfig {
        backtrack_limit: cfg.backtrack_limit,
    };
    let obs = ObsCtx::new();
    let (mut out, _busy) = run_items(
        pairs,
        cfg.threads,
        cfg.scheduler,
        &obs,
        "kcycle/pairs",
        |feed, out| {
            let mut eng = ImpEngine::new(&x);
            while let Some((i, j)) = feed.next() {
                out.push((
                    (i, j),
                    budget_for_pair(&mut eng, &x, i, j, limit, &search_cfg),
                ));
            }
        },
    );
    out.sort_unstable_by_key(|&(p, _)| p);
    Ok(out)
}

/// The scenario sweep for one pair on a caller-provided engine over a
/// caller-provided expansion. The engine is checkpointed and fully
/// restored, so repeated calls (in any order) are independent.
fn budget_for_pair(
    eng: &mut ImpEngine<'_>,
    x: &Expanded,
    i: usize,
    j: usize,
    limit: u32,
    search_cfg: &SearchConfig,
) -> CycleBudget {
    // For each scenario, the earliest m in 2..=limit where the sink can
    // differ from FFj(t+1); the pair's budget is (min over scenarios) - 1.
    let mut earliest_violation: Option<u32> = None;
    let mut any_unknown = false;

    for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
        let cp = eng.checkpoint();
        let premise_ok = eng
            .assign(x.ff_at(i, 0), a)
            .and_then(|()| eng.assign(x.ff_at(i, 1), !a))
            .and_then(|()| eng.assign(x.ff_at(j, 1), b))
            .and_then(|()| eng.propagate())
            .is_ok();
        if !premise_ok {
            eng.backtrack(cp);
            continue;
        }
        let scan_to = earliest_violation.unwrap_or(limit + 1).min(limit);
        for m in 2..=scan_to {
            let cp2 = eng.checkpoint();
            let ok = eng
                .assign(x.ff_at(j, m), !b)
                .and_then(|()| eng.propagate())
                .is_ok();
            if !ok {
                eng.backtrack(cp2);
                continue;
            }
            let (outcome, _) = search(eng, search_cfg);
            eng.backtrack(cp2);
            match outcome {
                SearchOutcome::Sat(_) => {
                    earliest_violation = Some(m);
                    break; // later m in this scenario cannot improve the min
                }
                SearchOutcome::Unsat => {}
                SearchOutcome::Aborted => any_unknown = true,
            }
        }
        eng.backtrack(cp);
        if earliest_violation == Some(2) {
            break; // cannot get worse
        }
    }

    match earliest_violation {
        Some(2) => CycleBudget::SingleCycle,
        Some(m) => CycleBudget::Exact { verified: m - 1 },
        None if any_unknown => CycleBudget::Unknown,
        None => CycleBudget::AtLeast { at_least: limit },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_gen::generators::{gated_datapath, DatapathConfig};

    fn cfg() -> McConfig {
        McConfig {
            backtrack_limit: 100_000,
            ..McConfig::default()
        }
    }

    #[test]
    fn datapath_budgets_equal_their_latency() {
        for latency in [2u64, 3, 5, 6] {
            let nl = gated_datapath(&DatapathConfig {
                width: 1,
                counter_bits: 3,
                load_phase: 0,
                capture_phase: latency,
            });
            let a = nl.ff_index(nl.find_node("D0_A0").unwrap()).unwrap();
            let b = nl.ff_index(nl.find_node("D0_B0").unwrap()).unwrap();
            let budget = max_cycle_budget(&nl, a, b, 8, &cfg()).expect("valid limit");
            assert_eq!(
                budget,
                CycleBudget::Exact {
                    verified: latency as u32
                },
                "latency {latency}"
            );
        }
    }

    #[test]
    fn hold_register_budget_is_unbounded() {
        let nl = mcp_netlist::bench::parse("hold", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = BUFF(q)")
            .expect("parse");
        let budget = max_cycle_budget(&nl, 0, 0, 6, &cfg()).expect("valid limit");
        assert_eq!(budget, CycleBudget::AtLeast { at_least: 6 });
    }

    #[test]
    fn toggle_register_is_single_cycle() {
        let nl = mcp_netlist::bench::parse("toggle", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)")
            .expect("parse");
        let budget = max_cycle_budget(&nl, 0, 0, 4, &cfg()).expect("valid limit");
        assert_eq!(budget, CycleBudget::SingleCycle);
    }

    #[test]
    fn budget_agrees_with_per_k_analysis() {
        use crate::{analyze, McConfig};
        let nl = gated_datapath(&DatapathConfig {
            width: 2,
            counter_bits: 2,
            load_phase: 1,
            capture_phase: 0,
        });
        let a = nl.ff_index(nl.find_node("D0_A0").unwrap()).unwrap();
        let b = nl.ff_index(nl.find_node("D0_B0").unwrap()).unwrap();
        let budget = max_cycle_budget(&nl, a, b, 6, &cfg()).expect("valid limit");
        let CycleBudget::Exact { verified } = budget else {
            panic!("expected exact budget, got {budget:?}");
        };
        for k in 2..=verified + 1 {
            let r = analyze(
                &nl,
                &McConfig {
                    cycles: k,
                    backtrack_limit: 100_000,
                    ..McConfig::default()
                },
            )
            .expect("analyze");
            assert_eq!(
                r.class_of(a, b).map(|c| c.is_multi()),
                Some(k <= verified),
                "k={k}"
            );
        }
    }

    #[test]
    fn invalid_limit_is_rejected() {
        let nl = mcp_gen::circuits::fig1();
        assert!(max_cycle_budget(&nl, 0, 1, 1, &cfg()).is_err());
        assert!(max_cycle_budgets(&nl, &[(0, 1)], 1, &cfg()).is_err());
    }

    #[test]
    fn batch_budgets_match_single_pair_calls_at_any_thread_count() {
        let nl = mcp_gen::circuits::fig1();
        let pairs = nl.connected_ff_pairs();
        let mut expected: Vec<((usize, usize), CycleBudget)> = pairs
            .iter()
            .map(|&(i, j)| {
                (
                    (i, j),
                    max_cycle_budget(&nl, i, j, 6, &cfg()).expect("valid limit"),
                )
            })
            .collect();
        expected.sort_unstable_by_key(|&(p, _)| p);
        for threads in [1usize, 2, 8] {
            for scheduler in [crate::Scheduler::WorkSteal, crate::Scheduler::Static] {
                let got = max_cycle_budgets(
                    &nl,
                    &pairs,
                    6,
                    &McConfig {
                        threads,
                        scheduler,
                        ..cfg()
                    },
                )
                .expect("valid limit");
                assert_eq!(got, expected, "threads={threads} {scheduler:?}");
            }
        }
    }

    #[test]
    fn batch_budgets_on_no_pairs_is_a_clean_no_op() {
        let nl = mcp_gen::circuits::fig1();
        let got = max_cycle_budgets(
            &nl,
            &[],
            6,
            &McConfig {
                threads: 8,
                ..cfg()
            },
        )
        .expect("valid limit");
        assert!(got.is_empty());
    }
}
