//! Analysis configuration.

use mcp_sim::FilterConfig;

/// Which decision engine classifies the pairs that survive the prefilters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's engine: implication procedure + bounded D-algorithm
    /// search on the time-frame expansion.
    Implication,
    /// The conventional SAT-based method \[9\]: one incremental CDCL query
    /// per pair over the Tseitin encoding of the same expansion.
    Sat,
    /// The symbolic method in the spirit of \[8\]: BDD transition relation,
    /// optionally restricted to the reachable states.
    Bdd {
        /// Node budget; exceeding it classifies remaining pairs
        /// [`Unknown`](crate::PairClass::Unknown) (the "does not scale"
        /// outcome).
        node_limit: usize,
        /// Restrict the check to states reachable from the all-zero reset
        /// state. `false` assumes all states reachable, like the other
        /// engines — useful for cross-validation.
        reachability: bool,
    },
}

/// How the pair loop distributes surviving FF pairs over worker threads.
///
/// Verdicts, reports and counter totals are identical under both
/// policies (and any thread count); only wall-clock differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Work stealing (default): pairs are seeded into a global injector
    /// hardest-first (by a fanin-cone + sim-activity cost hint); each
    /// worker drains a local LIFO deque and steals from the injector or
    /// from other workers when it runs dry. Robust to the heavy-tailed
    /// per-pair cost distribution of Table 2, where a few ATPG/SAT
    /// residue pairs cost orders of magnitude more than the implication
    /// majority.
    #[default]
    WorkSteal,
    /// Legacy static partitioning: pairs are split into equal contiguous
    /// chunks, one per worker, up front. Kept for A/B measurement; one
    /// unlucky chunk can serialize the run.
    Static,
}

/// Which slice of a sharded run this process owns.
///
/// The surviving pair set is partitioned into `count` deterministic,
/// sink-group-aligned shards (see `mcp_core::shard`); a process with a
/// `ShardSpec` verifies only the pairs of shard `index` and journals
/// its shard identity into the run-ledger header so `merge` can check
/// completeness. Sharding is verdict-neutral scheduling policy — the
/// merged report is byte-identical to an unsharded run — so it is
/// excluded from [`McConfig::fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index, `< count`.
    pub index: u64,
    /// Total number of shards, `>= 1`.
    pub count: u64,
}

impl ShardSpec {
    /// Whether `index < count` and `count >= 1`.
    pub fn is_valid(&self) -> bool {
        self.count >= 1 && self.index < self.count
    }
}

/// Configuration of [`analyze`](crate::analyze).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McConfig {
    /// Decision engine (default: the paper's implication engine).
    pub engine: Engine,
    /// Cycle budget `k` to verify: a pair is reported multi-cycle when the
    /// sink provably holds its value through `t+1 .. t+k` whenever the
    /// source transitions at `t+1`. The paper's default is `k = 2`
    /// (detecting "not single-cycle"); larger `k` uses `k` time frames.
    pub cycles: u32,
    /// Run the random-pattern prefilter (paper step 2). Disable to measure
    /// engine performance in isolation.
    pub use_sim_filter: bool,
    /// Random-pattern filter settings.
    pub sim: FilterConfig,
    /// ATPG backtrack limit (paper: 50, raised for hard circuits).
    pub backtrack_limit: u64,
    /// Enable SOCRATES-style static learning before the pair loop (the
    /// paper enables it for its hardest circuits).
    pub static_learning: bool,
    /// Cap on stored learned implications.
    pub learn_budget: usize,
    /// Analyze self pairs `(i, i)` (the paper reports them; the SAT
    /// baseline \[9\] excluded them).
    pub include_self_pairs: bool,
    /// Run the error-level structural lints (`mcp-lint`) before the
    /// engines and refuse corrupt netlists. Disable (`--no-lint`) only to
    /// push a known-suspect netlist through anyway.
    pub lint: bool,
    /// Scope per-pair engine work to the pair's cone of influence: the
    /// survivors are grouped by sink FF and each group is classified on a
    /// [`Slice`](mcp_netlist::Slice) of the time-frame expansion instead
    /// of the whole circuit (default: on). Verdicts — and the canonical
    /// report — are identical either way; only engine effort differs.
    /// Disable (`--no-slice`, or the `MCPATH_NO_SLICE` env var) to
    /// A/B-measure whole-circuit engine cost.
    pub slice: bool,
    /// Statically classify pairs whose sink D input the dataflow
    /// analysis proves constant at the first Kleene iterate, before the
    /// sim prefilter or any engine runs (default: on). A frozen sink
    /// never transitions, so such pairs are multi-cycle for every `k`;
    /// the engines would reach the same verdict the expensive way.
    /// Verdicts — and the canonical report — are identical either way.
    /// Disable (`--no-static-classify`, or the
    /// `MCPATH_NO_STATIC_CLASSIFY` env var) to A/B-measure the saving.
    pub static_classify: bool,
    /// Worker threads for the pair loop (pairs are independent). `1` =
    /// sequential. The BDD engine is inherently sequential and ignores
    /// this.
    pub threads: usize,
    /// How pairs are distributed over the worker threads; irrelevant at
    /// `threads = 1`.
    pub scheduler: Scheduler,
    /// Restrict this run to one shard of the deterministic pair
    /// partition (`None` = verify everything, the default). Like
    /// `threads`, this is pure scheduling policy: it never changes a
    /// verdict, only which process computes it.
    pub shard: Option<ShardSpec>,
    /// Root of the content-addressed stage-artifact store
    /// ([`CasStore`](crate::CasStore)); `None` (the default) disables
    /// caching entirely. Set via `--cache-dir` or the `MCPATH_CACHE_DIR`
    /// environment variable. Where the artifacts *live* never affects
    /// what they *say*, so this knob is excluded from
    /// [`McConfig::fingerprint`] and from every stage key.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            engine: Engine::Implication,
            cycles: 2,
            use_sim_filter: true,
            sim: FilterConfig::default(),
            backtrack_limit: 50,
            static_learning: false,
            learn_budget: 8_000_000,
            include_self_pairs: true,
            lint: true,
            slice: std::env::var_os("MCPATH_NO_SLICE").is_none(),
            static_classify: std::env::var_os("MCPATH_NO_STATIC_CLASSIFY").is_none(),
            threads: 1,
            scheduler: Scheduler::default(),
            shard: None,
            cache_dir: std::env::var_os("MCPATH_CACHE_DIR").map(std::path::PathBuf::from),
        }
    }
}

impl McConfig {
    /// Number of expansion frames the configuration needs (`cycles`).
    pub fn frames(&self) -> u32 {
        self.cycles
    }

    /// The simulation lane width of the compiled prefilter kernel
    /// (64, 128, 256 or 512 patterns per pass) — a view onto
    /// [`FilterConfig::lanes`], which is the single source of truth.
    /// Defaults to 256; the CLI sets it via `--sim-lanes`, the
    /// environment via `MCPATH_SIM_LANES`.
    pub fn sim_lanes(&self) -> u32 {
        self.sim.lanes
    }

    /// Fingerprint of the *verdict-affecting* configuration, written
    /// into the run-ledger header and checked by `analyze --resume`.
    ///
    /// Covers everything that can change a pair's classification or the
    /// step that resolves it: the engine (with its BDD parameters), the
    /// cycle budget, the sim prefilter's on/off state and its seed and
    /// stopping rules, the ATPG backtrack limit, static learning and its
    /// budget (learning moves pairs between the implication and ATPG
    /// steps), and self-pair inclusion. Deliberately *excludes* knobs
    /// proven verdict-neutral by the determinism test suite — threads,
    /// scheduler, sharding, slicing, sim lane width, tape vs reference
    /// kernel, the static pre-classification pass (it resolves pairs the
    /// engines would classify identically) — and the lint gate, so a
    /// resumed run may change any of those. Shard neutrality is what
    /// lets `merge` check every shard ledger against one fingerprint,
    /// and lets a shard be resumed with a different thread count.
    pub fn fingerprint(&self) -> u64 {
        let engine = match self.engine {
            Engine::Implication => "implication".to_owned(),
            Engine::Sat => "sat".to_owned(),
            Engine::Bdd {
                node_limit,
                reachability,
            } => format!("bdd:{node_limit}:{reachability}"),
        };
        let text = format!(
            "engine={engine};cycles={};sim={};seed={};idle={};max={};\
             backtracks={};learning={};learn_budget={};self_pairs={}",
            self.cycles,
            self.use_sim_filter,
            self.sim.seed,
            self.sim.idle_words,
            self.sim.max_words,
            self.backtrack_limit,
            self.static_learning,
            self.learn_budget,
            self.include_self_pairs,
        );
        mcp_obs::fnv1a(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let cfg = McConfig::default();
        assert_eq!(cfg.engine, Engine::Implication);
        assert_eq!(cfg.cycles, 2);
        assert_eq!(cfg.backtrack_limit, 50);
        assert_eq!(cfg.sim.idle_words, 128);
        assert!(cfg.include_self_pairs);
        assert!(cfg.lint);
        if std::env::var_os("MCPATH_NO_SLICE").is_none() {
            assert!(cfg.slice, "slicing defaults to on");
        } else {
            assert!(!cfg.slice, "MCPATH_NO_SLICE must disable slicing");
        }
        if std::env::var_os("MCPATH_NO_STATIC_CLASSIFY").is_none() {
            assert!(cfg.static_classify, "static pre-pass defaults to on");
        } else {
            assert!(!cfg.static_classify);
        }
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.scheduler, Scheduler::WorkSteal);
        if std::env::var_os("MCPATH_SIM_LANES").is_none() {
            assert_eq!(cfg.sim_lanes(), 256, "lane width defaults to 256");
        }
        if std::env::var_os("MCPATH_NO_TAPE").is_none() {
            assert!(cfg.sim.tape, "tape kernel defaults to on");
        } else {
            assert!(!cfg.sim.tape, "MCPATH_NO_TAPE must disable the tape");
        }
    }

    #[test]
    fn fingerprint_tracks_verdict_affecting_knobs_only() {
        let base = McConfig::default();
        let fp = base.fingerprint();
        assert_eq!(fp, McConfig::default().fingerprint());

        // Verdict-neutral knobs leave the fingerprint alone.
        let mut neutral = base.clone();
        neutral.threads = 8;
        neutral.scheduler = Scheduler::Static;
        neutral.slice = !neutral.slice;
        neutral.lint = !neutral.lint;
        neutral.sim.lanes = 64;
        neutral.sim.tape = !neutral.sim.tape;
        // Every kernel tier computes the same outcome, so the tier must
        // never invalidate cached verdicts.
        neutral.sim.kernel = mcp_sim::SimKernel::Reference;
        neutral.static_classify = !neutral.static_classify;
        neutral.shard = Some(ShardSpec { index: 1, count: 4 });
        neutral.cache_dir = Some(std::path::PathBuf::from("/tmp/mcpath-cache"));
        assert_eq!(neutral.fingerprint(), fp);

        // Verdict-affecting knobs each change it.
        let mut cycles = base.clone();
        cycles.cycles = 3;
        assert_ne!(cycles.fingerprint(), fp);
        let mut seed = base.clone();
        seed.sim.seed ^= 1;
        assert_ne!(seed.fingerprint(), fp);
        let mut learning = base.clone();
        learning.static_learning = !learning.static_learning;
        assert_ne!(learning.fingerprint(), fp);
        let mut engine = base.clone();
        engine.engine = Engine::Sat;
        assert_ne!(engine.fingerprint(), fp);
    }

    #[test]
    fn shard_specs_validate_index_against_count() {
        assert!(ShardSpec { index: 0, count: 1 }.is_valid());
        assert!(ShardSpec { index: 3, count: 4 }.is_valid());
        assert!(!ShardSpec { index: 4, count: 4 }.is_valid());
        assert!(!ShardSpec { index: 0, count: 0 }.is_valid());
    }
}
