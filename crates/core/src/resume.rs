//! Checkpoint/resume from a run ledger (`analyze --resume`).
//!
//! A v2 ledger (see [`mcp_obs::RunHeader`]) is a durable checkpoint:
//! every engine verdict was flushed the moment it landed, so a run
//! killed mid-flight leaves behind exactly the pairs it completed. This
//! module validates that a ledger belongs to the run being restarted —
//! same format version, same netlist content, same verdict-affecting
//! config, same candidate pair set — and replays its completed verdicts
//! into the pipeline so only the unresolved pairs reach the scheduler.
//!
//! The merged result is *byte-identical* to an uninterrupted run's
//! canonical report: verdicts are deterministic per pair, the sim
//! prefilter and lint gate re-run from the same seed and config, and
//! everything wall-clock-dependent is projected out by
//! [`McReport::canonical`].

use crate::config::McConfig;
use crate::pipeline::{analyze_inner, candidate_pairs, pair_digest, AnalyzeError, DigestKind};
use crate::report::McReport;
use mcp_netlist::Netlist;
use mcp_obs::{Ledger, ObsCtx, PairEvent, LEDGER_VERSION};
use std::collections::BTreeMap;

/// A validated resume: the engine verdicts restorable from a prior
/// run's ledger, keyed by pair. Built by [`plan_resume`].
#[derive(Debug, Clone)]
pub struct ResumePlan {
    pub(crate) restored: BTreeMap<(usize, usize), PairEvent>,
    /// `true` when the plan splices from the artifact cache rather than
    /// a crash-recovery ledger: spliced events are re-journaled with
    /// `cached` (no engine tag) instead of `resumed`, and land in the
    /// cache counters instead of the resume ones.
    pub(crate) from_cache: bool,
}

impl ResumePlan {
    /// Number of pairs whose verdicts the plan restores.
    pub fn restored_pairs(&self) -> usize {
        self.restored.len()
    }
}

/// Validates `ledger` against the current inputs and extracts the
/// completed engine verdicts.
///
/// Sim-prefilter drops in the ledger are ignored — the prefilter is
/// deterministic and cheap, so the resumed run recomputes them — as are
/// span lines. Only events carrying an engine verdict are restored.
///
/// # Errors
///
/// [`AnalyzeError::DigestMismatch`] when the netlist content hash or the
/// verdict-affecting config fingerprint disagrees (naming both digests);
/// [`AnalyzeError::ResumeMismatch`] when the ledger has no v2 header, a
/// different format version, a different candidate pair set (digest or
/// count), or a different shard identity than the current invocation.
pub fn plan_resume(
    netlist: &Netlist,
    cfg: &McConfig,
    ledger: &Ledger,
) -> Result<ResumePlan, AnalyzeError> {
    let mismatch = |reason: String| AnalyzeError::ResumeMismatch { reason };
    let header = ledger.header.as_ref().ok_or_else(|| {
        mismatch(
            "ledger has no run header (pre-v2 journal, or the run died before writing one)"
                .to_owned(),
        )
    })?;
    if header.ledger != LEDGER_VERSION {
        return Err(mismatch(format!(
            "ledger format v{} (this build reads v{LEDGER_VERSION})",
            header.ledger
        )));
    }
    let netlist_hash = netlist.content_hash();
    if header.netlist_hash != netlist_hash {
        return Err(AnalyzeError::DigestMismatch {
            what: DigestKind::Netlist,
            ledger: header.netlist_hash,
            current: netlist_hash,
        });
    }
    let fingerprint = cfg.fingerprint();
    if header.config_fingerprint != fingerprint {
        return Err(AnalyzeError::DigestMismatch {
            what: DigestKind::Config,
            ledger: header.config_fingerprint,
            current: fingerprint,
        });
    }
    // Shard identity must match exactly: a shard's ledger only covers
    // that shard's owned pairs, so splicing it into an unsharded run (or
    // a different shard) would silently leave — or duplicate — work.
    // `merge` is the one consumer allowed to cross this boundary, and it
    // builds its own plan. Pre-shard ledgers carry the unsharded (0, 0)
    // identity via serde defaults and keep resuming unsharded runs.
    let (want_index, want_count) = cfg.shard.map_or((0, 0), |s| (s.index, s.count));
    if (header.shard_index, header.shard_count) != (want_index, want_count) {
        let describe = |index: u64, count: u64| {
            if count == 0 {
                "unsharded".to_owned()
            } else {
                format!("shard {index}/{count}")
            }
        };
        return Err(mismatch(format!(
            "shard mismatch: ledger is {}, this run is {} \
             (use `mcpath merge` to combine shard ledgers)",
            describe(header.shard_index, header.shard_count),
            describe(want_index, want_count),
        )));
    }
    let candidates = candidate_pairs(netlist, cfg);
    let digest = pair_digest(&candidates);
    if header.pair_digest != digest || header.pairs != candidates.len() as u64 {
        return Err(mismatch(format!(
            "candidate pair set mismatch: ledger committed to {} pairs (digest {:016x}), \
             this run has {} (digest {digest:016x})",
            header.pairs,
            header.pair_digest,
            candidates.len()
        )));
    }

    let candidate_set: std::collections::BTreeSet<(usize, usize)> =
        candidates.into_iter().collect();
    let mut restored = BTreeMap::new();
    for event in &ledger.events {
        if event.engine.is_none() {
            continue; // sim-prefilter drop: recomputed, not restored
        }
        let pair = (event.src, event.dst);
        if !candidate_set.contains(&pair) {
            return Err(mismatch(format!(
                "ledger carries a verdict for pair ({}, {}) outside the candidate set",
                event.src, event.dst
            )));
        }
        // Last write wins; duplicates can only arise from a ledger that
        // was itself resumed, where the replayed and original verdicts
        // are identical anyway.
        restored.insert(pair, event.clone());
    }
    Ok(ResumePlan {
        restored,
        from_cache: false,
    })
}

/// [`analyze_with`](crate::analyze_with), restarted from a prior run's
/// ledger: validates the ledger with [`plan_resume`], feeds only the
/// unresolved pairs to the engines, and merges restored + new verdicts
/// into the same report an uninterrupted run produces.
///
/// # Errors
///
/// [`AnalyzeError::ResumeMismatch`] from validation, plus everything
/// [`analyze`](crate::analyze) can return.
pub fn analyze_resume_with(
    netlist: &Netlist,
    cfg: &McConfig,
    obs: &ObsCtx,
    ledger: &Ledger,
) -> Result<McReport, AnalyzeError> {
    let plan = plan_resume(netlist, cfg, ledger)?;
    analyze_inner(netlist, cfg, obs, Some(&plan), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze_with;
    use mcp_gen::{circuits, suite};
    use mcp_obs::MemSink;
    use std::sync::Arc;

    /// Runs `analyze_with` while capturing its ledger through a shared
    /// `MemSink`, returning the canonical report JSON and the ledger.
    fn run_with_ledger(nl: &Netlist, cfg: &McConfig) -> (String, Ledger) {
        let sink = Arc::new(MemSink::new());
        let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        let report = analyze_with(nl, cfg, &obs).expect("analyze");
        let canonical = serde_json::to_string(&report.canonical()).expect("serialize");
        let ledger = Ledger {
            header: sink.take_header(),
            spans: sink.drain_spans(),
            events: sink.drain(),
        };
        (canonical, ledger)
    }

    #[test]
    fn resume_from_a_complete_ledger_reverifies_nothing() {
        let nl = circuits::fig1();
        let cfg = McConfig::default();
        let (baseline, ledger) = run_with_ledger(&nl, &cfg);
        assert!(ledger.header.is_some(), "run must write a header");
        let engine_verdicts = ledger.events.iter().filter(|e| e.engine.is_some()).count();
        assert!(engine_verdicts > 0, "fig1 resolves pairs via the engines");

        let obs = ObsCtx::new();
        let resumed = analyze_resume_with(&nl, &cfg, &obs, &ledger).expect("resume");
        assert_eq!(
            serde_json::to_string(&resumed.canonical()).expect("serialize"),
            baseline,
            "resumed report must be byte-identical"
        );
        let c = obs.snapshot().counters;
        assert_eq!(c.resume_pairs_loaded, engine_verdicts as u64);
        assert_eq!(c.implications, 0, "no engine re-runs on a full resume");
        assert_eq!(c.atpg_decisions, 0);
        assert_eq!(c.atpg_backtracks, 0);
    }

    #[test]
    fn resume_from_a_truncated_ledger_is_byte_identical() {
        let nl = suite::quick_suite().remove(0);
        let cfg = McConfig::default();
        let (baseline, mut ledger) = run_with_ledger(&nl, &cfg);
        let engine_total = ledger.events.iter().filter(|e| e.engine.is_some()).count();
        assert!(engine_total > 1, "need enough verdicts to truncate");
        // A SIGKILL mid-run leaves the header plus a prefix of the
        // events; model it by dropping the back half.
        ledger.events.truncate(ledger.events.len() / 2);
        let kept = ledger.events.iter().filter(|e| e.engine.is_some()).count();

        // Capture the resumed run's own ledger too: replayed verdicts
        // must be re-recorded (marked resumed) so it is itself complete.
        let sink = Arc::new(MemSink::new());
        let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        let resumed = analyze_resume_with(&nl, &cfg, &obs, &ledger).expect("resume");
        assert_eq!(
            serde_json::to_string(&resumed.canonical()).expect("serialize"),
            baseline,
            "partial resume must converge to the uninterrupted report"
        );
        assert_eq!(obs.snapshot().counters.resume_pairs_loaded, kept as u64);
        let replayed = sink.drain();
        assert_eq!(
            replayed.iter().filter(|e| e.engine.is_some()).count(),
            engine_total,
            "resumed ledger must carry every engine verdict (replayed + new)"
        );
        assert_eq!(replayed.iter().filter(|e| e.resumed).count(), kept);
    }

    #[test]
    fn plan_resume_rejects_headerless_ledgers() {
        let nl = circuits::fig1();
        let cfg = McConfig::default();
        let err = plan_resume(&nl, &cfg, &Ledger::default()).unwrap_err();
        assert!(err.to_string().contains("no run header"), "{err}");
    }

    #[test]
    fn plan_resume_rejects_version_netlist_and_config_drift() {
        let nl = circuits::fig1();
        let cfg = McConfig::default();
        let (_, ledger) = run_with_ledger(&nl, &cfg);

        // Foreign format version.
        let mut wrong_version = ledger.clone();
        wrong_version.header.as_mut().unwrap().ledger = LEDGER_VERSION + 1;
        let err = plan_resume(&nl, &cfg, &wrong_version).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");

        // Different circuit: the dedicated variant names both digests.
        let other = circuits::fig4_fragment();
        let err = plan_resume(&other, &cfg, &ledger).unwrap_err();
        assert_eq!(
            err,
            AnalyzeError::DigestMismatch {
                what: DigestKind::Netlist,
                ledger: nl.content_hash(),
                current: other.content_hash(),
            }
        );
        assert!(err.to_string().contains("netlist mismatch"), "{err}");
        assert!(
            err.to_string()
                .contains(&format!("{:016x}", nl.content_hash())),
            "error must name the ledger digest: {err}"
        );
        assert!(
            err.to_string()
                .contains(&format!("{:016x}", other.content_hash())),
            "error must name the current digest: {err}"
        );

        // Verdict-affecting config change: same story for fingerprints.
        let mut recfg = cfg.clone();
        recfg.cycles = 3;
        let err = plan_resume(&nl, &recfg, &ledger).unwrap_err();
        assert_eq!(
            err,
            AnalyzeError::DigestMismatch {
                what: DigestKind::Config,
                ledger: cfg.fingerprint(),
                current: recfg.fingerprint(),
            }
        );
        assert!(err.to_string().contains("config mismatch"), "{err}");
        assert!(
            err.to_string()
                .contains(&format!("{:016x}", recfg.fingerprint())),
            "error must name the current fingerprint: {err}"
        );

        // Verdict-neutral config change still resumes.
        let mut neutral = cfg.clone();
        neutral.threads = 2;
        neutral.slice = !neutral.slice;
        neutral.static_classify = !neutral.static_classify;
        assert!(plan_resume(&nl, &neutral, &ledger).is_ok());
    }

    #[test]
    fn plan_resume_rejects_shard_identity_drift() {
        use crate::config::ShardSpec;
        let nl = circuits::fig1();
        let cfg = McConfig::default();
        let (_, ledger) = run_with_ledger(&nl, &cfg);

        // An unsharded ledger cannot resume a shard run...
        let mut sharded = cfg.clone();
        sharded.shard = Some(ShardSpec { index: 0, count: 2 });
        let err = plan_resume(&nl, &sharded, &ledger).unwrap_err();
        assert!(err.to_string().contains("shard mismatch"), "{err}");

        // ...nor a shard ledger an unsharded (or differently-sharded) run.
        let (_, shard_ledger) = run_with_ledger(&nl, &sharded);
        let h = shard_ledger.header.as_ref().expect("header");
        assert_eq!((h.shard_index, h.shard_count), (0, 2));
        assert_eq!(h.run_digest, h.expected_run_digest());
        let err = plan_resume(&nl, &cfg, &shard_ledger).unwrap_err();
        assert!(err.to_string().contains("shard mismatch"), "{err}");
        let mut other_shard = cfg.clone();
        other_shard.shard = Some(ShardSpec { index: 1, count: 2 });
        let err = plan_resume(&nl, &other_shard, &shard_ledger).unwrap_err();
        assert!(err.to_string().contains("shard mismatch"), "{err}");

        // The matching shard spec resumes fine.
        assert!(plan_resume(&nl, &sharded, &shard_ledger).is_ok());
    }

    #[test]
    fn plan_resume_rejects_verdicts_outside_the_candidate_set() {
        let nl = circuits::fig1();
        let cfg = McConfig::default();
        let (_, mut ledger) = run_with_ledger(&nl, &cfg);
        let mut rogue = ledger
            .events
            .iter()
            .find(|e| e.engine.is_some())
            .expect("engine verdict")
            .clone();
        rogue.src = 9_999;
        ledger.events.push(rogue);
        let err = plan_resume(&nl, &cfg, &ledger).unwrap_err();
        assert!(
            err.to_string().contains("outside the candidate set"),
            "{err}"
        );
    }
}
