//! Content-addressed artifact store backing `--cache-dir`.
//!
//! One directory, one JSON file per artifact, named
//! `<stage>-<key:016x>.json` where `key` is the [`stage_key`] of the
//! artifact (stage name × netlist content hash × the config slice that
//! stage reads). Every file is a small envelope around the payload:
//!
//! ```json
//! {"stage":"verdicts","key":"00ab…","payload_digest":"…","payload":{…}}
//! ```
//!
//! The envelope makes corruption detectable without trusting the
//! filesystem: on every read the store re-derives the payload digest and
//! cross-checks the envelope's stage/key against the filename-derived
//! expectation, refusing with [`CasError::Corrupt`] on any disagreement
//! — truncation, hand edits, or a file renamed over another entry all
//! surface as typed errors instead of silently corrupted reports, in
//! the same spirit as the ledger's `DigestMismatch`.
//!
//! Writes are atomic (`tmp` + rename into place), so a crash mid-`put`
//! leaves either the old entry or no entry — never a torn one. A missing
//! entry is a plain cache miss ([`CasStore::get`] returns `Ok(None)`),
//! never an error.
//!
//! The store also carries its own maintenance surface:
//! [`CasStore::stats`] sizes the directory per stage, and
//! [`CasStore::gc`] evicts least-recently-touched entries until the
//! store fits a byte budget. A resident process (the `serve`
//! subcommand) holds a [`CasLock`] — a `.lock` file naming its pid — so
//! eviction under a live server is refused with the typed
//! [`CasError::Locked`] instead of silently racing its reads. A lock
//! whose pid is no longer alive is crash debris and is broken, not
//! honored.
//!
//! [`stage_key`]: crate::stage::stage_key

use serde::{Content, Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Error produced by [`CasStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CasError {
    /// The store directory or an entry could not be read or written.
    Io {
        /// The underlying I/O failure.
        reason: String,
    },
    /// An entry exists but fails its integrity check: unparseable JSON,
    /// an envelope naming a different stage/key than expected, or a
    /// payload whose digest no longer matches the envelope.
    Corrupt {
        /// The stage whose entry is damaged.
        stage: String,
        /// The offending file.
        path: PathBuf,
        /// What specifically failed to check out.
        reason: String,
    },
    /// The store is held by a live process, so a destructive operation
    /// (eviction, or acquiring a second lock) was refused.
    Locked {
        /// The `.lock` file naming the holder.
        path: PathBuf,
        /// The pid recorded in the lock file.
        pid: u32,
    },
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CasError::Io { reason } => write!(f, "artifact store I/O error: {reason}"),
            CasError::Corrupt {
                stage,
                path,
                reason,
            } => write!(
                f,
                "corrupt artifact store entry for stage `{stage}` at {}: {reason}",
                path.display()
            ),
            CasError::Locked { path, pid } => write!(
                f,
                "artifact store is locked by live process {pid} ({})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CasError {}

/// Renders a raw [`Content`] tree through `serde_json` — the envelope
/// holds the payload as a pre-serialized tree rather than a typed
/// value, so it can digest the payload without knowing its type.
struct Raw(Content);

impl Serialize for Raw {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

fn render(c: &Content) -> Result<String, CasError> {
    serde_json::to_string(&Raw(c.clone())).map_err(|e| CasError::Io {
        reason: format!("rendering JSON: {e}"),
    })
}

/// Canonical digest of a payload: FNV-1a over its JSON rendering.
/// Struct fields serialize in declaration order and maps in key order,
/// so the rendering — and the digest — is deterministic across
/// processes. Digests travel as hex strings: u64 round-trips through
/// JSON floats lose precision past 2^53, and a digest that cannot
/// round-trip exactly is no digest at all.
fn payload_digest(rendered: &str) -> String {
    format!("{:016x}", mcp_obs::fnv1a(rendered.as_bytes()))
}

/// A content-addressed store of stage artifacts in one directory.
#[derive(Debug, Clone)]
pub struct CasStore {
    root: PathBuf,
}

impl CasStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`CasError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CasError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| CasError::Io {
            reason: format!("creating {}: {e}", root.display()),
        })?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, stage: &str, key: u64) -> PathBuf {
        self.root.join(format!("{stage}-{key:016x}.json"))
    }

    /// Persists `artifact` under `(stage, key)`, atomically replacing
    /// any previous entry.
    ///
    /// # Errors
    ///
    /// [`CasError::Io`] when the entry cannot be written.
    pub fn put<T: Serialize>(&self, stage: &str, key: u64, artifact: &T) -> Result<(), CasError> {
        let payload = artifact.to_content();
        let digest = payload_digest(&render(&payload)?);
        let envelope = Content::Map(vec![
            ("stage".to_owned(), Content::Str(stage.to_owned())),
            ("key".to_owned(), Content::Str(format!("{key:016x}"))),
            ("payload_digest".to_owned(), Content::Str(digest)),
            ("payload".to_owned(), payload),
        ]);
        let text = render(&envelope)?;
        let path = self.entry_path(stage, key);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text).map_err(|e| CasError::Io {
            reason: format!("writing {}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, &path).map_err(|e| CasError::Io {
            reason: format!("renaming {} into place: {e}", tmp.display()),
        })?;
        Ok(())
    }

    /// Loads the `(stage, key)` entry, or `Ok(None)` when no entry
    /// exists (a plain cache miss).
    ///
    /// # Errors
    ///
    /// [`CasError::Corrupt`] when an entry exists but fails any
    /// integrity check; [`CasError::Io`] on other read failures.
    pub fn get<T: Deserialize>(&self, stage: &str, key: u64) -> Result<Option<T>, CasError> {
        let path = self.entry_path(stage, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CasError::Io {
                    reason: format!("reading {}: {e}", path.display()),
                })
            }
        };
        let corrupt = |reason: String| CasError::Corrupt {
            stage: stage.to_owned(),
            path: path.clone(),
            reason,
        };
        let envelope = serde_json::from_str_content(&text)
            .map_err(|e| corrupt(format!("unparseable JSON: {e}")))?;
        let entries = envelope
            .as_map()
            .ok_or_else(|| corrupt("envelope is not a JSON object".to_owned()))?;
        let named_stage: String =
            serde::field(entries, "stage").map_err(|e| corrupt(format!("bad envelope: {e}")))?;
        if named_stage != stage {
            return Err(corrupt(format!(
                "envelope names stage `{named_stage}`, expected `{stage}`"
            )));
        }
        let named_key: String =
            serde::field(entries, "key").map_err(|e| corrupt(format!("bad envelope: {e}")))?;
        let expected_key = format!("{key:016x}");
        if named_key != expected_key {
            return Err(corrupt(format!(
                "envelope names key {named_key}, expected {expected_key}"
            )));
        }
        let recorded: String = serde::field(entries, "payload_digest")
            .map_err(|e| corrupt(format!("bad envelope: {e}")))?;
        let payload = entries
            .iter()
            .find(|(k, _)| k == "payload")
            .map(|(_, v)| v)
            .ok_or_else(|| corrupt("envelope has no payload".to_owned()))?;
        let digest = payload_digest(&render(payload).map_err(|e| corrupt(e.to_string()))?);
        if recorded != digest {
            return Err(corrupt(format!(
                "payload digest {digest} does not match envelope {recorded}"
            )));
        }
        T::from_content(payload)
            .map(Some)
            .map_err(|e| corrupt(format!("payload does not deserialize: {e}")))
    }

    fn lock_path(&self) -> PathBuf {
        self.root.join(".lock")
    }

    /// Reads the `.lock` file, if any, as `(path, recorded pid)`.
    /// An unreadable or unparseable lock is reported as pid 0 — it
    /// still blocks eviction (better to refuse than to race an
    /// unidentifiable holder).
    fn read_lock(&self) -> Option<(PathBuf, u32)> {
        let path = self.lock_path();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let pid = text.trim().parse().unwrap_or(0);
                Some((path, pid))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(_) => Some((path, 0)),
        }
    }

    /// Walks the store directory and sizes every well-formed entry,
    /// grouped by stage. Files that are not `<stage>-<key>.json`
    /// entries (the lock, tmp debris from a crashed `put`) are counted
    /// separately as `other_bytes` so `stats` never hides disk usage.
    ///
    /// # Errors
    ///
    /// [`CasError::Io`] when the directory cannot be read.
    pub fn stats(&self) -> Result<CacheStats, CasError> {
        let mut stats = CacheStats::default();
        for entry in self.entries()? {
            match entry.stage {
                Some(stage) => {
                    stats.entries += 1;
                    stats.entry_bytes += entry.bytes;
                    let slot = match stats.stages.iter_mut().find(|s| s.stage == stage) {
                        Some(slot) => slot,
                        None => {
                            stats.stages.push(StageUsage {
                                stage,
                                entries: 0,
                                bytes: 0,
                            });
                            stats.stages.last_mut().expect("just pushed")
                        }
                    };
                    slot.entries += 1;
                    slot.bytes += entry.bytes;
                }
                None => stats.other_bytes += entry.bytes,
            }
        }
        stats.stages.sort_by(|a, b| a.stage.cmp(&b.stage));
        stats.locked_by = self.read_lock().map(|(_, pid)| pid);
        Ok(stats)
    }

    /// Evicts least-recently-touched entries until the store's entry
    /// bytes fit under `max_bytes` (mtime-LRU: `put` rewrites a file,
    /// so an old mtime means an artifact no recent run produced or
    /// replaced). Stale `*.json.tmp` debris from crashed writes is
    /// always removed first and counted toward the freed total.
    ///
    /// # Errors
    ///
    /// [`CasError::Locked`] when a live process holds the store (a
    /// dead holder's lock is broken instead); [`CasError::Io`] when the
    /// directory cannot be read or an entry cannot be removed.
    pub fn gc(&self, max_bytes: u64) -> Result<GcOutcome, CasError> {
        if let Some((path, pid)) = self.read_lock() {
            if pid_is_alive(pid) {
                return Err(CasError::Locked { path, pid });
            }
            // Crash debris: the recorded holder is gone.
            std::fs::remove_file(&path).ok();
        }
        let mut outcome = GcOutcome::default();
        let mut live: Vec<DirEntryInfo> = Vec::new();
        for entry in self.entries()? {
            if entry.stage.is_some() {
                live.push(entry);
            } else if entry.path.extension().is_some_and(|e| e == "tmp") {
                remove(&entry.path)?;
                outcome.evicted += 1;
                outcome.freed_bytes += entry.bytes;
            }
        }
        // Oldest first; ties break on the filename so the order is
        // deterministic on coarse-mtime filesystems.
        live.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let mut remaining: u64 = live.iter().map(|e| e.bytes).sum();
        let mut evicted_entries = 0usize;
        for entry in &live {
            if remaining <= max_bytes {
                break;
            }
            remove(&entry.path)?;
            remaining -= entry.bytes;
            evicted_entries += 1;
            outcome.evicted += 1;
            outcome.freed_bytes += entry.bytes;
        }
        outcome.kept = live.len() - evicted_entries;
        outcome.kept_bytes = remaining;
        Ok(outcome)
    }

    /// Every file in the store directory, tagged with the stage its
    /// name encodes (`None` for the lock, tmp debris, or foreign files).
    fn entries(&self) -> Result<Vec<DirEntryInfo>, CasError> {
        let io = |what: &str, e: std::io::Error| CasError::Io {
            reason: format!("{what} {}: {e}", self.root.display()),
        };
        let mut out = Vec::new();
        for dirent in std::fs::read_dir(&self.root).map_err(|e| io("reading", e))? {
            let dirent = dirent.map_err(|e| io("reading", e))?;
            let meta = dirent.metadata().map_err(|e| io("sizing entry in", e))?;
            if !meta.is_file() {
                continue;
            }
            let path = dirent.path();
            let stage = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_entry_name)
                .map(str::to_owned);
            out.push(DirEntryInfo {
                path,
                stage,
                bytes: meta.len(),
                mtime: meta.modified().ok(),
            });
        }
        Ok(out)
    }
}

/// `<stage>-<key:016x>.json` → `Some(stage)`; anything else → `None`.
/// The stage may itself contain `-`, so the key is split off the tail.
fn parse_entry_name(name: &str) -> Option<&str> {
    let stem = name.strip_suffix(".json")?;
    let (stage, key) = stem.rsplit_once('-')?;
    (key.len() == 16 && key.bytes().all(|b| b.is_ascii_hexdigit()) && !stage.is_empty())
        .then_some(stage)
}

fn remove(path: &Path) -> Result<(), CasError> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        // Lost a race with another gc: the entry is gone either way.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(CasError::Io {
            reason: format!("removing {}: {e}", path.display()),
        }),
    }
}

/// On Linux a pid is alive exactly when `/proc/<pid>` exists; elsewhere
/// liveness cannot be checked cheaply, so every recorded holder is
/// treated as alive (refusing is the safe direction for eviction).
fn pid_is_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

struct DirEntryInfo {
    path: PathBuf,
    stage: Option<String>,
    bytes: u64,
    mtime: Option<std::time::SystemTime>,
}

/// Disk usage of a [`CasStore`], as reported by [`CasStore::stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Well-formed `<stage>-<key>.json` entries.
    pub entries: usize,
    /// Bytes held by those entries.
    pub entry_bytes: u64,
    /// Bytes held by everything else in the directory (lock file, tmp
    /// debris from crashed writes, foreign files).
    pub other_bytes: u64,
    /// Per-stage breakdown, sorted by stage name.
    pub stages: Vec<StageUsage>,
    /// The pid recorded in a present `.lock` file (alive or not).
    pub locked_by: Option<u32>,
}

/// One stage's share of a [`CacheStats`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageUsage {
    /// The stage name from the entry filenames.
    pub stage: String,
    /// Entry count for this stage.
    pub entries: usize,
    /// Bytes held by this stage's entries.
    pub bytes: u64,
}

/// What [`CasStore::gc`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Files removed (evicted entries plus tmp debris).
    pub evicted: usize,
    /// Bytes those files held.
    pub freed_bytes: u64,
    /// Entries still in the store afterwards.
    pub kept: usize,
    /// Bytes those entries hold.
    pub kept_bytes: u64,
}

/// A held `.lock` file marking the store as owned by a live process.
///
/// Acquired by resident users (the `serve` subcommand) so `gc` refuses
/// to evict under them; released on drop. A lock left by a dead process
/// is broken and re-acquired rather than honored.
#[derive(Debug)]
pub struct CasLock {
    path: PathBuf,
}

impl CasLock {
    /// Acquires the store's lock for this process.
    ///
    /// # Errors
    ///
    /// [`CasError::Locked`] when another live process holds it;
    /// [`CasError::Io`] when the lock file cannot be created.
    pub fn acquire(store: &CasStore) -> Result<Self, CasError> {
        let path = store.lock_path();
        // Two attempts: one may legitimately find a stale lock, break
        // it, and succeed on the retry; losing the create race twice
        // means a live contender.
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write as _;
                    write!(f, "{}", std::process::id()).map_err(|e| CasError::Io {
                        reason: format!("writing {}: {e}", path.display()),
                    })?;
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match store.read_lock() {
                        Some((_, pid)) if !pid_is_alive(pid) => {
                            std::fs::remove_file(&path).ok();
                        }
                        Some((path, pid)) => return Err(CasError::Locked { path, pid }),
                        // Holder vanished between create and read.
                        None => {}
                    }
                }
                Err(e) => {
                    return Err(CasError::Io {
                        reason: format!("creating {}: {e}", path.display()),
                    })
                }
            }
        }
        Err(CasError::Locked { path, pid: 0 })
    }
}

impl Drop for CasLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{VerdictRecord, VerdictsArtifact};

    fn sample() -> VerdictsArtifact {
        VerdictsArtifact {
            circuit: "c".to_owned(),
            netlist_hash: 0xfeed,
            config_fingerprint: 0xbeef,
            pair_digest: 0xcafe,
            verdicts: vec![VerdictRecord {
                src: 0,
                dst: 1,
                src_name: "a".to_owned(),
                dst_name: "b".to_owned(),
                step: "implication".to_owned(),
                class: "multi".to_owned(),
            }],
        }
    }

    #[test]
    fn put_get_round_trips_and_misses_are_not_errors() {
        let dir = tempdir();
        let store = CasStore::open(&dir).expect("open");
        assert_eq!(
            store.get::<VerdictsArtifact>("verdicts", 42).expect("get"),
            None
        );
        let art = sample();
        store.put("verdicts", 42, &art).expect("put");
        assert_eq!(
            store.get::<VerdictsArtifact>("verdicts", 42).expect("get"),
            Some(art)
        );
        // A different key or stage is still a miss.
        assert_eq!(
            store.get::<VerdictsArtifact>("verdicts", 43).expect("get"),
            None
        );
        assert_eq!(
            store.get::<VerdictsArtifact>("grouped", 42).expect("get"),
            None
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_edited_entries_are_refused_as_corrupt() {
        let dir = tempdir();
        let store = CasStore::open(&dir).expect("open");
        store.put("verdicts", 7, &sample()).expect("put");
        let path = dir.join(format!("verdicts-{:016x}.json", 7));

        // Truncation → unparseable JSON.
        let full = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        match store.get::<VerdictsArtifact>("verdicts", 7) {
            Err(CasError::Corrupt { stage, reason, .. }) => {
                assert_eq!(stage, "verdicts");
                assert!(reason.contains("unparseable"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A hand edit that keeps the JSON valid → digest mismatch.
        std::fs::write(&path, full.replace("multi", "singl")).expect("edit");
        match store.get::<VerdictsArtifact>("verdicts", 7) {
            Err(CasError::Corrupt { reason, .. }) => {
                assert!(reason.contains("digest"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A file copied over from another key → key mismatch.
        store.put("verdicts", 8, &sample()).expect("put");
        std::fs::copy(dir.join(format!("verdicts-{:016x}.json", 8)), &path).expect("copy");
        match store.get::<VerdictsArtifact>("verdicts", 7) {
            Err(CasError::Corrupt { reason, .. }) => {
                assert!(reason.contains("key"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_sizes_entries_per_stage_and_flags_debris() {
        let dir = tempdir();
        let store = CasStore::open(&dir).expect("open");
        store.put("verdicts", 1, &sample()).expect("put");
        store.put("verdicts", 2, &sample()).expect("put");
        store.put("grouped", 1, &sample()).expect("put");
        // Crash debris and foreign files count as `other`, not entries.
        std::fs::write(dir.join("verdicts-03.json.tmp"), "torn").expect("tmp");
        std::fs::write(dir.join("README"), "not an entry").expect("foreign");

        let stats = store.stats().expect("stats");
        assert_eq!(stats.entries, 3);
        assert!(stats.entry_bytes > 0);
        assert_eq!(
            stats.other_bytes,
            "torn".len() as u64 + "not an entry".len() as u64
        );
        assert_eq!(stats.locked_by, None);
        let stages: Vec<(&str, usize)> = stats
            .stages
            .iter()
            .map(|s| (s.stage.as_str(), s.entries))
            .collect();
        assert_eq!(stages, vec![("grouped", 1), ("verdicts", 2)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_evicts_oldest_entries_first_down_to_the_budget() {
        let dir = tempdir();
        let store = CasStore::open(&dir).expect("open");
        for key in 0..3u64 {
            store.put("verdicts", key, &sample()).expect("put");
            // Distinct mtimes so the LRU order is unambiguous even on
            // coarse-timestamp filesystems.
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        std::fs::write(dir.join("verdicts-99.json.tmp"), "torn").expect("tmp");
        let before = store.stats().expect("stats");
        let per_entry = before.entry_bytes / 3;

        // Budget for two entries: the oldest (key 0) goes, debris goes.
        let outcome = store.gc(per_entry * 2).expect("gc");
        assert_eq!(outcome.evicted, 2, "oldest entry + tmp debris");
        assert_eq!(outcome.kept, 2);
        assert!(outcome.kept_bytes <= per_entry * 2);
        assert_eq!(
            store.get::<VerdictsArtifact>("verdicts", 0).expect("get"),
            None,
            "the oldest entry was evicted"
        );
        for key in [1, 2] {
            assert!(
                store
                    .get::<VerdictsArtifact>("verdicts", key)
                    .expect("get")
                    .is_some(),
                "newer entry {key} survived"
            );
        }

        // A budget the store already fits is a no-op.
        let outcome = store.gc(u64::MAX).expect("gc");
        assert_eq!(outcome.evicted, 0);
        assert_eq!(outcome.kept, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_refuses_a_live_locked_store_and_breaks_stale_locks() {
        let dir = tempdir();
        let store = CasStore::open(&dir).expect("open");
        store.put("verdicts", 1, &sample()).expect("put");

        let lock = CasLock::acquire(&store).expect("acquire");
        assert_eq!(
            store.stats().expect("stats").locked_by,
            Some(std::process::id())
        );
        match store.gc(0) {
            Err(CasError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        // A second acquire against a live holder is refused too.
        match CasLock::acquire(&store) {
            Err(CasError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        assert!(!dir.join(".lock").exists(), "drop releases the lock");

        // A lock naming a dead pid is crash debris: gc breaks it and
        // proceeds. Linux pids top out well below this value.
        std::fs::write(dir.join(".lock"), "999999999").expect("stale lock");
        let outcome = store.gc(0).expect("gc proceeds past a stale lock");
        assert_eq!(outcome.kept, 0);
        assert!(!dir.join(".lock").exists(), "stale lock was broken");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcpath-cas-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
