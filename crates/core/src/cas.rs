//! Content-addressed artifact store backing `--cache-dir`.
//!
//! One directory, one JSON file per artifact, named
//! `<stage>-<key:016x>.json` where `key` is the [`stage_key`] of the
//! artifact (stage name × netlist content hash × the config slice that
//! stage reads). Every file is a small envelope around the payload:
//!
//! ```json
//! {"stage":"verdicts","key":"00ab…","payload_digest":"…","payload":{…}}
//! ```
//!
//! The envelope makes corruption detectable without trusting the
//! filesystem: on every read the store re-derives the payload digest and
//! cross-checks the envelope's stage/key against the filename-derived
//! expectation, refusing with [`CasError::Corrupt`] on any disagreement
//! — truncation, hand edits, or a file renamed over another entry all
//! surface as typed errors instead of silently corrupted reports, in
//! the same spirit as the ledger's `DigestMismatch`.
//!
//! Writes are atomic (`tmp` + rename into place), so a crash mid-`put`
//! leaves either the old entry or no entry — never a torn one. A missing
//! entry is a plain cache miss ([`CasStore::get`] returns `Ok(None)`),
//! never an error.
//!
//! [`stage_key`]: crate::stage::stage_key

use serde::{Content, Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Error produced by [`CasStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CasError {
    /// The store directory or an entry could not be read or written.
    Io {
        /// The underlying I/O failure.
        reason: String,
    },
    /// An entry exists but fails its integrity check: unparseable JSON,
    /// an envelope naming a different stage/key than expected, or a
    /// payload whose digest no longer matches the envelope.
    Corrupt {
        /// The stage whose entry is damaged.
        stage: String,
        /// The offending file.
        path: PathBuf,
        /// What specifically failed to check out.
        reason: String,
    },
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CasError::Io { reason } => write!(f, "artifact store I/O error: {reason}"),
            CasError::Corrupt {
                stage,
                path,
                reason,
            } => write!(
                f,
                "corrupt artifact store entry for stage `{stage}` at {}: {reason}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CasError {}

/// Renders a raw [`Content`] tree through `serde_json` — the envelope
/// holds the payload as a pre-serialized tree rather than a typed
/// value, so it can digest the payload without knowing its type.
struct Raw(Content);

impl Serialize for Raw {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

fn render(c: &Content) -> Result<String, CasError> {
    serde_json::to_string(&Raw(c.clone())).map_err(|e| CasError::Io {
        reason: format!("rendering JSON: {e}"),
    })
}

/// Canonical digest of a payload: FNV-1a over its JSON rendering.
/// Struct fields serialize in declaration order and maps in key order,
/// so the rendering — and the digest — is deterministic across
/// processes. Digests travel as hex strings: u64 round-trips through
/// JSON floats lose precision past 2^53, and a digest that cannot
/// round-trip exactly is no digest at all.
fn payload_digest(rendered: &str) -> String {
    format!("{:016x}", mcp_obs::fnv1a(rendered.as_bytes()))
}

/// A content-addressed store of stage artifacts in one directory.
#[derive(Debug, Clone)]
pub struct CasStore {
    root: PathBuf,
}

impl CasStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`CasError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CasError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| CasError::Io {
            reason: format!("creating {}: {e}", root.display()),
        })?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, stage: &str, key: u64) -> PathBuf {
        self.root.join(format!("{stage}-{key:016x}.json"))
    }

    /// Persists `artifact` under `(stage, key)`, atomically replacing
    /// any previous entry.
    ///
    /// # Errors
    ///
    /// [`CasError::Io`] when the entry cannot be written.
    pub fn put<T: Serialize>(&self, stage: &str, key: u64, artifact: &T) -> Result<(), CasError> {
        let payload = artifact.to_content();
        let digest = payload_digest(&render(&payload)?);
        let envelope = Content::Map(vec![
            ("stage".to_owned(), Content::Str(stage.to_owned())),
            ("key".to_owned(), Content::Str(format!("{key:016x}"))),
            ("payload_digest".to_owned(), Content::Str(digest)),
            ("payload".to_owned(), payload),
        ]);
        let text = render(&envelope)?;
        let path = self.entry_path(stage, key);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text).map_err(|e| CasError::Io {
            reason: format!("writing {}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, &path).map_err(|e| CasError::Io {
            reason: format!("renaming {} into place: {e}", tmp.display()),
        })?;
        Ok(())
    }

    /// Loads the `(stage, key)` entry, or `Ok(None)` when no entry
    /// exists (a plain cache miss).
    ///
    /// # Errors
    ///
    /// [`CasError::Corrupt`] when an entry exists but fails any
    /// integrity check; [`CasError::Io`] on other read failures.
    pub fn get<T: Deserialize>(&self, stage: &str, key: u64) -> Result<Option<T>, CasError> {
        let path = self.entry_path(stage, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CasError::Io {
                    reason: format!("reading {}: {e}", path.display()),
                })
            }
        };
        let corrupt = |reason: String| CasError::Corrupt {
            stage: stage.to_owned(),
            path: path.clone(),
            reason,
        };
        let envelope = serde_json::from_str_content(&text)
            .map_err(|e| corrupt(format!("unparseable JSON: {e}")))?;
        let entries = envelope
            .as_map()
            .ok_or_else(|| corrupt("envelope is not a JSON object".to_owned()))?;
        let named_stage: String =
            serde::field(entries, "stage").map_err(|e| corrupt(format!("bad envelope: {e}")))?;
        if named_stage != stage {
            return Err(corrupt(format!(
                "envelope names stage `{named_stage}`, expected `{stage}`"
            )));
        }
        let named_key: String =
            serde::field(entries, "key").map_err(|e| corrupt(format!("bad envelope: {e}")))?;
        let expected_key = format!("{key:016x}");
        if named_key != expected_key {
            return Err(corrupt(format!(
                "envelope names key {named_key}, expected {expected_key}"
            )));
        }
        let recorded: String = serde::field(entries, "payload_digest")
            .map_err(|e| corrupt(format!("bad envelope: {e}")))?;
        let payload = entries
            .iter()
            .find(|(k, _)| k == "payload")
            .map(|(_, v)| v)
            .ok_or_else(|| corrupt("envelope has no payload".to_owned()))?;
        let digest = payload_digest(&render(payload).map_err(|e| corrupt(e.to_string()))?);
        if recorded != digest {
            return Err(corrupt(format!(
                "payload digest {digest} does not match envelope {recorded}"
            )));
        }
        T::from_content(payload)
            .map(Some)
            .map_err(|e| corrupt(format!("payload does not deserialize: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{VerdictRecord, VerdictsArtifact};

    fn sample() -> VerdictsArtifact {
        VerdictsArtifact {
            circuit: "c".to_owned(),
            netlist_hash: 0xfeed,
            config_fingerprint: 0xbeef,
            pair_digest: 0xcafe,
            verdicts: vec![VerdictRecord {
                src: 0,
                dst: 1,
                src_name: "a".to_owned(),
                dst_name: "b".to_owned(),
                step: "implication".to_owned(),
                class: "multi".to_owned(),
            }],
        }
    }

    #[test]
    fn put_get_round_trips_and_misses_are_not_errors() {
        let dir = tempdir();
        let store = CasStore::open(&dir).expect("open");
        assert_eq!(
            store.get::<VerdictsArtifact>("verdicts", 42).expect("get"),
            None
        );
        let art = sample();
        store.put("verdicts", 42, &art).expect("put");
        assert_eq!(
            store.get::<VerdictsArtifact>("verdicts", 42).expect("get"),
            Some(art)
        );
        // A different key or stage is still a miss.
        assert_eq!(
            store.get::<VerdictsArtifact>("verdicts", 43).expect("get"),
            None
        );
        assert_eq!(
            store.get::<VerdictsArtifact>("grouped", 42).expect("get"),
            None
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_edited_entries_are_refused_as_corrupt() {
        let dir = tempdir();
        let store = CasStore::open(&dir).expect("open");
        store.put("verdicts", 7, &sample()).expect("put");
        let path = dir.join(format!("verdicts-{:016x}.json", 7));

        // Truncation → unparseable JSON.
        let full = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        match store.get::<VerdictsArtifact>("verdicts", 7) {
            Err(CasError::Corrupt { stage, reason, .. }) => {
                assert_eq!(stage, "verdicts");
                assert!(reason.contains("unparseable"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A hand edit that keeps the JSON valid → digest mismatch.
        std::fs::write(&path, full.replace("multi", "singl")).expect("edit");
        match store.get::<VerdictsArtifact>("verdicts", 7) {
            Err(CasError::Corrupt { reason, .. }) => {
                assert!(reason.contains("digest"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A file copied over from another key → key mismatch.
        store.put("verdicts", 8, &sample()).expect("put");
        std::fs::copy(dir.join(format!("verdicts-{:016x}.json", 8)), &path).expect("copy");
        match store.get::<VerdictsArtifact>("verdicts", 7) {
            Err(CasError::Corrupt { reason, .. }) => {
                assert!(reason.contains("key"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcpath-cas-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
