//! Property: ECO-incremental re-analysis is indistinguishable from a
//! cold full analysis of the edited netlist.
//!
//! Random circuits get a random single edit — a gate-op swap inside the
//! {AND, OR, NAND, NOR} family, a dangling tap that touches zero sink
//! groups, or no edit at all — and the spliced ECO report must be
//! byte-identical (canonical form) to analysing the edited netlist from
//! scratch.

use mcp_core::{analyze_cached_with, analyze_eco_with, analyze_with, CasStore, McConfig};
use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_netlist::{bench, Netlist};
use mcp_obs::ObsCtx;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tempdir(case: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mcpath-eco-props-{}-{case}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

static CASE: AtomicUsize = AtomicUsize::new(0);

/// The three edit shapes the property exercises.
#[derive(Debug, Clone, Copy)]
enum Edit {
    /// Swap one gate's op within {AND, OR, NAND, NOR}.
    SwapGate,
    /// Append `eco_tap = NOT(<node>)` + `OUTPUT(eco_tap)`: a real netlist
    /// change that intersects zero flip-flop cones.
    DanglingTap,
    /// No change: every group must splice.
    Identity,
}

const SWAPS: [(&str, &str); 4] = [
    ("= AND(", "= OR("),
    ("= OR(", "= AND("),
    ("= NAND(", "= NOR("),
    ("= NOR(", "= NAND("),
];

/// Applies `edit` to `old` through the bench text, the way an ECO lands
/// on disk. Falls back to `DanglingTap` when no gate is swappable.
fn apply_edit(old: &Netlist, edit: Edit, pick: usize) -> (Netlist, Edit) {
    let text = bench::to_bench(old);
    match edit {
        Edit::Identity => (reparse(old, &text), Edit::Identity),
        Edit::SwapGate => {
            let lines: Vec<&str> = text.lines().collect();
            let candidates: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| SWAPS.iter().any(|(from, _)| l.contains(from)))
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                return apply_edit(old, Edit::DanglingTap, pick);
            }
            let target = candidates[pick % candidates.len()];
            let patched: Vec<String> = lines
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    if i == target {
                        let (from, to) = SWAPS
                            .iter()
                            .find(|(from, _)| l.contains(from))
                            .expect("candidate line has a swappable op");
                        l.replace(from, to)
                    } else {
                        (*l).to_owned()
                    }
                })
                .collect();
            (reparse(old, &patched.join("\n")), Edit::SwapGate)
        }
        Edit::DanglingTap => {
            let source = text
                .lines()
                .find_map(|l| l.split(" = ").next().filter(|_| l.contains(" = ")))
                .map(str::trim)
                .expect("circuit has at least one driven node")
                .to_owned();
            let patched = format!("{text}\neco_tap = NOT({source})\nOUTPUT(eco_tap)\n");
            (reparse(old, &patched), Edit::DanglingTap)
        }
    }
}

fn reparse(old: &Netlist, text: &str) -> Netlist {
    bench::parse(old.name(), text).expect("edited bench text parses")
}

fn canon(report: &mcp_core::McReport) -> String {
    serde_json::to_string(&report.canonical()).expect("serialize")
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    (0usize..3).prop_map(|n| match n {
        0 => Edit::SwapGate,
        1 => Edit::DanglingTap,
        _ => Edit::Identity,
    })
}

fn cfg_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..100_000, 1usize..5, 0usize..4, 4usize..28).prop_map(|(seed, ffs, pis, gates)| {
        (
            seed,
            RandomCircuitConfig {
                ffs,
                pis,
                gates,
                max_arity: 3,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn eco_reanalysis_equals_cold_full_analysis(
        (seed, gen_cfg) in cfg_strategy(),
        edit in edit_strategy(),
        pick in 0usize..64,
    ) {
        let old = random_netlist(seed, &gen_cfg);
        let (new, applied) = apply_edit(&old, edit, pick);
        let cfg = McConfig {
            backtrack_limit: 100_000,
            ..McConfig::default()
        };

        let dir = tempdir(CASE.fetch_add(1, Ordering::Relaxed));
        std::fs::remove_dir_all(&dir).ok();
        let store = CasStore::open(&dir).expect("open store");
        analyze_cached_with(&old, &cfg, &ObsCtx::new(), &store).expect("seed baseline");

        let (eco, summary) =
            analyze_eco_with(&old, &new, &cfg, &ObsCtx::new(), &store).expect("eco");
        let cold = analyze_with(&new, &cfg, &ObsCtx::new()).expect("cold");
        prop_assert_eq!(
            canon(&eco),
            canon(&cold),
            "ECO splice diverged from the cold run ({:?})",
            applied
        );

        prop_assert!(!summary.full_run, "default config must splice: {:?}", summary);
        match applied {
            // A dangling tap intersects no flip-flop cone: nothing to
            // re-verify, every group splices.
            Edit::DanglingTap => {
                prop_assert!(summary.changed_nodes > 0, "{:?}", summary);
                prop_assert_eq!(summary.groups_reverified, 0, "{:?}", summary);
                prop_assert_eq!(summary.pairs_reverified, 0, "{:?}", summary);
            }
            Edit::Identity => {
                prop_assert_eq!(summary.changed_nodes, 0, "{:?}", summary);
                prop_assert_eq!(summary.removed_nodes, 0, "{:?}", summary);
                prop_assert_eq!(summary.groups_reverified, 0, "{:?}", summary);
            }
            Edit::SwapGate => {
                prop_assert!(summary.changed_nodes > 0, "{:?}", summary);
            }
        }
        prop_assert_eq!(
            summary.groups_total,
            summary.groups_reverified + summary.groups_spliced,
            "{:?}",
            summary
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
