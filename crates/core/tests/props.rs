//! Property-based invariants of the pipeline and the hazard checks on
//! random circuits.

use mcp_core::{analyze, check_hazards, HazardCheck, McConfig};
use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..100_000, 1usize..6, 0usize..4, 2usize..35).prop_map(|(seed, ffs, pis, gates)| {
        (
            seed,
            RandomCircuitConfig {
                ffs,
                pis,
                gates,
                max_arity: 3,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hazard_checks_partition_and_nest(
        (seed, cfg) in cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let report = analyze(
            &nl,
            &McConfig {
                backtrack_limit: 100_000,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        let mc = report.multi_cycle_pairs();
        let sens = check_hazards(&nl, &report, HazardCheck::Sensitization);
        let cosens = check_hazards(&nl, &report, HazardCheck::CoSensitization);

        for hz in [&sens, &cosens] {
            let mut union: Vec<_> = hz.robust.iter().chain(hz.demoted.iter()).copied().collect();
            union.sort_unstable();
            prop_assert_eq!(&union, &mc, "partition");
        }
        // Sensitization demotions nest inside co-sensitization demotions
        // (statically sensitizable ⇒ statically co-sensitizable).
        for pair in &sens.demoted {
            prop_assert!(
                cosens.demoted.contains(pair),
                "{:?} demoted by sens only",
                pair
            );
        }
    }

    #[test]
    fn analysis_is_deterministic(
        (seed, cfg) in cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let a = analyze(&nl, &McConfig::default()).expect("analyze");
        let b = analyze(&nl, &McConfig::default()).expect("analyze");
        prop_assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn report_partitions_the_candidates(
        (seed, cfg) in cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        let mut all: Vec<(usize, usize)> = report
            .multi_cycle_pairs()
            .into_iter()
            .chain(report.single_cycle_pairs())
            .chain(report.unknown_pairs())
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, nl.connected_ff_pairs());
        prop_assert_eq!(report.stats.candidates, report.pairs.len());
        prop_assert_eq!(
            report.stats.multi_total()
                + report.stats.single_total()
                + report.stats.unknown,
            report.pairs.len()
        );
    }

    #[test]
    fn unknowns_never_contradict_the_sat_engine(
        (seed, cfg) in cfg_strategy(),
    ) {
        // With a starved backtrack budget the implication engine may give
        // up — but wherever it *does* answer, the complete SAT engine must
        // agree.
        let nl = random_netlist(seed, &cfg);
        let starved = analyze(
            &nl,
            &McConfig {
                backtrack_limit: 0,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        let sat = analyze(
            &nl,
            &McConfig {
                engine: mcp_core::Engine::Sat,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        for p in &starved.pairs {
            let sat_class = sat.class_of(p.src, p.dst).expect("same candidates");
            match p.class {
                mcp_core::PairClass::Unknown => {}
                mcp_core::PairClass::MultiCycle { .. } => {
                    prop_assert!(sat_class.is_multi(), "({}, {})", p.src, p.dst);
                }
                mcp_core::PairClass::SingleCycle { .. } => {
                    prop_assert!(!sat_class.is_multi(), "({}, {})", p.src, p.dst);
                }
            }
        }
    }
}

#[test]
fn circuits_without_ffs_produce_empty_reports() {
    let nl = mcp_netlist::bench::parse("comb", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)").expect("parse");
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    assert!(report.pairs.is_empty());
    assert_eq!(report.stats.candidates, 0);
    for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
        let hz = check_hazards(&nl, &report, check);
        assert!(hz.robust.is_empty() && hz.demoted.is_empty());
    }
}

#[test]
fn constant_driven_ffs_are_handled() {
    // An FF fed by a constant never changes: its self pair (if any) and
    // incoming pairs are trivially multi-cycle; an FF watching it can
    // never see a transition.
    let nl = mcp_netlist::bench::parse(
        "const",
        "OUTPUT(q2)\nc1 = CONST(1)\nq1 = DFF(c1)\nn = NOT(q1)\nq2 = DFF(n)",
    )
    .expect("parse");
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    // (q1, q2) is connected; q1 only transitions on the (unmodelled) first
    // cycle out of an arbitrary initial state — under the all-states
    // assumption q1 CAN hold 0 at t and 1 at t+1, after which q2 captures
    // the inverted value one cycle later: single-cycle.
    assert_eq!(report.class_of(0, 1).map(|c| c.is_multi()), Some(false));
}

#[test]
fn single_ff_self_loop_through_xor_constant() {
    // q = DFF(XOR(q, CONST(0))) is a hold register in disguise.
    let nl = mcp_netlist::bench::parse(
        "xor-hold",
        "OUTPUT(q)\nz = CONST(0)\nd = XOR(q, z)\nq = DFF(d)",
    )
    .expect("parse");
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    assert!(report.class_of(0, 0).expect("self pair").is_multi());
}
