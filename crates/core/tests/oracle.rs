//! A brute-force multi-cycle oracle, independent of every engine under
//! test, and the agreement checks built on it.
//!
//! The oracle enumerates **all** assignments of the free bits of a
//! k+1-frame window — initial state plus `k` input vectors, at most 20
//! bits — and evaluates the netlist directly with scalar Boolean gate
//! evaluation. A pair `(i, j)` is multi-cycle iff *no* assignment
//! produces `FFi(t) != FFi(t+1)` together with `FFj(t+m) != FFj(t+m+1)`
//! for some `m ∈ 1..k` (the paper's MC condition, checked literally;
//! `k = 2` is the paper's default).
//!
//! This is deliberately a *second, simpler implementation* of the same
//! ground truth as `mcp_gen::oracle::exhaustive_mc_pairs` (which
//! enumerates 64 lanes at a time): scalar evaluation, no bit tricks, no
//! shared code with the engines — so a bug in the shared evaluation
//! substrate cannot hide by agreeing with itself. The tests assert that
//! both oracles and all four engine configurations (implication,
//! implication+ATPG with learning, SAT, BDD) agree on the paper's
//! figures and on the real ISCAS s27 — with cone slicing on *and* off,
//! and (for the brute-force oracle, which generalizes) at cycle budgets
//! beyond the paper's `k = 2`.

use mcp_core::{analyze, Engine, McConfig, Scheduler};
use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_gen::{circuits, oracle};
use mcp_netlist::{bench, Expanded, Netlist, NodeKind, XId};
use proptest::prelude::*;

/// Evaluates one clock frame: given the FF states and primary-input
/// values, returns the next FF states.
fn step(nl: &Netlist, state: &[bool], inputs: &[bool]) -> Vec<bool> {
    let mut val = vec![false; nl.num_nodes()];
    for (k, &id) in nl.inputs().iter().enumerate() {
        val[id.index()] = inputs[k];
    }
    for (k, &id) in nl.dffs().iter().enumerate() {
        val[id.index()] = state[k];
    }
    for (id, node) in nl.nodes() {
        if let NodeKind::Const(b) = node.kind() {
            val[id.index()] = b;
        }
    }
    for &id in nl.topo_gates() {
        let node = &nl.nodes().nth(id.index()).expect("dense ids").1;
        let NodeKind::Gate(kind) = node.kind() else {
            panic!("topo_gates yielded a non-gate");
        };
        let ins = node.fanins().iter().map(|f| val[f.index()]);
        val[id.index()] = kind.eval_bool(ins);
    }
    (0..nl.num_ffs())
        .map(|k| val[nl.ff_d_input(k).index()])
        .collect()
}

/// The oracle's verdict: (multi-cycle pairs, single-cycle pairs), each
/// sorted.
type PairSets = (Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Brute-force `k`-frame enumeration of the MC condition over every
/// topologically connected FF pair (self pairs included): a pair is
/// violated when some assignment transitions the source at `t+1` AND
/// the sink at some `t+m+1`, `m ∈ 1..k`. Panics above 20 free bits —
/// the oracle is for small circuits only.
fn brute_force_mc_pairs_k(nl: &Netlist, k: u32) -> PairSets {
    let nffs = nl.num_ffs();
    let npis = nl.num_inputs();
    let frames = k as usize;
    let bits = nffs + frames * npis;
    assert!(
        bits <= 20,
        "{}: {bits} free bits exceed the brute-force budget",
        nl.name()
    );
    let pairs = nl.connected_ff_pairs();
    let mut violated = vec![false; pairs.len()];
    for a in 0u64..(1u64 << bits) {
        let bit = |q: usize| (a >> q) & 1 == 1;
        let mut states: Vec<Vec<bool>> = vec![(0..nffs).map(bit).collect()];
        for f in 0..frames {
            let inputs: Vec<bool> = (0..npis).map(|q| bit(nffs + f * npis + q)).collect();
            let next = step(nl, states.last().expect("seeded"), &inputs);
            states.push(next);
        }
        for (p, &(i, j)) in pairs.iter().enumerate() {
            if states[0][i] != states[1][i] && (1..frames).any(|m| states[m][j] != states[m + 1][j])
            {
                violated[p] = true;
            }
        }
    }
    let mut multi: Vec<(usize, usize)> = Vec::new();
    let mut single: Vec<(usize, usize)> = Vec::new();
    for (p, &pair) in pairs.iter().enumerate() {
        if violated[p] {
            single.push(pair);
        } else {
            multi.push(pair);
        }
    }
    multi.sort_unstable();
    single.sort_unstable();
    (multi, single)
}

/// The classic 2-cycle oracle.
fn brute_force_mc_pairs(nl: &Netlist) -> PairSets {
    brute_force_mc_pairs_k(nl, 2)
}

/// The engine configurations whose verdicts must all equal the oracle:
/// implication (+ATPG search), the same with static learning, the SAT
/// baseline, and the BDD baseline.
fn engine_configs() -> Vec<McConfig> {
    let base = McConfig {
        backtrack_limit: 100_000,
        ..McConfig::default()
    };
    vec![
        McConfig {
            engine: Engine::Implication,
            ..base.clone()
        },
        McConfig {
            engine: Engine::Implication,
            static_learning: true,
            ..base.clone()
        },
        McConfig {
            engine: Engine::Sat,
            ..base.clone()
        },
        McConfig {
            engine: Engine::Bdd {
                node_limit: 1 << 22,
                reachability: false,
            },
            ..base
        },
    ]
}

fn assert_engines_match_oracle(nl: &Netlist) {
    let (multi, single) = brute_force_mc_pairs(nl);

    // The two independent oracle implementations must agree first.
    let (gen_multi, gen_single) = oracle::exhaustive_mc_pairs(nl);
    let mut gen_multi = gen_multi;
    let mut gen_single = gen_single;
    gen_multi.sort_unstable();
    gen_single.sort_unstable();
    assert_eq!(multi, gen_multi, "{}: oracles disagree (multi)", nl.name());
    assert_eq!(
        single,
        gen_single,
        "{}: oracles disagree (single)",
        nl.name()
    );

    for cfg in engine_configs() {
        for slice in [true, false] {
            let report = analyze(
                nl,
                &McConfig {
                    slice,
                    ..cfg.clone()
                },
            )
            .expect("analyze");
            assert_eq!(
                report.multi_cycle_pairs(),
                multi,
                "{}: engine {:?} slice={slice} disagrees with the brute-force oracle",
                nl.name(),
                cfg.engine
            );
            assert_eq!(
                report.single_cycle_pairs(),
                single,
                "{}: engine {:?} slice={slice} single-cycle set drifted",
                nl.name(),
                cfg.engine
            );
            assert!(
                report.unknown_pairs().is_empty(),
                "{}: engine {:?} slice={slice} left unknowns at a 100k backtrack budget",
                nl.name(),
                cfg.engine
            );
        }
    }
}

#[test]
fn all_engines_agree_with_the_oracle_on_fig1() {
    assert_engines_match_oracle(&circuits::fig1());
}

#[test]
fn all_engines_agree_with_the_oracle_on_fig3() {
    assert_engines_match_oracle(&circuits::fig3());
}

#[test]
fn all_engines_agree_with_the_oracle_on_fig4_fragment() {
    assert_engines_match_oracle(&circuits::fig4_fragment());
}

#[test]
fn all_engines_agree_with_the_oracle_on_s27() {
    let src = include_str!("../../../data/s27.bench");
    let nl = bench::parse("s27", src).expect("bundled s27 parses");
    assert_engines_match_oracle(&nl);
}

/// The oracle itself must reproduce the paper's Fig.1 walkthrough — a
/// sanity anchor so the differential tests aren't comparing two wrong
/// answers.
#[test]
fn brute_force_oracle_reproduces_the_fig1_walkthrough() {
    let nl = circuits::fig1();
    let (multi, single) = brute_force_mc_pairs(&nl);
    assert_eq!(multi, vec![(0, 0), (0, 1), (1, 1), (2, 1), (3, 0)]);
    assert_eq!(multi.len() + single.len(), 9);
}

/// A shrink-friendly strategy for oracle-sized random circuits: each
/// dimension is an independent integer range, so a failing case reduces
/// toward the smallest seed/shape that still fails.
fn small_cfg_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..100_000, 1usize..6, 0usize..4, 2usize..25).prop_map(|(seed, ffs, pis, gates)| {
        (
            seed,
            RandomCircuitConfig {
                ffs,
                pis,
                gates,
                max_arity: 3,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The differential property: on random small netlists, *every*
    /// engine configuration at *every* thread count under *either*
    /// scheduling policy, with cone slicing on *and* off, at cycle
    /// budgets `k ∈ {2, 3}`, returns exactly the brute-force oracle's
    /// verdict set, with no unknowns. (The BDD baseline only encodes
    /// the paper's 2-cycle condition and is skipped at `k = 3`.)
    #[test]
    fn random_netlists_every_engine_every_thread_count_equals_the_oracle(
        (seed, rc) in small_cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &rc);
        for k in [2u32, 3] {
            let (multi, single) = brute_force_mc_pairs_k(&nl, k);
            for cfg in engine_configs() {
                if k != 2 && matches!(cfg.engine, Engine::Bdd { .. }) {
                    continue;
                }
                for slice in [true, false] {
                    for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
                        for threads in [1usize, 2, 8] {
                            let report = analyze(
                                &nl,
                                &McConfig {
                                    cycles: k,
                                    slice,
                                    threads,
                                    scheduler,
                                    ..cfg.clone()
                                },
                            )
                            .expect("analyze");
                            prop_assert_eq!(
                                report.multi_cycle_pairs(),
                                multi.clone(),
                                "seed={} k={} {:?} slice={} {:?} threads={} learning={}",
                                seed, k, cfg.engine, slice, scheduler, threads,
                                cfg.static_learning
                            );
                            prop_assert_eq!(
                                report.single_cycle_pairs(),
                                single.clone(),
                                "seed={} k={} {:?} slice={} single set",
                                seed, k, cfg.engine, slice
                            );
                            prop_assert!(
                                report.unknown_pairs().is_empty(),
                                "seed={} k={} {:?} slice={} left unknowns",
                                seed, k, cfg.engine, slice
                            );
                        }
                    }
                }
            }
        }
    }

    /// `Expanded::build_slice` must be *exactly* the whole-circuit
    /// expansion restricted to the cone of influence: same node kinds,
    /// origins, levels and fanin wiring (modulo the dense renumbering),
    /// and the slice's free variables are the whole model's free
    /// variables filtered to the cone, in the same canonical order.
    /// Checked for every connected pair's root set at `k ∈ {2, 3}`.
    #[test]
    fn build_slice_equals_the_whole_expansion_restricted_to_the_cone(
        (seed, rc) in small_cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &rc);
        for k in [2u32, 3] {
            let x = Expanded::build(&nl, k);
            for (i, j) in nl.connected_ff_pairs() {
                let mut roots: Vec<XId> = vec![x.ff_at(i, 0), x.ff_at(i, 1)];
                for m in 1..=k {
                    roots.push(x.ff_at(j, m));
                }
                roots.sort_unstable();
                roots.dedup();
                let mut cone = x.cone_of(&roots);
                cone.sort_unstable();
                let slice = x.build_slice(&roots);
                let sx = slice.model();

                prop_assert_eq!(slice.num_nodes(), cone.len(), "seed={seed} k={k}");
                for (sid, snode) in sx.nodes() {
                    let wid = slice.to_whole(sid);
                    prop_assert_eq!(slice.to_slice(wid), Some(sid));
                    let wnode = x.node(wid);
                    prop_assert_eq!(snode.kind(), wnode.kind(), "seed={seed}");
                    prop_assert_eq!(snode.origin(), wnode.origin(), "seed={seed}");
                    prop_assert_eq!(sx.level(sid), x.level(wid), "seed={seed}");
                    let mapped: Vec<XId> =
                        snode.fanins().iter().map(|&f| slice.to_whole(f)).collect();
                    prop_assert_eq!(&mapped[..], wnode.fanins(), "seed={seed} fanins");
                }
                // Dense ascending renumbering: slice node s maps to cone[s].
                let back: Vec<XId> =
                    (0..slice.num_nodes()).map(|s| slice.to_whole(sx.nodes().nth(s).expect("dense").0)).collect();
                prop_assert_eq!(&back, &cone, "seed={seed} node order");

                let sliced_vars: Vec<XId> =
                    sx.vars().iter().map(|&v| slice.to_whole(v)).collect();
                let cone_vars: Vec<XId> = x
                    .vars()
                    .iter()
                    .copied()
                    .filter(|v| slice.to_slice(*v).is_some())
                    .collect();
                prop_assert_eq!(&sliced_vars, &cone_vars, "seed={seed} var order");

                // The FF lookups the engines rely on survive the remap.
                prop_assert_eq!(slice.to_whole(sx.ff_at(i, 0)), x.ff_at(i, 0));
                prop_assert_eq!(slice.to_whole(sx.ff_at(i, 1)), x.ff_at(i, 1));
                for m in 1..=k {
                    prop_assert_eq!(slice.to_whole(sx.ff_at(j, m)), x.ff_at(j, m));
                }
            }
        }
    }
}

/// Thread count and scheduling policy must never change a verdict:
/// every engine, at 1/2/8 threads under both policies, equals the
/// oracle on the paper's Fig.1 circuit.
#[test]
fn verdicts_match_the_oracle_at_any_thread_count() {
    let nl = circuits::fig1();
    let (multi, _) = brute_force_mc_pairs(&nl);
    for cfg in engine_configs() {
        for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
            for threads in [1usize, 2, 8] {
                let report = analyze(
                    &nl,
                    &McConfig {
                        threads,
                        scheduler,
                        ..cfg.clone()
                    },
                )
                .expect("analyze");
                assert_eq!(
                    report.multi_cycle_pairs(),
                    multi,
                    "{:?} at threads={threads} under {scheduler:?}",
                    cfg.engine
                );
            }
        }
    }
}
