//! Integration checks for the observability surface of the pipeline:
//! `StepStats` totals cover the structural pair count, the embedded
//! `MetricsSnapshot` has non-zero counters for every step that resolved
//! pairs, the NDJSON journal carries one record per analyzed pair, and
//! two same-seed runs produce identical counter snapshots.

use mcp_core::{analyze, analyze_with, Engine, McConfig, Scheduler};
use mcp_gen::{circuits, suite};
use mcp_obs::{read_journal_file, FileSink, ObsCtx};
use mcp_sim::SimKernel;

#[test]
fn fig1_step_totals_cover_every_structural_pair() {
    let nl = circuits::fig1();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    let s = &report.stats;
    assert_eq!(s.candidates, 9, "Fig.1 has 9 connected FF pairs");
    assert_eq!(
        s.single_total() + s.multi_total() + s.unknown,
        s.candidates,
        "every candidate pair is attributed to exactly one step"
    );
    assert_eq!(report.pairs.len(), s.candidates);
}

#[test]
fn fig1_counters_are_nonzero_for_every_resolving_step() {
    let nl = circuits::fig1();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    let s = &report.stats;
    let c = &report.metrics.counters;

    // The sim prefilter resolved pairs, so its counters must show work.
    assert!(s.single_by_sim > 0, "paper walkthrough: sim drops 4 pairs");
    assert!(c.sim_words > 0);
    assert_eq!(c.sim_pairs_dropped, s.single_by_sim as u64);

    // The implication step resolved pairs, so the engine must have
    // placed implications on the trail.
    assert!(s.multi_by_implication > 0);
    assert!(c.implications > 0);

    // Search effort is only counted when the search ran.
    if s.multi_by_atpg + s.single_by_atpg + s.unknown == 0 {
        assert_eq!(c.atpg_aborts, 0);
    }

    // Span timers covered the phases, and the nested spans cannot
    // exceed the root (single-threaded run).
    let spans = &report.metrics.spans;
    for key in ["analyze", "analyze/sim", "analyze/prepare", "analyze/pairs"] {
        assert!(spans.contains_key(key), "missing span `{key}`");
    }
    assert!(spans["analyze"].total >= spans["analyze/pairs"].total);
}

#[test]
fn ndjson_journal_has_one_record_per_pair() {
    let nl = circuits::fig1();
    let dir = std::env::temp_dir().join("mcp-core-obs-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("fig1.ndjson");
    let sink = FileSink::create(&path).expect("create journal");
    let obs = ObsCtx::new().with_sink(Box::new(sink));
    let report = analyze_with(&nl, &McConfig::default(), &obs).expect("analyze");

    let events = read_journal_file(&path).expect("journal parses");
    assert_eq!(events.len(), report.stats.candidates);

    // Every candidate pair appears exactly once.
    let mut seen: Vec<(usize, usize)> = events.iter().map(|e| (e.src, e.dst)).collect();
    seen.sort_unstable();
    let mut expected: Vec<(usize, usize)> = report.pairs.iter().map(|p| (p.src, p.dst)).collect();
    expected.sort_unstable();
    assert_eq!(seen, expected);

    for e in &events {
        assert!(
            ["structural", "random_sim", "implication", "atpg"].contains(&e.step.as_str()),
            "unexpected step `{}`",
            e.step
        );
        assert!(["multi", "single", "unknown"].contains(&e.class.as_str()));
    }
    // Pairs that reached the implication step carry per-assignment
    // outcomes.
    assert!(events.iter().any(|e| !e.assignments.is_empty()));
}

#[test]
fn same_seed_runs_produce_identical_counter_snapshots() {
    let nl = circuits::fig1();
    for threads in [1usize, 2] {
        let cfg = McConfig {
            threads,
            ..McConfig::default()
        };
        let a = analyze(&nl, &cfg).expect("analyze");
        let b = analyze(&nl, &cfg).expect("analyze");
        assert_eq!(
            a.metrics.counters, b.metrics.counters,
            "counters must be deterministic at threads={threads}"
        );
        assert_eq!(a.multi_cycle_pairs(), b.multi_cycle_pairs());
    }
}

/// The tentpole determinism guarantee: the serialized canonical report —
/// verdicts, per-step stats, and the strategy-independent counter
/// projection — is byte-identical whether the pair loop ran on 1 worker
/// or 8, under either scheduling policy, **with cone slicing on or
/// off**, for both parallel engines. Only wall-clock, spans and engine
/// effort (all projected out by `canonical()`) may differ between runs.
#[test]
fn reports_are_byte_identical_across_thread_counts_and_slice_modes() {
    let nl = suite::quick_suite().remove(1); // m298: survivors for every step
    for engine in [Engine::Implication, Engine::Sat] {
        for static_learning in [false, true] {
            if static_learning && engine != Engine::Implication {
                continue; // learning feeds only the implication engine
            }
            let mk = |threads: usize, scheduler: Scheduler, slice: bool| {
                let cfg = McConfig {
                    engine,
                    threads,
                    scheduler,
                    static_learning,
                    slice,
                    backtrack_limit: 1024,
                    ..McConfig::default()
                };
                let report = analyze(&nl, &cfg).expect("analyze");
                serde_json::to_string(&report.canonical()).expect("serialize")
            };
            let baseline = mk(1, Scheduler::WorkSteal, true);
            for slice in [true, false] {
                for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
                    for threads in [1usize, 2, 8] {
                        assert_eq!(
                            mk(threads, scheduler, slice),
                            baseline,
                            "{engine:?} (learning={static_learning}) drifted at \
                             threads={threads} slice={slice} under {scheduler:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Within a fixed slice mode the *full* counter snapshot — engine effort
/// included, nothing projected out — must not depend on the thread
/// count or scheduling policy. (Across slice modes effort legitimately
/// differs; that is exactly what `canonical()` projects away above.)
#[test]
fn full_counter_snapshots_are_thread_independent_within_a_slice_mode() {
    let nl = suite::quick_suite().remove(1); // m298
    for engine in [Engine::Implication, Engine::Sat] {
        for slice in [true, false] {
            let run = |threads: usize, scheduler: Scheduler| {
                let cfg = McConfig {
                    engine,
                    threads,
                    scheduler,
                    slice,
                    backtrack_limit: 1024,
                    ..McConfig::default()
                };
                analyze(&nl, &cfg).expect("analyze").metrics.counters
            };
            let baseline = run(1, Scheduler::WorkSteal);
            if slice {
                assert!(baseline.slice_builds > 0, "{engine:?}: slicing ran");
                assert!(baseline.slice_nodes_peak > 0);
            } else {
                assert_eq!(baseline.slice_builds, 0, "{engine:?}: slicing was off");
            }
            for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
                for threads in [2usize, 8] {
                    assert_eq!(
                        run(threads, scheduler),
                        baseline,
                        "{engine:?} slice={slice} counters drifted at \
                         threads={threads} under {scheduler:?}"
                    );
                }
            }
        }
    }
}

/// The prefilter's compiled kernel ladder is an implementation detail:
/// the canonical report is byte-identical across every kernel tier
/// (jit, fused, tape, reference), at every supported lane width, at
/// every thread count, under both schedulers. The kernel-effort
/// counters (`sim_passes`, `sim_tape_ops`, `sim_fused_ops`, `jit_*`)
/// are the only observable difference, and `canonical()` projects them
/// out.
#[test]
fn reports_are_byte_identical_across_kernel_tiers_lane_widths_and_threads() {
    let nl = suite::quick_suite().remove(1); // m298: sim drops + survivors
    let mk = |kernel: Option<SimKernel>, lanes: u32, threads: usize, scheduler: Scheduler| {
        let mut cfg = McConfig {
            threads,
            scheduler,
            ..McConfig::default()
        };
        match kernel {
            None => cfg.sim.tape = false,
            Some(k) => {
                cfg.sim.tape = true;
                cfg.sim.kernel = k;
            }
        }
        cfg.sim.lanes = lanes;
        let report = analyze(&nl, &cfg).expect("analyze");
        let canon = serde_json::to_string(&report.canonical()).expect("serialize");
        (canon, report.metrics.counters)
    };
    let (baseline, ref_counters) = mk(None, 64, 1, Scheduler::WorkSteal);
    assert_eq!(
        ref_counters.sim_passes, 0,
        "reference path must not count kernel passes"
    );
    assert_eq!(ref_counters.sim_tape_ops, 0);
    assert_eq!(ref_counters.sim_fused_ops, 0);
    assert_eq!(ref_counters.jit_compiles, 0);
    for kernel in [SimKernel::Jit, SimKernel::Fused, SimKernel::Tape] {
        for lanes in [64u32, 128, 256, 512] {
            for threads in [1usize, 2, 8] {
                for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
                    let (canon, counters) = mk(Some(kernel), lanes, threads, scheduler);
                    assert_eq!(
                        canon, baseline,
                        "canonical report drifted at kernel={kernel:?} lanes={lanes} \
                         threads={threads} scheduler={scheduler:?}"
                    );
                    assert!(
                        counters.sim_passes > 0,
                        "compiled tiers must count kernel passes (kernel={kernel:?})"
                    );
                    match kernel {
                        SimKernel::Tape => {
                            assert!(counters.sim_tape_ops > 0);
                            assert_eq!(counters.sim_fused_ops, 0);
                        }
                        // Fused always interprets; Jit lands on native
                        // code or the fused fallback — both count fused
                        // instructions, never tape instructions.
                        SimKernel::Fused | SimKernel::Jit => {
                            assert_eq!(counters.sim_tape_ops, 0);
                            assert!(counters.sim_fused_ops > 0);
                        }
                        SimKernel::Reference => unreachable!(),
                    }
                }
            }
        }
    }
}

/// NDJSON verdict events carry the slice dimensions exactly when the
/// pair went through a sliced engine: populated for engine-classified
/// pairs with slicing on, absent for sim-dropped pairs and for every
/// event of a `--no-slice` run.
#[test]
fn journal_events_carry_slice_sizes_only_when_sliced() {
    let nl = circuits::fig1();
    let dir = std::env::temp_dir().join("mcp-core-obs-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    for slice in [true, false] {
        let path = dir.join(format!("fig1-slice-{slice}.ndjson"));
        let sink = FileSink::create(&path).expect("create journal");
        let obs = ObsCtx::new().with_sink(Box::new(sink));
        let cfg = McConfig {
            slice,
            ..McConfig::default()
        };
        analyze_with(&nl, &cfg, &obs).expect("analyze");
        let events = read_journal_file(&path).expect("journal parses");
        assert!(!events.is_empty());
        for e in &events {
            if e.step == "random_sim" || !slice {
                assert_eq!(
                    e.slice_nodes, None,
                    "({}, {}) slice={slice}: unsliced event must omit slice_nodes",
                    e.src, e.dst
                );
                assert_eq!(e.slice_vars, None);
            } else {
                assert!(
                    e.slice_nodes.is_some_and(|n| n > 0),
                    "({}, {}) engine event missing slice_nodes",
                    e.src,
                    e.dst
                );
                assert!(e.slice_vars.is_some_and(|v| v > 0));
            }
        }
    }
}

/// An FF-free circuit exercises the empty-pair edge through the public
/// API: the pair loop must no-op (no spans, no engine counters) instead
/// of clamping to zero-size chunks.
#[test]
fn empty_survivor_set_leaves_no_pair_loop_trace() {
    use mcp_netlist::bench;
    let nl = bench::parse("comb", "INPUT(a)\nOUTPUT(b)\nb = NOT(a)").expect("parse");
    let obs = ObsCtx::new();
    let report = analyze_with(
        &nl,
        &McConfig {
            threads: 8,
            ..McConfig::default()
        },
        &obs,
    )
    .expect("analyze");
    assert!(report.pairs.is_empty());
    assert!(
        !report.metrics.spans.contains_key("analyze/pairs"),
        "no worker ran, so no pair-loop span may exist"
    );
    assert_eq!(report.metrics.counters.implications, 0);
    assert_eq!(report.metrics.counters.atpg_decisions, 0);
}
