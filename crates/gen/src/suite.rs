//! The deterministic synthetic benchmark suite.
//!
//! A graded set of circuits spanning the size range of the paper's ISCAS89
//! table, built from the generators with fixed seeds. Names are prefixed
//! `m` (for *mimic*) with a number loosely tracking the gate count, the
//! way `s`-numbers do in ISCAS89. Every table/bench binary iterates this
//! suite, so results are reproducible run-to-run and machine-to-machine.

// Every entry carries `..CompositeConfig::default()` so new generator
// knobs don't force editing all twelve configs; clippy flags the entries
// that currently specify every field.
#![allow(clippy::needless_update)]

use crate::generators::{composite, CompositeConfig};
use mcp_netlist::Netlist;

/// Builds the standard suite used by the table harnesses.
///
/// Sizes are graded from a few FFs to on the order of a thousand, with a
/// mix of multi-cycle-rich datapath blocks (counters, enables, holds) and
/// single-cycle pipelines plus random glue — the population structure the
/// paper reports (roughly one multi-cycle pair per ten connected pairs).
pub fn standard_suite() -> Vec<Netlist> {
    suite_configs()
        .into_iter()
        .map(|(name, cfg)| composite(name, &cfg))
        .collect()
}

/// Builds the abbreviated suite (the smaller half), for quick runs and CI.
pub fn quick_suite() -> Vec<Netlist> {
    suite_configs()
        .into_iter()
        .take(6)
        .map(|(name, cfg)| composite(name, &cfg))
        .collect()
}

fn suite_configs() -> Vec<(&'static str, CompositeConfig)> {
    vec![
        (
            "m27",
            CompositeConfig {
                seed: 27,
                datapaths: vec![(1, 2, 0, 3)],
                pipelines: vec![],
                glue_gates: 4,
                glue_regs: 1,
                ..CompositeConfig::default()
            },
        ),
        (
            "m298",
            CompositeConfig {
                seed: 298,
                datapaths: vec![(3, 2, 0, 2)],
                pipelines: vec![(2, 3)],
                glue_gates: 20,
                glue_regs: 3,
                ..CompositeConfig::default()
            },
        ),
        (
            "m526",
            CompositeConfig {
                seed: 526,
                datapaths: vec![(4, 2, 1, 3), (2, 3, 0, 5)],
                pipelines: vec![(3, 3)],
                glue_gates: 40,
                glue_regs: 4,
                ..CompositeConfig::default()
            },
        ),
        (
            "m820",
            CompositeConfig {
                seed: 820,
                dual_datapaths: vec![(3, 3, 0, 2, 5)],
                pinned_chains: 2,
                rare_chains: 2,
                datapaths: vec![(6, 3, 0, 4)],
                pipelines: vec![(4, 4)],
                glue_gates: 60,
                glue_regs: 5,
                ..CompositeConfig::default()
            },
        ),
        (
            "m1238",
            CompositeConfig {
                seed: 1238,
                dual_datapaths: vec![(4, 2, 0, 1, 3)],
                pinned_chains: 3,
                rare_chains: 3,
                datapaths: vec![(8, 2, 0, 3), (4, 3, 2, 6)],
                pipelines: vec![(4, 4), (3, 2)],
                glue_gates: 90,
                glue_regs: 6,
                ..CompositeConfig::default()
            },
        ),
        (
            "m1423",
            CompositeConfig {
                seed: 1423,
                dual_datapaths: vec![(4, 3, 1, 4, 7)],
                pinned_chains: 4,
                rare_chains: 4,
                datapaths: vec![(10, 3, 1, 5)],
                pipelines: vec![(6, 6)],
                glue_gates: 120,
                glue_regs: 8,
                ..CompositeConfig::default()
            },
        ),
        (
            "m5378",
            CompositeConfig {
                seed: 5378,
                dual_datapaths: vec![(8, 3, 0, 2, 5), (4, 3, 1, 3, 6)],
                pinned_chains: 10,
                rare_chains: 8,
                datapaths: vec![(16, 3, 0, 6), (8, 4, 0, 9), (8, 2, 1, 2)],
                pipelines: vec![(8, 8), (4, 6)],
                glue_gates: 400,
                glue_regs: 20,
                ..CompositeConfig::default()
            },
        ),
        (
            "m9234",
            CompositeConfig {
                seed: 9234,
                dual_datapaths: vec![(12, 4, 0, 3, 8)],
                pinned_chains: 16,
                rare_chains: 12,
                datapaths: vec![(24, 4, 2, 11), (16, 3, 0, 5)],
                pipelines: vec![(10, 10), (6, 8)],
                glue_gates: 700,
                glue_regs: 30,
                ..CompositeConfig::default()
            },
        ),
        (
            "m13207",
            CompositeConfig {
                seed: 13207,
                dual_datapaths: vec![(16, 4, 1, 5, 10), (8, 3, 0, 2, 5)],
                pinned_chains: 24,
                rare_chains: 16,
                datapaths: vec![(32, 4, 0, 7), (16, 4, 3, 12), (8, 2, 0, 3)],
                pipelines: vec![(12, 12), (8, 8)],
                glue_gates: 1000,
                glue_regs: 40,
                ..CompositeConfig::default()
            },
        ),
        (
            "m15850",
            CompositeConfig {
                seed: 15850,
                dual_datapaths: vec![(16, 4, 0, 6, 11)],
                pinned_chains: 28,
                rare_chains: 20,
                datapaths: vec![(32, 4, 1, 9), (24, 3, 0, 4), (16, 4, 5, 13)],
                pipelines: vec![(14, 12), (10, 8)],
                glue_gates: 1200,
                glue_regs: 48,
                ..CompositeConfig::default()
            },
        ),
        (
            "m35932",
            CompositeConfig {
                seed: 35932,
                dual_datapaths: vec![(24, 4, 0, 4, 9), (16, 3, 1, 3, 6)],
                pinned_chains: 60,
                rare_chains: 40,
                datapaths: vec![(64, 4, 0, 11), (48, 3, 2, 6), (32, 4, 4, 12)],
                pipelines: vec![(16, 20), (12, 16), (8, 12)],
                glue_gates: 3200,
                glue_regs: 160,
                ..CompositeConfig::default()
            },
        ),
        (
            "m38584",
            CompositeConfig {
                seed: 38584,
                dual_datapaths: vec![(32, 4, 2, 6, 12), (16, 4, 0, 5, 10)],
                pinned_chains: 72,
                rare_chains: 48,
                datapaths: vec![(64, 4, 3, 10), (64, 3, 0, 5), (32, 5, 0, 17)],
                pipelines: vec![(20, 20), (14, 16), (10, 12)],
                glue_gates: 4000,
                glue_regs: 200,
                ..CompositeConfig::default()
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_are_graded() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 12);
        let mut prev_pairs = 0usize;
        let mut grows = 0usize;
        for nl in &suite {
            let s = nl.stats();
            assert!(s.ffs >= 3, "{}: too few FFs", nl.name());
            assert!(s.ff_pairs > 0, "{}: no pairs", nl.name());
            if s.ff_pairs >= prev_pairs {
                grows += 1;
            }
            prev_pairs = s.ff_pairs;
        }
        // Sizes trend upward (allow occasional ties).
        assert!(grows >= 10, "suite sizes should be graded, grew {grows}/12");
    }

    #[test]
    fn quick_suite_is_a_prefix() {
        let quick = quick_suite();
        let full = standard_suite();
        assert_eq!(quick.len(), 6);
        for (q, f) in quick.iter().zip(full.iter()) {
            assert_eq!(q.name(), f.name());
            assert_eq!(q.stats(), f.stats());
        }
    }

    #[test]
    fn suite_is_reproducible() {
        let a = standard_suite();
        let b = standard_suite();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.stats(), y.stats());
        }
    }

    #[test]
    fn largest_circuit_is_iscas_scale() {
        let suite = standard_suite();
        let last = suite.last().unwrap();
        let s = last.stats();
        assert!(s.ffs >= 400, "m38584 should have hundreds of FFs: {s:?}");
        assert!(s.gates >= 3000, "and thousands of gates: {s:?}");
    }
}
