//! Seeded random circuit generation for property-based testing.
//!
//! Random netlists exercise gate/arity combinations no structured
//! generator produces; the analysis crates use them (as dev-dependencies)
//! to cross-validate engines against brute force.

use mcp_logic::GateKind;
use mcp_netlist::{Netlist, NetlistBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a [`random_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCircuitConfig {
    /// Number of flip-flops.
    pub ffs: usize,
    /// Number of primary inputs.
    pub pis: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Maximum fanin of the n-ary gates (≥ 1).
    pub max_arity: usize,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            ffs: 3,
            pis: 2,
            gates: 20,
            max_arity: 3,
        }
    }
}

/// Builds a random synchronous circuit: a random combinational DAG over
/// the inputs and FF outputs, with every FF's D input wired to a random
/// node. Construction is fully deterministic per `(seed, cfg)`.
///
/// The result always validates (gates only read already-created nodes, so
/// no combinational cycles are possible), every FF is driven, and the last
/// node is marked as a primary output.
///
/// # Panics
///
/// Panics if `cfg.ffs == 0 && cfg.pis == 0` (no sources to build from) or
/// `cfg.max_arity == 0`.
pub fn random_netlist(seed: u64, cfg: &RandomCircuitConfig) -> Netlist {
    assert!(cfg.ffs + cfg.pis > 0, "need at least one source");
    assert!(cfg.max_arity >= 1, "arity must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("rand{seed}"));
    let mut pool: Vec<NodeId> = (0..cfg.pis).map(|i| b.input(format!("I{i}"))).collect();
    let ffs: Vec<NodeId> = (0..cfg.ffs).map(|i| b.dff(format!("F{i}"))).collect();
    pool.extend(&ffs);

    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for _ in 0..cfg.gates {
        let kind = kinds[rng.random_range(0..kinds.len())];
        let arity = kind
            .fixed_arity()
            .unwrap_or_else(|| rng.random_range(1..=cfg.max_arity));
        let ins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        let g = b.gate_auto(kind, ins).expect("valid arity");
        pool.push(g);
    }
    for &ff in &ffs {
        let d = pool[rng.random_range(0..pool.len())];
        b.set_dff_input(ff, d).expect("valid dff");
    }
    b.mark_output(*pool.last().expect("non-empty pool"));
    b.finish().expect("random circuit is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomCircuitConfig::default();
        let a = random_netlist(5, &cfg);
        let b = random_netlist(5, &cfg);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.connected_ff_pairs(), b.connected_ff_pairs());
    }

    #[test]
    fn respects_requested_shape() {
        let cfg = RandomCircuitConfig {
            ffs: 4,
            pis: 3,
            gates: 15,
            max_arity: 4,
        };
        let nl = random_netlist(99, &cfg);
        assert_eq!(nl.num_ffs(), 4);
        assert_eq!(nl.num_inputs(), 3);
        assert_eq!(nl.num_gates(), 15);
        for (_, node) in nl.nodes() {
            assert!(node.fanins().len() <= 4);
        }
    }

    #[test]
    fn many_seeds_build_valid_circuits() {
        for seed in 0..100 {
            let nl = random_netlist(seed, &RandomCircuitConfig::default());
            // Validation ran inside finish(); spot check the topo order.
            let mut pos = vec![usize::MAX; nl.num_nodes()];
            for (k, &g) in nl.topo_gates().iter().enumerate() {
                pos[g.index()] = k;
            }
            for &g in nl.topo_gates() {
                for &f in nl.node(g).fanins() {
                    if nl.node(f).kind().is_gate() {
                        assert!(pos[f.index()] < pos[g.index()], "seed {seed}");
                    }
                }
            }
        }
    }
}
