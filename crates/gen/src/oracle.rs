//! Exhaustive-simulation ground truth for small circuits.

use mcp_netlist::Netlist;
use mcp_sim::ParallelSim;

/// `(multi_cycle_pairs, single_cycle_pairs)`, both sorted by `(src, dst)`.
pub type PairPartition = (Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Classifies every structurally connected FF pair of a *small* circuit by
/// brute force: enumerate every `(state, inputs(t), inputs(t+1))`
/// combination, simulate two cycles, and check the MC condition
/// `FFi(t) != FFi(t+1) ⇒ FFj(t+1) == FFj(t+2)` against all of them.
///
/// Returns `(multi_cycle_pairs, single_cycle_pairs)`, both sorted. This is
/// the reference every analysis engine is validated against (they all
/// assume every state reachable, exactly like this enumeration).
///
/// Enumeration is 64-way bit-parallel, so the practical limit of
/// `num_ffs + 2 * num_inputs ≤ ~26` is comfortable for unit tests.
///
/// # Panics
///
/// Panics if `num_ffs + 2 * num_inputs > 30` (the enumeration would not
/// terminate in reasonable time).
pub fn exhaustive_mc_pairs(netlist: &Netlist) -> PairPartition {
    let nffs = netlist.num_ffs();
    let npis = netlist.num_inputs();
    let total_bits = nffs + 2 * npis;
    assert!(
        total_bits <= 30,
        "exhaustive oracle limited to 30 free bits, got {total_bits}"
    );

    let pairs = netlist.connected_ff_pairs();
    let mut violated = vec![false; pairs.len()];

    let mut sim = ParallelSim::new(netlist);
    let lanes: u64 = 64;
    let combos: u64 = 1 << total_bits;
    let mut s0 = vec![0u64; nffs];
    let mut s1 = vec![0u64; nffs];
    let mut s2 = vec![0u64; nffs];

    let mut base = 0u64;
    while base < combos {
        // Lane l encodes combination (base + l); bit k of the combination:
        // word w_k has bit l set iff (base + l) >> k & 1.
        let word_for_bit = |k: usize| -> u64 {
            let mut w = 0u64;
            for l in 0..lanes.min(combos - base) {
                if (base + l) >> k & 1 == 1 {
                    w |= 1 << l;
                }
            }
            w
        };
        for ff in 0..nffs {
            sim.set_state(ff, word_for_bit(ff));
        }
        for pi in 0..npis {
            sim.set_input(pi, word_for_bit(nffs + pi));
        }
        for (k, s) in s0.iter_mut().enumerate() {
            *s = sim.state(k);
        }
        sim.eval();
        for (k, s) in s1.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        sim.clock();
        for pi in 0..npis {
            sim.set_input(pi, word_for_bit(nffs + npis + pi));
        }
        sim.eval();
        for (k, s) in s2.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }

        // Mask out lanes beyond the combination count.
        let valid: u64 = if combos - base >= 64 {
            u64::MAX
        } else {
            (1u64 << (combos - base)) - 1
        };
        for (p, &(i, j)) in pairs.iter().enumerate() {
            if (s0[i] ^ s1[i]) & (s1[j] ^ s2[j]) & valid != 0 {
                violated[p] = true;
            }
        }
        base += lanes;
    }

    let mut multi = Vec::new();
    let mut single = Vec::new();
    for (p, &pair) in pairs.iter().enumerate() {
        if violated[p] {
            single.push(pair);
        } else {
            multi.push(pair);
        }
    }
    (multi, single)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;

    #[test]
    fn fig1_ground_truth_matches_the_paper() {
        // Section 4.2: of the 9 structural pairs, exactly 5 are multi-cycle:
        // (FF1,FF1),(FF1,FF2),(FF2,FF2),(FF3,FF2),(FF4,FF1).
        let nl = circuits::fig1();
        let (multi, single) = exhaustive_mc_pairs(&nl);
        assert_eq!(multi, vec![(0, 0), (0, 1), (1, 1), (2, 1), (3, 0)]);
        assert_eq!(single.len(), 4);
    }

    #[test]
    fn toggle_ff_is_single_cycle_to_itself() {
        let nl = mcp_netlist::bench::parse("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)")
            .expect("parse");
        let (multi, single) = exhaustive_mc_pairs(&nl);
        assert!(multi.is_empty());
        assert_eq!(single, vec![(0, 0)]);
    }

    #[test]
    fn hold_ff_is_multi_cycle_to_itself() {
        let nl = mcp_netlist::bench::parse("h", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = BUFF(q)")
            .expect("parse");
        let (multi, single) = exhaustive_mc_pairs(&nl);
        assert_eq!(multi, vec![(0, 0)]);
        assert!(single.is_empty());
    }

    #[test]
    fn gated_datapath_source_to_sink_is_multi_cycle() {
        let nl = crate::generators::gated_datapath(&crate::generators::DatapathConfig {
            width: 1,
            counter_bits: 2,
            load_phase: 0,
            capture_phase: 3,
        });
        let (multi, _) = exhaustive_mc_pairs(&nl);
        let a0 = nl.ff_index(nl.find_node("D0_A0").unwrap()).unwrap();
        let b0 = nl.ff_index(nl.find_node("D0_B0").unwrap()).unwrap();
        assert!(multi.contains(&(a0, b0)), "A->B transfer is gated 3 cycles");
    }

    #[test]
    #[should_panic(expected = "30 free bits")]
    fn oracle_rejects_large_circuits() {
        let nl = crate::generators::pipeline(8, 4);
        // 32 FFs + inputs exceeds the bit budget.
        exhaustive_mc_pairs(&nl);
    }
}
