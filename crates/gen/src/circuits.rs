//! Exact reconstructions of the paper's illustrative circuits.

use mcp_logic::GateKind;
use mcp_netlist::{Netlist, NetlistBuilder};

/// The paper's Fig.1 circuit.
///
/// A 4-state gray-code controller `(FF3, FF4)` cycling
/// `(0,0) → (0,1) → (1,1) → (1,0) → (0,0)` gates two registers:
///
/// * `FF1` loads primary input `IN` when the counter is `(0,0)` (select
///   `EN1 = NOR(FF3, FF4)`), otherwise holds;
/// * `FF2` captures `FF1` when the counter is `(1,0)` (select
///   `EN2 = AND(FF3, NOT FF4)`), otherwise holds.
///
/// The counter needs 3 cycles to travel from the load state to the capture
/// state, so every `FF1 → FF2` path is a 3-cycle path. `OUT = FF2`.
///
/// Our netlist model is gate-level, so the multiplexers are decomposed into
/// AND/OR/NOT exactly as in the paper's Fig.3 technology mapping; Fig.1 and
/// [`fig3`] therefore share structure and differ only in name (the paper's
/// hazard discussion applies to the mapped form, which is the form we
/// always analyze).
///
/// FF indices: `FF1 = 0`, `FF2 = 1`, `FF3 = 2`, `FF4 = 3`.
pub fn fig1() -> Netlist {
    build_fig("fig1")
}

/// The paper's Fig.3: the technology-mapped form of [`fig1`] — each
/// multiplexer decomposed into 2 AND, 1 OR and 1 NOT gate.
///
/// This is the circuit on which the paper demonstrates that the MC
/// condition alone is optimistic: pair `(FF3, FF2)` satisfies it, yet a
/// static hazard through `EN2`'s reconvergent fanout (`MUX2_A0` vs
/// `MUX2_A1`) can propagate a glitch to `FF2`'s D input.
pub fn fig3() -> Netlist {
    build_fig("fig3")
}

fn build_fig(name: &str) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let input = b.input("IN");
    let ff1 = b.dff("FF1");
    let ff2 = b.dff("FF2");
    let ff3 = b.dff("FF3");
    let ff4 = b.dff("FF4");

    // Gray-code controller: FF3' = FF4, FF4' = NOT FF3.
    let nf3 = b.gate("NF3", GateKind::Not, [ff3]).expect("arity");
    b.set_dff_input(ff3, ff4).expect("dff");
    b.set_dff_input(ff4, nf3).expect("dff");

    // EN1 = NOR(FF3, FF4): counter state (0,0).
    let en1 = b.gate("EN1", GateKind::Nor, [ff3, ff4]).expect("arity");
    // FF1 loads IN when EN1, else holds.
    let mux1 = b.mux("MUX1", en1, ff1, input).expect("arity");
    b.set_dff_input(ff1, mux1).expect("dff");

    // EN2 = AND(FF3, NOT FF4): counter state (1,0).
    let nf4 = b.gate("NF4", GateKind::Not, [ff4]).expect("arity");
    let en2 = b.gate("EN2", GateKind::And, [ff3, nf4]).expect("arity");
    // FF2 captures FF1 when EN2, else holds.
    let mux2 = b.mux("MUX2", en2, ff2, ff1).expect("arity");
    b.set_dff_input(ff2, mux2).expect("dff");

    b.mark_output(ff2);
    b.finish().expect("fig circuit is well-formed")
}

/// The paper's Fig.4 fragment, used to contrast static sensitization with
/// static co-sensitization.
///
/// `C = AND(A', B)` where `A' = NOT(A)`... the figure shows a path from `A`
/// to `C` through two gates with side input `B` carrying a controlling
/// value in the second time frame: the path is **not** statically
/// sensitizable (B blocks the AND), but it **is** statically
/// co-sensitizable (the AND output has its controlled value and the
/// on-path edge also presents a controlling value is not required when the
/// side provides it — co-sensitization only constrains gates whose output
/// is controlled to receive the controlling value on the on-path edge).
///
/// Concretely: `N = NOT(A)`, `C = AND(N, B)`, registered into `QC`; `B`
/// also drives a register `QB` so the `(B, C)` interaction is observable.
/// FF indices: `QA = 0` (drives A into the fragment), `QB = 1`, `QC = 2`.
pub fn fig4_fragment() -> Netlist {
    let mut b = NetlistBuilder::new("fig4");
    let in_a = b.input("INA");
    let in_b = b.input("INB");
    let qa = b.dff("QA");
    let qb = b.dff("QB");
    let qc = b.dff("QC");
    b.set_dff_input(qa, in_a).expect("dff");
    b.set_dff_input(qb, in_b).expect("dff");
    let n = b.gate("N", GateKind::Not, [qa]).expect("arity");
    let c = b.gate("C", GateKind::And, [n, qb]).expect("arity");
    b.set_dff_input(qc, c).expect("dff");
    b.mark_output(qc);
    b.finish().expect("fig4 fragment is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_the_papers_nine_pairs() {
        let nl = fig1();
        assert_eq!(nl.num_ffs(), 4);
        assert_eq!(nl.num_inputs(), 1);
        // The paper's Section 4.2: after step 1 the 9 pairs are
        // (FF1,FF1),(FF1,FF2),(FF2,FF2),(FF3,FF1),(FF3,FF2),(FF3,FF4),
        // (FF4,FF1),(FF4,FF2),(FF4,FF3). FF indices are 0-based here.
        let pairs = nl.connected_ff_pairs();
        let expect = vec![
            (0, 0),
            (0, 1),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 3),
            (3, 0),
            (3, 1),
            (3, 2),
        ];
        assert_eq!(pairs, expect);
    }

    #[test]
    fn fig1_counter_is_gray_code() {
        use mcp_sim::ParallelSim;
        let nl = fig1();
        let mut sim = ParallelSim::new(&nl);
        for ff in 0..4 {
            sim.set_state(ff, 0);
        }
        let mut states = Vec::new();
        for _ in 0..5 {
            states.push((sim.state(2) & 1, sim.state(3) & 1));
            sim.eval();
            sim.clock();
        }
        assert_eq!(states, vec![(0, 0), (0, 1), (1, 1), (1, 0), (0, 0)]);
    }

    #[test]
    fn fig1_datapath_takes_three_cycles() {
        use mcp_sim::ParallelSim;
        let nl = fig1();
        let mut sim = ParallelSim::new(&nl);
        for ff in 0..4 {
            sim.set_state(ff, 0);
        }
        // Counter starts at (0,0): FF1 loads IN=1 at the first edge; FF2
        // captures FF1 three edges later (counter back at... capture state
        // (1,0) is reached after 3 edges).
        sim.set_input(0, 1); // IN = 1 in lane 0
        let mut ff2_history = Vec::new();
        for _ in 0..5 {
            sim.eval();
            sim.clock();
            ff2_history.push(sim.state(1) & 1);
        }
        // FF1 loaded at edge 1; counter reaches (1,0) after edge 3, so FF2
        // captures FF1 at edge 4.
        assert_eq!(ff2_history, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn fig3_shares_structure_with_fig1() {
        let a = fig1();
        let c = fig3();
        assert_eq!(a.stats(), c.stats());
        assert_eq!(a.connected_ff_pairs(), c.connected_ff_pairs());
    }

    #[test]
    fn fig4_fragment_shape() {
        let nl = fig4_fragment();
        assert_eq!(nl.num_ffs(), 3);
        // QA and QB both reach QC.
        let pairs = nl.connected_ff_pairs();
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(1, 2)));
    }
}
