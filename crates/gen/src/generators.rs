//! Parametric circuit generators.
//!
//! Each generator produces a structure that occurs in real designs and has
//! a known multi-cycle (or single-cycle) characterization, so generated
//! circuits exercise every branch of the analysis with predictable ground
//! truth. [`composite`] mixes them into ISCAS89-scale benchmarks.

use mcp_logic::GateKind;
use mcp_netlist::{Netlist, NetlistBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Appends an `n`-bit binary up-counter to `b`; returns its state bits
/// (LSB first). The counter is free-running with period `2^n`.
fn push_counter(b: &mut NetlistBuilder, prefix: &str, n: usize) -> Vec<NodeId> {
    let bits: Vec<NodeId> = (0..n).map(|k| b.dff(format!("{prefix}_C{k}"))).collect();
    // carry chain: bit k toggles when all lower bits are 1.
    let mut carry: Option<NodeId> = None;
    for (k, &bit) in bits.iter().enumerate() {
        let d = match carry {
            None => b
                .gate(format!("{prefix}_T{k}"), GateKind::Not, [bit])
                .expect("arity"),
            Some(c) => b
                .gate(format!("{prefix}_T{k}"), GateKind::Xor, [bit, c])
                .expect("arity"),
        };
        b.set_dff_input(bit, d).expect("dff");
        if k + 1 < bits.len() {
            // The carry into the last bit is the last one read; building
            // the top carry would leave a floating gate.
            carry = Some(match carry {
                None => bit,
                Some(c) => b
                    .gate(format!("{prefix}_CY{k}"), GateKind::And, [c, bit])
                    .expect("arity"),
            });
        }
    }
    bits
}

/// Appends a decoder for counter value `phase` over `bits`; returns the
/// 1-when-matching node.
fn push_decode(b: &mut NetlistBuilder, prefix: &str, bits: &[NodeId], phase: u64) -> NodeId {
    let mut terms = Vec::with_capacity(bits.len());
    for (k, &bit) in bits.iter().enumerate() {
        if phase >> k & 1 == 1 {
            terms.push(bit);
        } else {
            terms.push(
                b.gate(format!("{prefix}_NB{k}"), GateKind::Not, [bit])
                    .expect("arity"),
            );
        }
    }
    b.gate(format!("{prefix}_EN"), GateKind::And, terms)
        .expect("arity")
}

/// Configuration of a [`gated_datapath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatapathConfig {
    /// Width of the source and sink registers.
    pub width: usize,
    /// Counter bits (period `2^counter_bits`).
    pub counter_bits: usize,
    /// Counter value at which the source register loads new data.
    pub load_phase: u64,
    /// Counter value at which the sink register captures `f(source)`.
    pub capture_phase: u64,
}

impl Default for DatapathConfig {
    fn default() -> Self {
        DatapathConfig {
            width: 4,
            counter_bits: 2,
            load_phase: 0,
            capture_phase: 3,
        }
    }
}

/// Generates the paper's Fig.1 motif at scale: a counter-gated datapath.
///
/// A `counter_bits`-bit controller decodes a *load* window (source register
/// `A` takes primary inputs) and a *capture* window (sink register `B`
/// takes a mixing function of `A`); outside their window both registers
/// hold. Every `(A_w, B_v)` pair is a `k`-cycle pair with
/// `k = (capture_phase - load_phase) mod 2^counter_bits`, matching the
/// gray-counter argument of the paper's Section 2.2 example.
///
/// # Panics
///
/// Panics if `width == 0`, `counter_bits == 0`, or a phase is out of range.
pub fn gated_datapath(cfg: &DatapathConfig) -> Netlist {
    let mut b = NetlistBuilder::new(format!(
        "gated_w{}_c{}_l{}_p{}",
        cfg.width, cfg.counter_bits, cfg.load_phase, cfg.capture_phase
    ));
    push_gated_datapath(&mut b, "D0", cfg);
    b.finish().expect("generated datapath is well-formed")
}

/// Appends a gated datapath block; returns `(a_regs, b_regs)`.
pub(crate) fn push_gated_datapath(
    b: &mut NetlistBuilder,
    prefix: &str,
    cfg: &DatapathConfig,
) -> (Vec<NodeId>, Vec<NodeId>) {
    push_windowed_datapath(
        b,
        prefix,
        &[cfg.load_phase],
        cfg.capture_phase,
        cfg.width,
        cfg.counter_bits,
    )
}

/// Appends a datapath whose source register loads in any of several
/// counter windows (`load_phases`): the load enable becomes an OR of
/// decodes, which direct implication cannot justify uniquely — proving the
/// source→sink pairs multi-cycle then requires the backtrack search, the
/// paper's "ATPG" column.
pub(crate) fn push_windowed_datapath(
    b: &mut NetlistBuilder,
    prefix: &str,
    load_phases: &[u64],
    capture_phase: u64,
    width: usize,
    counter_bits: usize,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let cfg = DatapathConfig {
        width,
        counter_bits,
        load_phase: load_phases[0],
        capture_phase,
    };
    assert!(cfg.width > 0 && cfg.counter_bits > 0, "degenerate datapath");
    let period = 1u64 << cfg.counter_bits;
    assert!(
        load_phases.iter().all(|&p| p < period) && cfg.capture_phase < period,
        "phase out of range"
    );
    let counter = push_counter(b, &format!("{prefix}_CTR"), cfg.counter_bits);
    let load = if load_phases.len() == 1 {
        push_decode(b, &format!("{prefix}_LD"), &counter, load_phases[0])
    } else {
        let decodes: Vec<NodeId> = load_phases
            .iter()
            .enumerate()
            .map(|(k, &p)| push_decode(b, &format!("{prefix}_LD{k}"), &counter, p))
            .collect();
        b.gate(format!("{prefix}_LD"), GateKind::Or, decodes)
            .expect("arity")
    };
    let capture = push_decode(b, &format!("{prefix}_CP"), &counter, cfg.capture_phase);

    let mut a_regs = Vec::with_capacity(cfg.width);
    let mut b_regs = Vec::with_capacity(cfg.width);
    for w in 0..cfg.width {
        let input = b.input(format!("{prefix}_IN{w}"));
        let a = b.dff(format!("{prefix}_A{w}"));
        let mux = b
            .mux(&format!("{prefix}_MA{w}"), load, a, input)
            .expect("arity");
        b.set_dff_input(a, mux).expect("dff");
        a_regs.push(a);
    }
    for w in 0..cfg.width {
        // Mixing function: B_w captures A_w ^ A_{w+1} (wrapping) so sink
        // bits depend on two source bits.
        let src = if cfg.width == 1 {
            a_regs[0]
        } else {
            b.gate(
                format!("{prefix}_MIX{w}"),
                GateKind::Xor,
                [a_regs[w], a_regs[(w + 1) % cfg.width]],
            )
            .expect("arity")
        };
        let breg = b.dff(format!("{prefix}_B{w}"));
        let mux = b
            .mux(&format!("{prefix}_MB{w}"), capture, breg, src)
            .expect("arity");
        b.set_dff_input(breg, mux).expect("dff");
        b.mark_output(breg);
        b_regs.push(breg);
    }
    (a_regs, b_regs)
}

/// Generates a plain `depth`-stage, `width`-bit pipeline: every
/// stage-to-stage pair is single-cycle (the anti-case for the analysis).
///
/// # Panics
///
/// Panics if `depth == 0` or `width == 0`.
pub fn pipeline(depth: usize, width: usize) -> Netlist {
    assert!(depth > 0 && width > 0, "degenerate pipeline");
    let mut b = NetlistBuilder::new(format!("pipe_d{depth}_w{width}"));
    let mut prev: Vec<NodeId> = (0..width).map(|w| b.input(format!("IN{w}"))).collect();
    for s in 0..depth {
        let mut stage = Vec::with_capacity(width);
        for w in 0..width {
            // A touch of logic between stages so paths are non-trivial.
            let d = if width > 1 {
                b.gate(
                    format!("S{s}_G{w}"),
                    if (s + w) % 2 == 0 {
                        GateKind::Xor
                    } else {
                        GateKind::Nand
                    },
                    [prev[w], prev[(w + 1) % width]],
                )
                .expect("arity")
            } else {
                prev[0]
            };
            let q = b.dff(format!("S{s}_R{w}"));
            b.set_dff_input(q, d).expect("dff");
            stage.push(q);
        }
        prev = stage;
    }
    for &q in &prev {
        b.mark_output(q);
    }
    b.finish().expect("generated pipeline is well-formed")
}

/// Generates the static pre-classification showcase: a live 3-FF core
/// chain plus a tied-off debug block whose `width` capture registers
/// sit behind an `AND` with a constant-zero enable — the netlist shape
/// a disabled scan/debug feature leaves behind after synthesis ties
/// its enable off.
///
/// The dataflow lattice proves every debug D input constant at its
/// first Kleene iterate, so each `(core, debug)` pair is a frozen-sink
/// multi-cycle pair the static pre-pass resolves without simulating a
/// word or invoking an engine. The remaining core pairs are ordinary
/// single-cycle sim fodder. With the pass off the frozen pairs are
/// *undroppable* by simulation (their sinks never transition), so the
/// filter grinds to its idle-words stop and the engines prove each one
/// the expensive way — the A/B contrast the bench table records.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn frozen_sink_demo(width: usize) -> Netlist {
    assert!(width > 0, "degenerate demo");
    let mut b = NetlistBuilder::new(format!("frozen_w{width}"));
    let input = b.input("IN");
    let zero = b.constant("TIE0", false);
    let core: Vec<NodeId> = (0..3).map(|k| b.dff(format!("CORE{k}"))).collect();
    b.set_dff_input(core[0], input).expect("dff");
    for k in 1..3 {
        let g = b
            .gate(format!("MIX{k}"), GateKind::Xor, [core[k - 1], input])
            .expect("arity");
        b.set_dff_input(core[k], g).expect("dff");
    }
    b.mark_output(core[2]);
    for k in 0..width {
        let q = b.dff(format!("DBG{k}"));
        let cap = b
            .gate(format!("CAP{k}"), GateKind::And, [core[k % 3], zero])
            .expect("arity");
        b.set_dff_input(q, cap).expect("dff");
        b.mark_output(q);
    }
    b.finish().expect("demo circuit is well-formed")
}

/// Generates an `n`-bit Fibonacci LFSR (taps at `n-1` and `tap`); all
/// shift pairs are single-cycle.
///
/// # Panics
///
/// Panics if `n < 2` or `tap >= n`.
pub fn lfsr(n: usize, tap: usize) -> Netlist {
    assert!(n >= 2 && tap < n, "degenerate LFSR");
    let mut b = NetlistBuilder::new(format!("lfsr_{n}_{tap}"));
    let regs: Vec<NodeId> = (0..n).map(|k| b.dff(format!("L{k}"))).collect();
    let fb = b
        .gate("FB", GateKind::Xor, [regs[n - 1], regs[tap]])
        .expect("arity");
    b.set_dff_input(regs[0], fb).expect("dff");
    for k in 1..n {
        b.set_dff_input(regs[k], regs[k - 1]).expect("dff");
    }
    b.mark_output(regs[n - 1]);
    b.finish().expect("generated LFSR is well-formed")
}

/// Options for [`composite`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompositeConfig {
    /// PRNG seed (construction is fully deterministic per seed).
    pub seed: u64,
    /// Gated-datapath blocks `(width, counter_bits, load, capture)`.
    pub datapaths: Vec<(usize, usize, u64, u64)>,
    /// Dual-load-window datapath blocks `(width, counter_bits, load1,
    /// load2, capture)`: their multi-cycle proofs need the backtrack
    /// search (OR-of-decodes load enable).
    pub dual_datapaths: Vec<(usize, usize, u64, u64, u64)>,
    /// Plain pipeline blocks `(depth, width)`.
    pub pipelines: Vec<(usize, usize)>,
    /// Number of rarely-enabled transfer chains. Each loads a source
    /// register behind a wide AND over random registers (so random
    /// simulation rarely witnesses a toggle) and drives a sink through
    /// NOT (even chains — implied violations, the paper's
    /// single-by-implication residue) or XOR with another register (odd
    /// chains — violations only the search finds).
    pub rare_chains: usize,
    /// Number of pinned-enable transfer chains: source→sink paths whose
    /// on-path values the implications pin, so the pairs survive even the
    /// co-sensitization hazard check (Table 3's robust population).
    pub pinned_chains: usize,
    /// Number of random glue gates woven between the blocks' registers
    /// and inputs, feeding extra observation registers.
    pub glue_gates: usize,
    /// Number of observation registers fed by glue logic.
    pub glue_regs: usize,
}

/// Composes datapath and pipeline blocks plus random glue logic into one
/// benchmark circuit — the recipe behind the synthetic
/// [`suite`](crate::suite).
///
/// Glue logic reads random block registers and inputs, feeding dedicated
/// observation registers; it creates a realistic population of
/// mostly-single-cycle pairs around the multi-cycle datapath cores.
pub fn composite(name: &str, cfg: &CompositeConfig) -> Netlist {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = NetlistBuilder::new(name);
    let mut all_regs: Vec<NodeId> = Vec::new();

    for (i, &(width, cbits, load, cap)) in cfg.datapaths.iter().enumerate() {
        let (a, bb) = push_gated_datapath(
            &mut b,
            &format!("DP{i}"),
            &DatapathConfig {
                width,
                counter_bits: cbits,
                load_phase: load,
                capture_phase: cap,
            },
        );
        all_regs.extend(a);
        all_regs.extend(bb);
    }
    for (i, &(depth, width)) in cfg.pipelines.iter().enumerate() {
        let mut prev: Vec<NodeId> = (0..width).map(|w| b.input(format!("P{i}_IN{w}"))).collect();
        for s in 0..depth {
            let mut stage = Vec::with_capacity(width);
            for w in 0..width {
                let d = if width > 2 {
                    // 3-wide mixing: realistic next-state fan-in, so pair
                    // counts scale like the ISCAS89 circuits'.
                    b.gate(
                        format!("P{i}_S{s}_G{w}"),
                        GateKind::Xor,
                        [prev[w], prev[(w + 1) % width], prev[(w + 2) % width]],
                    )
                    .expect("arity")
                } else if width > 1 {
                    b.gate(
                        format!("P{i}_S{s}_G{w}"),
                        GateKind::Xor,
                        [prev[w], prev[(w + 1) % width]],
                    )
                    .expect("arity")
                } else {
                    prev[0]
                };
                let q = b.dff(format!("P{i}_S{s}_R{w}"));
                b.set_dff_input(q, d).expect("dff");
                stage.push(q);
            }
            all_regs.extend(stage.iter().copied());
            prev = stage;
        }
        for &q in &prev {
            b.mark_output(q);
        }
    }

    for (i, &(width, cbits, p1, p2, cap)) in cfg.dual_datapaths.iter().enumerate() {
        let (a, bb) =
            push_windowed_datapath(&mut b, &format!("DW{i}"), &[p1, p2], cap, width, cbits);
        all_regs.extend(a);
        all_regs.extend(bb);
    }

    // Rarely-enabled transfer chains (see `CompositeConfig::rare_chains`).
    if cfg.rare_chains > 0 && !all_regs.is_empty() {
        for r in 0..cfg.rare_chains {
            let fanin = 12.min(all_regs.len());
            let mut picks: Vec<NodeId> = Vec::with_capacity(fanin);
            while picks.len() < fanin {
                let cand = all_regs[rng.random_range(0..all_regs.len())];
                if !picks.contains(&cand) {
                    picks.push(cand);
                }
            }
            let en = b
                .gate(format!("RC{r}_EN"), GateKind::And, picks)
                .expect("arity");
            let input = b.input(format!("RC{r}_IN"));
            let src = b.dff(format!("RC{r}_S"));
            let mux = b.mux(&format!("RC{r}_M"), en, src, input).expect("arity");
            b.set_dff_input(src, mux).expect("dff");
            let sink = b.dff(format!("RC{r}_T"));
            let d = if r % 2 == 0 {
                b.gate(format!("RC{r}_N"), GateKind::Not, [src])
                    .expect("arity")
            } else {
                let other = all_regs[rng.random_range(0..all_regs.len())];
                b.gate(format!("RC{r}_X"), GateKind::Xor, [src, other])
                    .expect("arity")
            };
            b.set_dff_input(sink, d).expect("dff");
            b.mark_output(sink);
            all_regs.push(src);
            all_regs.push(sink);
        }
    }

    // Pinned-enable transfer chains (see `CompositeConfig::pinned_chains`).
    // One shared 3-bit counter; each chain: S loads at phase 0, the sink
    // T.D = AND(OR(S, dec_phase1), dec_q) with q = 5. Whenever S toggles
    // the implications pin dec_phase1 = 1 and dec_q = 0 in both frames, so
    // (S, T) is multi-cycle AND every glitch path is provably blocked.
    if cfg.pinned_chains > 0 {
        let counter = push_counter(&mut b, "PN_CTR", 3);
        let load = push_decode(&mut b, "PN_LD", &counter, 0);
        let after = push_decode(&mut b, "PN_AF", &counter, 1);
        let capt = push_decode(&mut b, "PN_CP", &counter, 5);
        all_regs.extend(counter.iter().copied());
        for r in 0..cfg.pinned_chains {
            let input = b.input(format!("PN{r}_IN"));
            let src = b.dff(format!("PN{r}_S"));
            let mux = b.mux(&format!("PN{r}_M"), load, src, input).expect("arity");
            b.set_dff_input(src, mux).expect("dff");
            let h = b
                .gate(format!("PN{r}_H"), GateKind::Or, [src, after])
                .expect("arity");
            let d = b
                .gate(format!("PN{r}_D"), GateKind::And, [h, capt])
                .expect("arity");
            let sink = b.dff(format!("PN{r}_T"));
            b.set_dff_input(sink, d).expect("dff");
            b.mark_output(sink);
            all_regs.push(src);
            all_regs.push(sink);
        }
    }

    // Random glue: a DAG of gates over the block registers.
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ];
    let mut pool: Vec<NodeId> = all_regs.clone();
    let mut glue: Vec<NodeId> = Vec::with_capacity(cfg.glue_gates);
    let mut read: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for g in 0..cfg.glue_gates {
        if pool.is_empty() {
            break;
        }
        let kind = kinds[rng.random_range(0..kinds.len())];
        let arity = kind.fixed_arity().unwrap_or(2);
        let ins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        read.extend(ins.iter().copied());
        let node = b
            .gate(format!("GL{g}"), kind, ins)
            .expect("glue gate arity");
        pool.push(node);
        glue.push(node);
    }
    for r in 0..cfg.glue_regs {
        if pool.is_empty() {
            break;
        }
        let d = pool[rng.random_range(0..pool.len())];
        read.insert(d);
        let q = b.dff(format!("GR{r}"));
        b.set_dff_input(q, d).expect("dff");
        b.mark_output(q);
    }
    // Glue gates the random picks never sampled would float; expose them
    // as observation outputs so every generated circuit is lint-clean.
    for g in glue {
        if !read.contains(&g) {
            b.mark_output(g);
        }
    }

    b.finish().expect("generated composite is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_sim::ParallelSim;

    #[test]
    fn counter_has_full_period() {
        let mut b = NetlistBuilder::new("c");
        let bits = push_counter(&mut b, "C", 3);
        for &bit in &bits {
            b.mark_output(bit);
        }
        let nl = b.finish().unwrap();
        let mut sim = ParallelSim::new(&nl);
        for k in 0..3 {
            sim.set_state(k, 0);
        }
        let mut seen = Vec::new();
        for _ in 0..8 {
            let v = (0..3).fold(0u64, |acc, k| acc | (sim.state(k) & 1) << k);
            seen.push(v);
            sim.eval();
            sim.clock();
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let v = (0..3).fold(0u64, |acc, k| acc | (sim.state(k) & 1) << k);
        assert_eq!(v, 0, "wraps around");
    }

    #[test]
    fn gated_datapath_moves_data_in_k_cycles() {
        // load at phase 0, capture at phase 3 => 3-cycle transfer.
        let cfg = DatapathConfig::default();
        let nl = gated_datapath(&cfg);
        let mut sim = ParallelSim::new(&nl);
        for ff in 0..nl.num_ffs() {
            sim.set_state(ff, 0);
        }
        // Feed a distinctive pattern on the inputs of bit 0 and 1.
        sim.set_input(0, u64::MAX);
        let b0 = nl.ff_index(nl.find_node("D0_B0").unwrap()).unwrap();
        let mut captured = Vec::new();
        for _ in 0..6 {
            sim.eval();
            sim.clock();
            captured.push(sim.state(b0) & 1);
        }
        // A loads at edge 1 (counter 0), counter hits capture phase 3 at
        // edge 4: B captures MIX(A0=1, A1=0) = 1 at edge 4.
        assert_eq!(captured, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn pipeline_is_dense_in_pairs() {
        let nl = pipeline(3, 2);
        assert_eq!(nl.num_ffs(), 6);
        // stage s bit w feeds both bits of stage s+1.
        let pairs = nl.connected_ff_pairs();
        assert_eq!(pairs.len(), 2 * 2 * 2); // 2 stage boundaries × 2×2
    }

    #[test]
    fn lfsr_shifts() {
        let nl = lfsr(4, 1);
        let mut sim = ParallelSim::new(&nl);
        sim.set_state(0, 1);
        for k in 1..4 {
            sim.set_state(k, 0);
        }
        sim.eval();
        sim.clock();
        assert_eq!(sim.state(1) & 1, 1, "bit shifted");
    }

    #[test]
    fn composite_is_deterministic_per_seed() {
        let cfg = CompositeConfig {
            seed: 42,
            datapaths: vec![(2, 2, 0, 3)],
            pipelines: vec![(2, 2)],
            glue_gates: 10,
            glue_regs: 2,
            ..CompositeConfig::default()
        };
        let a = composite("x", &cfg);
        let c = composite("x", &cfg);
        assert_eq!(a.stats(), c.stats());
        assert_eq!(a.connected_ff_pairs(), c.connected_ff_pairs());
        let different = composite("x", &CompositeConfig { seed: 43, ..cfg });
        // Glue differs with the seed (stats may coincide, pairs rarely do).
        assert!(
            different.connected_ff_pairs() != a.connected_ff_pairs()
                || different.stats() != a.stats()
        );
    }

    #[test]
    fn generators_validate_inputs() {
        let r = std::panic::catch_unwind(|| pipeline(0, 4));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| lfsr(1, 0));
        assert!(r.is_err());
    }
}
