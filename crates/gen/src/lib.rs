//! Workload substrate: paper circuits, parametric generators, the
//! synthetic benchmark suite, and a brute-force oracle.
//!
//! The paper evaluates on the ISCAS89 suite. Those netlists are not
//! redistributable inside this repository, so this crate provides (a) exact
//! reconstructions of the paper's illustrative circuits (Fig.1/Fig.3/Fig.4)
//! as golden references, (b) parametric **generators** for the structures
//! that make paths multi-cycle in real designs — counters decoding enable
//! windows, hold multiplexers, gated datapaths — and (c) a deterministic
//! [`suite`] of ISCAS89-*scale* circuits composed from those generators
//! plus random glue logic, on which the paper's tables are regenerated.
//! Real `.bench` files can be analyzed directly through
//! [`mcp_netlist::bench::parse`].
//!
//! The [`oracle`] module provides exhaustive-simulation ground truth for
//! small circuits, used to validate every analysis engine.
//!
//! # Example
//!
//! ```
//! use mcp_gen::circuits;
//!
//! // The paper's Fig.1: 9 structurally connected FF pairs.
//! let fig1 = circuits::fig1();
//! assert_eq!(fig1.connected_ff_pairs().len(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuits;
pub mod generators;
pub mod oracle;
pub mod random;
pub mod suite;
