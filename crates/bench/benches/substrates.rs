//! Criterion microbenches for the substrates: expansion, implication,
//! search, SAT encoding, hazard checking — the building blocks whose costs
//! explain the table-level numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use mcp_atpg::{search, SearchConfig};
use mcp_core::{analyze, check_hazards, HazardCheck, McConfig};
use mcp_gen::suite;
use mcp_implication::ImpEngine;
use mcp_netlist::Expanded;
use mcp_sat::CircuitCnf;
use std::hint::black_box;

fn bench_expansion(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m13207")
        .expect("suite circuit");
    c.bench_function("expand_2frames_m13207", |b| {
        b.iter(|| black_box(Expanded::build(nl, 2)));
    });
}

fn bench_implication_procedure(c: &mut Criterion) {
    // One full per-pair classification worth of implication work: the
    // inner loop of Table 1's "ours" column.
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m5378")
        .expect("suite circuit");
    let x = Expanded::build(nl, 2);
    let pairs = nl.connected_ff_pairs();
    let probe: Vec<_> = pairs.iter().step_by(pairs.len() / 16 + 1).collect();
    c.bench_function("implication_16pairs_m5378", |b| {
        b.iter(|| {
            let mut eng = ImpEngine::new(&x);
            for &&(i, _j) in &probe {
                for (a, v) in [(false, true), (true, false)] {
                    let cp = eng.checkpoint();
                    let _ = eng
                        .assign(x.ff_at(i, 0), a)
                        .and_then(|()| eng.assign(x.ff_at(i, 1), v))
                        .and_then(|()| eng.propagate());
                    eng.backtrack(cp);
                }
            }
            black_box(eng.examinations())
        });
    });
}

fn bench_atpg_search(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m1238")
        .expect("suite circuit");
    let x = Expanded::build(nl, 2);
    c.bench_function("atpg_justify_m1238", |b| {
        b.iter(|| {
            let mut eng = ImpEngine::new(&x);
            // Justify a source transition — a representative search load.
            let _ = eng
                .assign(x.ff_at(0, 0), false)
                .and_then(|()| eng.assign(x.ff_at(0, 1), true))
                .and_then(|()| eng.propagate());
            let (out, stats) = search(&mut eng, &SearchConfig::default());
            black_box((out.is_sat(), stats.decisions))
        });
    });
}

fn bench_cnf_encoding(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m13207")
        .expect("suite circuit");
    let x = Expanded::build(nl, 2);
    c.bench_function("tseitin_encode_m13207", |b| {
        b.iter(|| black_box(CircuitCnf::new(&x)));
    });
}

fn bench_hazard_checks(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m1423")
        .expect("suite circuit");
    let report = analyze(nl, &McConfig::default()).expect("analyze");
    let mut group = c.benchmark_group("table3_hazard_m1423");
    group.sample_size(10);
    group.bench_function("sensitization", |b| {
        b.iter(|| black_box(check_hazards(nl, &report, HazardCheck::Sensitization)));
    });
    group.bench_function("co_sensitization", |b| {
        b.iter(|| black_box(check_hazards(nl, &report, HazardCheck::CoSensitization)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_expansion,
    bench_implication_procedure,
    bench_atpg_search,
    bench_cnf_encoding,
    bench_hazard_checks
);
criterion_main!(benches);
