//! Criterion benches for the three decision engines — the measured side of
//! Table 1 (who wins, by what factor) on fixed mid-size suite circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcp_core::{analyze, Engine, McConfig};
use mcp_gen::suite;
use std::hint::black_box;

/// Full-pipeline analysis per engine on graded circuits (Table 1's CPU
/// columns).
fn bench_engines(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let mut group = c.benchmark_group("table1_engines");
    group.sample_size(10);

    for name in ["m526", "m1238", "m5378"] {
        let nl = suite
            .iter()
            .find(|n| n.name() == name)
            .expect("suite circuit");
        group.bench_with_input(BenchmarkId::new("implication", name), nl, |b, nl| {
            b.iter(|| black_box(analyze(nl, &McConfig::default()).expect("analyze")));
        });
        group.bench_with_input(BenchmarkId::new("sat", name), nl, |b, nl| {
            let cfg = McConfig {
                engine: Engine::Sat,
                ..McConfig::default()
            };
            b.iter(|| black_box(analyze(nl, &cfg).expect("analyze")));
        });
        if nl.stats().ffs <= 40 {
            group.bench_with_input(BenchmarkId::new("bdd", name), nl, |b, nl| {
                let cfg = McConfig {
                    engine: Engine::Bdd {
                        node_limit: 1 << 22,
                        reachability: false,
                    },
                    ..McConfig::default()
                };
                b.iter(|| black_box(analyze(nl, &cfg).expect("analyze")));
            });
        }
    }
    group.finish();
}

/// The prefilter in isolation: how cheap is the simulation step that kills
/// most single-cycle pairs (Table 2's Sim column).
fn bench_sim_filter(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m9234")
        .expect("suite circuit");
    let pairs = nl.connected_ff_pairs();
    c.bench_function("table2_sim_filter_m9234", |b| {
        b.iter(|| {
            black_box(mcp_sim::mc_filter(
                nl,
                &pairs,
                &mcp_sim::FilterConfig::default(),
            ))
        });
    });
}

/// Ablation: the engine without the simulation prefilter (everything falls
/// to implication/ATPG) — quantifies the paper's step-2 design choice.
fn bench_no_prefilter_ablation(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m1238")
        .expect("suite circuit");
    let mut group = c.benchmark_group("ablation_prefilter");
    group.sample_size(10);
    group.bench_function("with_sim_filter", |b| {
        b.iter(|| black_box(analyze(nl, &McConfig::default()).expect("analyze")));
    });
    group.bench_function("without_sim_filter", |b| {
        let cfg = McConfig {
            use_sim_filter: false,
            ..McConfig::default()
        };
        b.iter(|| black_box(analyze(nl, &cfg).expect("analyze")));
    });
    group.finish();
}

/// Ablation: static learning on vs off (the paper enables it only for its
/// hardest circuits — it costs preparation time and pays off in fewer
/// aborted searches).
fn bench_learning_ablation(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m820")
        .expect("suite circuit");
    let mut group = c.benchmark_group("ablation_learning");
    group.sample_size(10);
    group.bench_function("plain", |b| {
        b.iter(|| black_box(analyze(nl, &McConfig::default()).expect("analyze")));
    });
    group.bench_function("static_learning", |b| {
        let cfg = McConfig {
            static_learning: true,
            ..McConfig::default()
        };
        b.iter(|| black_box(analyze(nl, &cfg).expect("analyze")));
    });
    group.finish();
}

/// Parallel pair-loop scaling: the pairs are independent, so the loop
/// parallelizes; this measures the payoff on a mid-size circuit.
fn bench_thread_scaling(c: &mut Criterion) {
    let suite = suite::standard_suite();
    let nl = suite
        .iter()
        .find(|n| n.name() == "m13207")
        .expect("suite circuit");
    let mut group = c.benchmark_group("thread_scaling_m13207");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let cfg = McConfig {
                threads: t,
                ..McConfig::default()
            };
            b.iter(|| black_box(analyze(nl, &cfg).expect("analyze")));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_sim_filter,
    bench_no_prefilter_ablation,
    bench_learning_ablation,
    bench_thread_scaling
);
criterion_main!(benches);
