//! Quantifies the paper's Section 3.1 remark: *"Note that while \[8\] takes
//! into account reachable states, \[9\] and our method assume that all the
//! states can be reachable. \[8\] may detect more multi-cycle paths than \[9\]
//! and ours."*
//!
//! For the circuits small enough for the symbolic engine, this harness
//! compares the multi-cycle pair count under the all-states assumption
//! (what the implication and SAT engines prove) against the count
//! restricted to states reachable from the all-zero reset — the extra
//! pairs are those whose violating scenarios are unreachable.

use mcp_bench::HarnessArgs;
use mcp_core::{analyze, Engine, McConfig};
use mcp_netlist::Netlist;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    circuit: String,
    ffs: usize,
    ff_pairs: usize,
    mc_all_states: usize,
    mc_reachable: usize,
    gained: usize,
}

fn bdd_config(reachability: bool) -> McConfig {
    McConfig {
        engine: Engine::Bdd {
            node_limit: 1 << 22,
            reachability,
        },
        // The random-sim prefilter assumes all states reachable, so it
        // must be off for the reachability-restricted run; keep both runs
        // symmetric.
        use_sim_filter: false,
        ..McConfig::default()
    }
}

fn main() {
    let args = HarnessArgs::parse();

    // Small suite circuits plus controller-style machines where
    // reachability famously matters (one-hot rings, gated counters).
    let mut circuits: Vec<Netlist> = mcp_gen::suite::quick_suite().into_iter().take(4).collect();
    circuits.push(
        mcp_netlist::bench::parse(
            "ring4",
            "OUTPUT(R0)\nR0 = DFF(R3)\nR1 = DFF(R0)\nR2 = DFF(R1)\nR3 = DFF(R2)",
        )
        .expect("ring parses"),
    );
    circuits.push(mcp_gen::circuits::fig1());

    println!("Reachability-restricted symbolic analysis ([8]) vs all-states");
    println!("{:-<74}", "");
    println!(
        "{:>8} {:>5} {:>8} {:>14} {:>13} {:>8}",
        "circuit", "FF", "FF-pair", "MC(all states)", "MC(reachable)", "gained"
    );
    println!("{:-<74}", "");

    let mut rows = Vec::new();
    for nl in &circuits {
        let s = nl.stats();
        let all = analyze(nl, &bdd_config(false)).expect("analysis succeeds");
        let reach = analyze(nl, &bdd_config(true)).expect("analysis succeeds");
        if all.stats.unknown > 0 || reach.stats.unknown > 0 {
            println!("{:>8}  (BDD budget exceeded — skipped)", nl.name());
            continue;
        }
        // Soundness direction: restriction can only add multi-cycle pairs.
        for pair in all.multi_cycle_pairs() {
            assert!(
                reach.multi_cycle_pairs().contains(&pair),
                "{}: {pair:?} lost under restriction",
                nl.name()
            );
        }
        let gained = reach.stats.multi_total() - all.stats.multi_total();
        println!(
            "{:>8} {:>5} {:>8} {:>14} {:>13} {:>8}",
            nl.name(),
            s.ffs,
            all.pairs.len(),
            all.stats.multi_total(),
            reach.stats.multi_total(),
            gained,
        );
        rows.push(Row {
            circuit: nl.name().to_owned(),
            ffs: s.ffs,
            ff_pairs: all.pairs.len(),
            mc_all_states: all.stats.multi_total(),
            mc_reachable: reach.stats.multi_total(),
            gained,
        });
    }
    println!("{:-<74}", "");
    println!(
        "reachability restriction detects ⊇ pairs, at symbolic-traversal cost —\n\
         the trade the paper describes for [8]."
    );
    args.dump_json(&rows);
}
