//! Regenerates the paper's **Table 2**: the number of FF pairs identified
//! in each analysis step (random simulation / implication / ATPG) and the
//! CPU time attributable to each step, aggregated over the suite.
//!
//! The paper's headline numbers — 86% of single-cycle pairs fall to
//! simulation, and more than 80% of multi-cycle pairs fall to the
//! implication procedure — are the structural reason the method beats the
//! SAT baseline; this harness reports the same percentages on the
//! synthetic suite.

use mcp_bench::{bench_artifact, secs, HarnessArgs};
use mcp_core::analyze_with;
use mcp_obs::{Counters, ObsCtx};
use serde::Serialize;
use std::time::Duration;

#[derive(Debug, Serialize)]
struct Table2 {
    single_by_sim: usize,
    single_by_implication: usize,
    single_by_atpg: usize,
    multi_by_implication: usize,
    multi_by_atpg: usize,
    unknown: usize,
    cpu_sim: f64,
    cpu_prepare: f64,
    cpu_pairs: f64,
    counters: Counters,
    lint_warnings: usize,
}

fn main() {
    let args = HarnessArgs::parse();
    let suite = args.suite();

    let mut agg = Table2 {
        single_by_sim: 0,
        single_by_implication: 0,
        single_by_atpg: 0,
        multi_by_implication: 0,
        multi_by_atpg: 0,
        unknown: 0,
        cpu_sim: 0.0,
        cpu_prepare: 0.0,
        cpu_pairs: 0.0,
        counters: Counters::default(),
        lint_warnings: 0,
    };
    let mut t_sim = Duration::ZERO;
    let mut t_prepare = Duration::ZERO;
    let mut t_pairs = Duration::ZERO;
    // One observability context across the suite: the engine counters
    // accumulate into suite-wide totals.
    let obs = ObsCtx::new();

    for nl in &suite {
        agg.lint_warnings += args.lint_warnings(nl);
        let r = analyze_with(nl, &args.mc_config(), &obs).expect("analysis succeeds");
        agg.single_by_sim += r.stats.single_by_sim;
        agg.single_by_implication += r.stats.single_by_implication;
        agg.single_by_atpg += r.stats.single_by_atpg;
        agg.multi_by_implication += r.stats.multi_by_implication;
        agg.multi_by_atpg += r.stats.multi_by_atpg;
        agg.unknown += r.stats.unknown;
        t_sim += r.stats.time_sim;
        t_prepare += r.stats.time_prepare;
        t_pairs += r.stats.time_pairs;
    }
    agg.cpu_sim = t_sim.as_secs_f64();
    agg.cpu_prepare = t_prepare.as_secs_f64();
    agg.cpu_pairs = t_pairs.as_secs_f64();
    agg.counters = obs.metrics.counters();

    let single_total = (agg.single_by_sim + agg.single_by_implication + agg.single_by_atpg).max(1);
    let multi_total = (agg.multi_by_implication + agg.multi_by_atpg).max(1);
    let pct = |n: usize, d: usize| 100.0 * n as f64 / d as f64;

    println!("Table 2: FF pairs identified and CPU time per analysis step");
    println!("{:-<76}", "");
    println!(
        "{:>14} {:>18} {:>18} {:>18}",
        "", "Sim.", "Implication", "ATPG"
    );
    println!("{:-<76}", "");
    println!(
        "{:>14} {:>10} ({:>4.1}%) {:>10} ({:>4.1}%) {:>10} ({:>4.1}%)",
        "single cycle",
        agg.single_by_sim,
        pct(agg.single_by_sim, single_total),
        agg.single_by_implication,
        pct(agg.single_by_implication, single_total),
        agg.single_by_atpg,
        pct(agg.single_by_atpg, single_total),
    );
    println!(
        "{:>14} {:>10} ({:>4.1}%) {:>10} ({:>4.1}%) {:>10} ({:>4.1}%)",
        "multi cycle",
        0,
        0.0,
        agg.multi_by_implication,
        pct(agg.multi_by_implication, multi_total),
        agg.multi_by_atpg,
        pct(agg.multi_by_atpg, multi_total),
    );
    println!(
        "{:>14} {:>18} {:>18} {:>18}",
        "CPU(sec)",
        secs(t_sim),
        secs(t_prepare),
        secs(t_pairs),
    );
    println!("{:-<76}", "");
    if agg.unknown > 0 {
        println!("unresolved (aborted) pairs: {}", agg.unknown);
    }
    println!(
        "\nShape check vs paper: sim resolves {:.0}% of single-cycle pairs (paper: 86%),",
        pct(agg.single_by_sim, single_total)
    );
    println!(
        "implication resolves {:.0}% of multi-cycle pairs (paper: >80%).",
        pct(agg.multi_by_implication, multi_total)
    );
    println!(
        "\nengine counters: {} implications, {} contradictions, {} decisions, \
         {} backtracks, {} aborts, {} sim words",
        agg.counters.implications,
        agg.counters.contradictions,
        agg.counters.atpg_decisions,
        agg.counters.atpg_backtracks,
        agg.counters.atpg_aborts,
        agg.counters.sim_words,
    );

    let artifact = bench_artifact("table2", &agg);
    args.drift_gate(artifact.as_deref());
    args.dump_json(&agg);
}
