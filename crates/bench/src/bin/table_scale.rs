//! Thread-scaling curve of the work-stealing pair scheduler.
//!
//! Sweeps the worker count over the quick suite (plus m5378 on full
//! runs) and reports wall-clock per circuit and thread count, the
//! speedup over the single-threaded run, and — the part that makes the
//! numbers trustworthy — a drift check: every thread count must produce
//! the *same* multi-cycle pair set, and on circuits small enough for
//! exhaustive enumeration that set must equal the brute-force oracle's.
//!
//! The run deliberately disables the random-simulation prefilter and
//! raises the backtrack limit: the point is to load the parallel pair
//! loop, not to reproduce the paper's (sim-filtered, single-threaded)
//! headline numbers.

use mcp_bench::{bench_artifact, secs, HarnessArgs};
use mcp_core::{analyze, Engine, McConfig, Scheduler};
use serde::Serialize;
use std::time::Instant;

/// Thread counts swept per circuit.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Oracle cross-check budget: state + 2x input bits (64 lanes at a time,
/// so 2^22 assignments stay well under a second).
const ORACLE_BITS: usize = 22;

#[derive(Debug, Serialize)]
struct Row {
    circuit: String,
    ffs: usize,
    candidate_pairs: usize,
    mc_pairs: usize,
    threads: usize,
    wall_s: f64,
    pairs_busy_s: f64,
    speedup: f64,
    oracle_checked: bool,
}

// The artifact envelope (see `bench_artifact`) pairs the curve with the
// machine's core count: a wall-clock speedup is bounded by available
// cores, so a flat curve from a single-core container must not be
// misread as a scheduler defect.

fn main() {
    let args = HarnessArgs::parse();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut suite = mcp_gen::suite::quick_suite();
    if !args.quick {
        // m5378 is the smallest circuit where the residue pairs are
        // expensive enough for stealing to matter at 8 workers.
        suite.push(mcp_gen::suite::standard_suite().remove(6));
    }

    println!("Thread scaling of the work-stealing pair scheduler ({cores} core(s))");
    println!("{:-<72}", "");
    println!(
        "{:>8} {:>5} {:>8} {:>8} | {:>3} {:>9} {:>9} {:>8}",
        "circuit", "FF", "pairs", "MC", "thr", "wall(s)", "busy(s)", "speedup"
    );
    println!("{:-<72}", "");

    let mut rows = Vec::new();
    for nl in &suite {
        let s = nl.stats();
        let cfg_for = |threads: usize| McConfig {
            engine: Engine::Implication,
            threads,
            scheduler: Scheduler::WorkSteal,
            use_sim_filter: false,
            backtrack_limit: 1024,
            ..args.mc_config()
        };

        // The oracle cross-check anchors the drift check to ground truth
        // where exhaustive enumeration is feasible.
        let bits = s.ffs + 2 * s.inputs;
        let oracle_multi = (bits <= ORACLE_BITS).then(|| {
            let (mut m, _) = mcp_gen::oracle::exhaustive_mc_pairs(nl);
            m.sort_unstable();
            m
        });

        let mut baseline: Option<(Vec<(usize, usize)>, f64)> = None;
        for threads in THREADS {
            let t = Instant::now();
            let report = analyze(nl, &cfg_for(threads)).expect("analysis succeeds");
            let wall = t.elapsed().as_secs_f64();
            let multi = report.multi_cycle_pairs();
            match &baseline {
                None => baseline = Some((multi.clone(), wall)),
                Some((expected, _)) => assert_eq!(
                    &multi,
                    expected,
                    "{}: verdicts drifted at {threads} threads",
                    nl.name()
                ),
            }
            if let Some(oracle) = &oracle_multi {
                assert_eq!(
                    &multi,
                    oracle,
                    "{}: verdicts disagree with the exhaustive oracle",
                    nl.name()
                );
            }
            let (_, wall_1) = baseline.as_ref().expect("set above");
            let speedup = wall_1 / wall.max(1e-9);
            println!(
                "{:>8} {:>5} {:>8} {:>8} | {:>3} {:>9} {:>9} {:>7.2}x",
                nl.name(),
                s.ffs,
                report.stats.candidates,
                report.stats.multi_total(),
                threads,
                secs(t.elapsed()),
                secs(report.stats.time_pairs),
                speedup
            );
            rows.push(Row {
                circuit: nl.name().to_owned(),
                ffs: s.ffs,
                candidate_pairs: report.stats.candidates,
                mc_pairs: report.stats.multi_total(),
                threads,
                wall_s: wall,
                pairs_busy_s: report.stats.time_pairs.as_secs_f64(),
                speedup,
                oracle_checked: oracle_multi.is_some(),
            });
        }
        println!("{:-<72}", "");
    }

    // Aggregate speedup: total single-threaded wall over total wall per
    // thread count (weighs big circuits more, like a real batch run).
    let total = |thr: usize| -> f64 {
        rows.iter()
            .filter(|r| r.threads == thr)
            .map(|r| r.wall_s)
            .sum()
    };
    let wall_1 = total(1);
    for threads in THREADS {
        println!(
            "total at {threads} thread(s): {:.3}s  ({:.2}x)",
            total(threads),
            wall_1 / total(threads).max(1e-9)
        );
    }
    if cores == 1 {
        println!("note: single-core machine — wall-clock speedup is bounded at 1.0x");
    }

    let artifact = bench_artifact("scale", &rows);
    args.dump_json(&rows);
    args.drift_gate(artifact.as_deref());
}
