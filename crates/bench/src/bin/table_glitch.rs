//! Empirical validation of the static hazard checks (an extension beyond
//! the paper's evaluation): for every detected multi-cycle pair, sample
//! random scenarios and random gate-delay assignments in the
//! transport-delay simulator and observe whether the sink's D input
//! **dynamically glitches** across the clock edge.
//!
//! The theory predicts a strict ordering:
//!
//! * pairs kept by the **co-sensitization** check are robust under *any*
//!   delay assignment — observing a glitch on one would falsify the
//!   implementation (the harness exits non-zero);
//! * pairs demoted by the **sensitization** check have a demonstrably
//!   sensitizable glitch path — they should glitch readily under sampling;
//! * pairs in between (kept by sensitization, demoted by co-sensitization)
//!   may or may not glitch: sensitization is optimistic, co-sensitization
//!   conservative. The observed rate measures how loose each bound is on
//!   this workload.

use mcp_bench::HarnessArgs;
use mcp_core::{analyze, check_hazards, HazardCheck, McConfig};
use mcp_netlist::Netlist;
use mcp_sim::{DelaySim, ParallelSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const TRIALS_PER_PAIR: usize = 24;
const SAMPLE_WORDS: usize = 64;

#[derive(Debug, Serialize)]
struct GroupRow {
    group: &'static str,
    pairs: usize,
    pairs_with_observed_glitch: usize,
}

/// Samples scenarios for pair `(i, j)`: random pre-edge states/inputs
/// where the source toggles across the edge; returns whether any sampled
/// delay assignment glitches the sink's D input.
fn observe_glitch(nl: &Netlist, i: usize, j: usize, rng: &mut StdRng) -> bool {
    let dst = nl.ff_d_input(j);
    let mut psim = ParallelSim::new(nl);
    let mut trials = 0usize;

    for _ in 0..SAMPLE_WORDS {
        if trials >= TRIALS_PER_PAIR {
            break;
        }
        psim.randomize_state(rng);
        psim.randomize_inputs(rng);
        let s0: Vec<u64> = (0..nl.num_ffs()).map(|k| psim.state(k)).collect();
        psim.eval();
        let in0: Vec<u64> = nl.inputs().iter().map(|&pi| psim.value(pi)).collect();
        let s1: Vec<u64> = (0..nl.num_ffs()).map(|k| psim.next_state(k)).collect();

        // Pick lanes where the source FF toggles at the edge.
        let toggles = s0[i] ^ s1[i];
        if toggles == 0 {
            continue;
        }
        for lane in 0..64 {
            if trials >= TRIALS_PER_PAIR {
                break;
            }
            if toggles >> lane & 1 == 0 {
                continue;
            }
            trials += 1;
            let bit = |w: u64| w >> lane & 1 == 1;
            let pis0: Vec<bool> = in0.iter().map(|&w| bit(w)).collect();
            let ffs0: Vec<bool> = s0.iter().map(|&w| bit(w)).collect();
            let ffs1: Vec<bool> = s1.iter().map(|&w| bit(w)).collect();
            // Post-edge inputs: fresh random values (they switch with the
            // edge, like the other FFs' outputs).
            let pis1: Vec<bool> = (0..nl.num_inputs()).map(|_| rng.random()).collect();

            let mut dsim = DelaySim::new(nl);
            for &g in nl.topo_gates() {
                dsim.set_delay(g, rng.random_range(1..16));
            }
            dsim.init(&pis0, &ffs0);
            let report = dsim.edge(&pis1, &ffs1);
            if report.glitched(dst) {
                return true;
            }
        }
    }
    false
}

fn main() {
    let args = HarnessArgs::parse();
    // Fixed-seed sampling; the quick suite keeps the run short.
    let suite = if args.quick {
        mcp_gen::suite::quick_suite()
    } else {
        let mut s = mcp_gen::suite::quick_suite();
        s.push(mcp_gen::generators::composite(
            "m5378",
            &mcp_gen::generators::CompositeConfig {
                seed: 5378,
                datapaths: vec![(16, 3, 0, 6), (8, 4, 0, 9), (8, 2, 1, 2)],
                pipelines: vec![(8, 8), (4, 6)],
                glue_gates: 400,
                glue_regs: 20,
                ..Default::default()
            },
        ));
        s
    };

    let mut demoted_sens = (0usize, 0usize); // (pairs, glitched)
    let mut between = (0usize, 0usize);
    let mut robust = (0usize, 0usize);
    let mut violation = false;

    for nl in &suite {
        let report = analyze(nl, &McConfig::default()).expect("analysis succeeds");
        let sens = check_hazards(nl, &report, HazardCheck::Sensitization);
        let cosens = check_hazards(nl, &report, HazardCheck::CoSensitization);
        let mut rng = StdRng::seed_from_u64(0x611c_4a5e);
        for (i, j) in report.multi_cycle_pairs() {
            let glitched = observe_glitch(nl, i, j, &mut rng);
            let group = if sens.demoted.contains(&(i, j)) {
                &mut demoted_sens
            } else if cosens.demoted.contains(&(i, j)) {
                &mut between
            } else {
                &mut robust
            };
            group.0 += 1;
            group.1 += usize::from(glitched);
            if glitched && cosens.robust.contains(&(i, j)) {
                eprintln!(
                    "VIOLATION: co-sensitization-robust pair ({i},{j}) in {} glitched",
                    nl.name()
                );
                violation = true;
            }
        }
    }

    println!("Dynamic glitch sampling vs static hazard verdicts");
    println!(
        "({} trials/pair, random transport delays 1..16)",
        TRIALS_PER_PAIR
    );
    println!("{:-<64}", "");
    println!("{:>34} {:>8} {:>12}", "group", "pairs", "glitched");
    println!("{:-<64}", "");
    let rows = [
        ("demoted by sensitization", demoted_sens),
        ("kept by sens, demoted by co-sens", between),
        ("robust under co-sensitization", robust),
    ];
    let mut json_rows = Vec::new();
    for (name, (pairs, glitched)) in rows {
        println!("{name:>34} {pairs:>8} {glitched:>12}");
        json_rows.push(GroupRow {
            group: name,
            pairs,
            pairs_with_observed_glitch: glitched,
        });
    }
    println!("{:-<64}", "");
    println!(
        "upper-bound check: {} (co-sensitization survivors must never glitch)",
        if violation { "FAILED" } else { "HOLDS" }
    );
    args.dump_json(&json_rows);
    if violation {
        std::process::exit(1);
    }
}
