//! Regenerates the paper's **Table 3**: the number of multi-cycle FF pairs
//! before static-hazard checking and after validation by the static
//! sensitization and static co-sensitization criteria, with the CPU time
//! of each check.
//!
//! The paper's qualitative finding: a noticeable fraction of MC-condition
//! pairs may carry hazards (co-sensitization keeps the fewest pairs, being
//! the safe upper-bound criterion; sensitization keeps more but its
//! survivors may depend on one another).

use mcp_bench::{bench_artifact, secs, HarnessArgs};
use mcp_core::{analyze, check_hazards, HazardCheck};
use serde::Serialize;
use std::time::Duration;

#[derive(Debug, Serialize)]
struct Table3 {
    mc_before: usize,
    mc_after_sensitize: usize,
    cpu_sensitize: f64,
    mc_after_cosensitize: usize,
    cpu_cosensitize: f64,
    lint_warnings: usize,
}

fn main() {
    let args = HarnessArgs::parse();
    let suite = args.suite();

    let mut before = 0usize;
    let mut after_sens = 0usize;
    let mut after_cosens = 0usize;
    let mut t_sens = Duration::ZERO;
    let mut t_cosens = Duration::ZERO;
    let mut lint_warnings = 0usize;

    for nl in &suite {
        lint_warnings += args.lint_warnings(nl);
        let report = analyze(nl, &args.mc_config()).expect("analysis succeeds");
        before += report.stats.multi_total();

        let sens = check_hazards(nl, &report, HazardCheck::Sensitization);
        after_sens += sens.robust.len();
        t_sens += sens.elapsed;

        let cosens = check_hazards(nl, &report, HazardCheck::CoSensitization);
        after_cosens += cosens.robust.len();
        t_cosens += cosens.elapsed;

        // Invariant from the theory: every sensitization-demoted pair is
        // also co-sensitization-demoted.
        assert!(
            after_cosens <= after_sens,
            "{}: co-sensitization must be at least as strict",
            nl.name()
        );
    }

    println!("Table 3: static hazard checking of detected multi-cycle pairs");
    println!("{:-<52}", "");
    println!("{:>14} {:>10} {:>12}", "", "MC-pair", "CPU(sec)");
    println!("{:-<52}", "");
    println!("{:>14} {:>10} {:>12}", "before", before, "-");
    println!(
        "{:>14} {:>10} {:>12}",
        "sensitize",
        after_sens,
        secs(t_sens)
    );
    println!(
        "{:>14} {:>10} {:>12}",
        "co-sensitize",
        after_cosens,
        secs(t_cosens)
    );
    println!("{:-<52}", "");
    println!(
        "\nsensitization keeps {:.0}% of MC pairs; co-sensitization keeps {:.0}%",
        100.0 * after_sens as f64 / before.max(1) as f64,
        100.0 * after_cosens as f64 / before.max(1) as f64,
    );
    println!("(paper, ISCAS89 totals: 9,065 -> 8,063 -> 5,712)");

    let rows = Table3 {
        mc_before: before,
        mc_after_sensitize: after_sens,
        cpu_sensitize: t_sens.as_secs_f64(),
        mc_after_cosensitize: after_cosens,
        cpu_cosensitize: t_cosens.as_secs_f64(),
        lint_warnings,
    };
    let artifact = bench_artifact("table3", &rows);
    args.drift_gate(artifact.as_deref());
    args.dump_json(&rows);
}
