//! Regenerates the paper's Section 4.1 **k-cycle extension** experiment:
//! "this algorithm ... can be easily extended to detect k-cycle FF pairs
//! (k = 3, 4, ...) by increasing the number of time frames".
//!
//! For counter-gated datapaths with known transfer latency `L` (load phase
//! to capture phase), the source→sink pairs must be classified k-cycle for
//! every `k ≤ L` and single-cycle-at-k for `k > L` — a sharp, fully
//! predictable staircase that validates the multi-frame expansion, plus
//! timing to show the cost of extra frames.

use mcp_bench::{secs, HarnessArgs};
use mcp_core::{analyze, McConfig};
use mcp_gen::generators::{gated_datapath, DatapathConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Row {
    latency: u64,
    k: u32,
    expected_multi: bool,
    observed_multi: bool,
    cpu: f64,
}

fn main() {
    let args = HarnessArgs::parse();

    println!("k-cycle detection vs datapath transfer latency");
    println!("{:-<64}", "");
    println!(
        "{:>8} {:>4} {:>16} {:>16} {:>10}",
        "latency", "k", "expected", "observed", "CPU(s)"
    );
    println!("{:-<64}", "");

    let mut rows = Vec::new();
    let mut all_ok = true;

    for latency in [2u64, 3, 5, 7] {
        // An 8-phase counter, load at 0, capture at `latency`.
        let nl = gated_datapath(&DatapathConfig {
            width: 4,
            counter_bits: 3,
            load_phase: 0,
            capture_phase: latency,
        });
        let a0 = nl
            .ff_index(nl.find_node("D0_A0").expect("node"))
            .expect("ff");
        let b0 = nl
            .ff_index(nl.find_node("D0_B0").expect("node"))
            .expect("ff");

        for k in 2..=(latency as u32 + 1) {
            let t = Instant::now();
            let report = analyze(
                &nl,
                &McConfig {
                    cycles: k,
                    backtrack_limit: 100_000,
                    ..McConfig::default()
                },
            )
            .expect("analysis succeeds");
            let cpu = t.elapsed();
            let observed = report
                .class_of(a0, b0)
                .map(|c| c.is_multi())
                .unwrap_or(false);
            let expected = u64::from(k) <= latency;
            all_ok &= observed == expected;

            println!(
                "{:>8} {:>4} {:>16} {:>16} {:>10}",
                latency,
                k,
                if expected { "k-cycle" } else { "violating" },
                if observed { "k-cycle" } else { "violating" },
                secs(cpu),
            );
            rows.push(Row {
                latency,
                k,
                expected_multi: expected,
                observed_multi: observed,
                cpu: cpu.as_secs_f64(),
            });
        }
        println!();
    }

    println!("{:-<64}", "");
    println!(
        "staircase {}",
        if all_ok { "REPRODUCED" } else { "MISMATCH" }
    );
    args.dump_json(&rows);
    if !all_ok {
        std::process::exit(1);
    }
}
