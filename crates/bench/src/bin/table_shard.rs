//! Sharded-verification characterization: partition balance and merge
//! fidelity over the deterministic suite.
//!
//! For each circuit and shard count the harness runs every shard
//! in-process (capturing its ledger through a `MemSink`), merges the
//! ledgers, and asserts the merged canonical report is byte-identical
//! to the single-process `--threads 1` run — the same soundness
//! contract `tests/sharding.rs` pins through the real binary, measured
//! here at suite scale. The table reports how evenly the greedy LPT
//! planner spreads the surviving pairs (`min`/`max` owned per shard)
//! and what the shard fan-out costs in wall-clock against the
//! unsharded run.

use mcp_bench::{bench_artifact, secs, HarnessArgs};
use mcp_core::{analyze_with, merge_shards, plan_shards, McConfig, ShardSpec};
use mcp_obs::{Ledger, MemSink, ObsCtx};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Shard counts swept per circuit.
const SHARDS: [u64; 3] = [2, 4, 8];

#[derive(Debug, Serialize)]
struct Row {
    circuit: String,
    ffs: usize,
    candidate_pairs: usize,
    surviving_pairs: usize,
    shards: u64,
    /// Owned pairs of the lightest shard.
    min_owned: usize,
    /// Owned pairs of the heaviest shard.
    max_owned: usize,
    /// Summed wall-clock of the shard runs (the serialized cost; real
    /// deployments run them concurrently).
    shard_wall_s: f64,
    /// Wall-clock of the merge (validation + prefilter replay).
    merge_wall_s: f64,
    /// Wall-clock of the unsharded single-process run.
    single_wall_s: f64,
    /// The merged canonical report matched the single-process run
    /// byte for byte (asserted — recorded for the artifact trail).
    identical: bool,
}

fn capture(nl: &mcp_netlist::Netlist, cfg: &McConfig) -> Ledger {
    let sink = Arc::new(MemSink::new());
    let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
    analyze_with(nl, cfg, &obs).expect("shard analyze succeeds");
    Ledger {
        header: sink.take_header(),
        spans: sink.drain_spans(),
        events: sink.drain(),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let suite = args.suite();

    println!("Shard partition balance and merge fidelity");
    println!("{:-<78}", "");
    println!(
        "{:>8} {:>5} {:>8} {:>8} | {:>3} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "circuit", "FF", "pairs", "surv", "N", "min", "max", "shards(s)", "merge(s)", "single(s)"
    );
    println!("{:-<78}", "");

    let mut rows = Vec::new();
    for nl in &suite {
        let s = nl.stats();
        args.lint_warnings(nl);
        let cfg = args.mc_config();

        let t = Instant::now();
        let single = analyze_with(nl, &cfg, &ObsCtx::new()).expect("single-process analyze");
        let single_wall = t.elapsed();
        let single_canonical =
            serde_json::to_string(&single.canonical()).expect("serialize single-process report");

        for count in SHARDS {
            let plan = plan_shards(nl, &cfg, count).expect("plan shards");
            let owned = plan.pairs_per_shard();
            let (min_owned, max_owned) = (
                owned.iter().copied().min().unwrap_or(0),
                owned.iter().copied().max().unwrap_or(0),
            );

            let t = Instant::now();
            let ledgers: Vec<Ledger> = (0..count)
                .map(|index| {
                    let shard_cfg = McConfig {
                        shard: Some(ShardSpec { index, count }),
                        ..cfg.clone()
                    };
                    capture(nl, &shard_cfg)
                })
                .collect();
            let shard_wall = t.elapsed();

            let t = Instant::now();
            let merged = merge_shards(nl, &cfg, &ledgers).expect("merge succeeds");
            let merge_wall = t.elapsed();
            let merged_canonical =
                serde_json::to_string(&merged.canonical()).expect("serialize merged report");
            assert_eq!(
                merged_canonical,
                single_canonical,
                "{}: {count}-shard merge must be byte-identical to the single run",
                nl.name()
            );

            println!(
                "{:>8} {:>5} {:>8} {:>8} | {:>3} {:>7} {:>7} {:>9} {:>9} {:>9}",
                nl.name(),
                s.ffs,
                single.stats.candidates,
                plan.total_pairs(),
                count,
                min_owned,
                max_owned,
                secs(shard_wall),
                secs(merge_wall),
                secs(single_wall)
            );
            rows.push(Row {
                circuit: nl.name().to_owned(),
                ffs: s.ffs,
                candidate_pairs: single.stats.candidates,
                surviving_pairs: plan.total_pairs(),
                shards: count,
                min_owned,
                max_owned,
                shard_wall_s: shard_wall.as_secs_f64(),
                merge_wall_s: merge_wall.as_secs_f64(),
                single_wall_s: single_wall.as_secs_f64(),
                identical: true,
            });
        }
        println!("{:-<78}", "");
    }

    let artifact = bench_artifact("shard", &rows);
    args.dump_json(&rows);
    args.drift_gate(artifact.as_deref());
}
