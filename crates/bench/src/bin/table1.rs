//! Regenerates the paper's **Table 1**: per-circuit detection of
//! multi-cycle FF pairs without hazard checking — the implication-based
//! method ("ours") versus the conventional SAT-based method \[9\], plus an
//! optional BDD column (the method of \[8\]) on the circuits where it
//! completes within its node budget.
//!
//! Columns mirror the paper: `In`, `FF`, `FF-pair` (topologically
//! connected pairs), `MC-pair` and `CPU(sec)` per engine. Unlike the
//! paper, both engines run on the *same* machine and the same prefilters,
//! so the speed ratio is apples-to-apples.

use mcp_bench::{bench_artifact, secs, HarnessArgs};
use mcp_core::{analyze, Engine, McConfig};
use mcp_netlist::Expanded;
use mcp_obs::Timers;
use mcp_sat::CircuitCnf;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    circuit: String,
    inputs: usize,
    ffs: usize,
    ff_pairs: usize,
    mc_pairs_ours: usize,
    cpu_ours: f64,
    mc_pairs_sat: usize,
    cpu_sat: f64,
    mc_pairs_bdd: Option<usize>,
    cpu_bdd: Option<f64>,
    unknown_ours: usize,
    lint_warnings: usize,
    /// Mean cone-slice size (expanded nodes) over the sink groups the SAT
    /// run encoded; 0 when slicing is off or nothing survived the filter.
    slice_nodes_mean: f64,
    /// Largest single slice the run built.
    slice_nodes_max: u64,
    /// CNF variables of the *whole-circuit* Tseitin template — what every
    /// pair paid per encode before cone slicing.
    sat_vars_template: usize,
    /// Mean CNF variables actually encoded per sink group with slicing.
    sat_vars_sliced_mean: f64,
    /// Pairs the dataflow pre-pass resolved before any simulation ran
    /// (sink FF provably frozen).
    static_resolved: usize,
    /// Prefilter word count with the pre-pass on / off — populated on the
    /// frozen-sink contrast row only; the paper-suite circuits run once,
    /// with the pass at its default (on).
    sim_words_static_on: Option<u64>,
    sim_words_static_off: Option<u64>,
}

fn main() {
    let args = HarnessArgs::parse();
    let suite = args.suite();

    println!("Table 1: multi-cycle FF pair detection (no hazard checking)");
    println!("{:-<100}", "");
    println!(
        "{:>8} {:>5} {:>5} {:>8} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
        "circuit",
        "In",
        "FF",
        "FF-pair",
        "ours MC",
        "CPU(s)",
        "SAT MC",
        "CPU(s)",
        "BDD MC",
        "CPU(s)"
    );
    println!("{:-<100}", "");

    let mut rows = Vec::new();
    let mut total_pairs = 0usize;
    let mut total_mc = 0usize;
    // Per-engine wall-clock accumulates in span timers; `stop()` returns
    // each circuit's slice for the table row.
    let timers = Timers::new();

    for nl in &suite {
        let s = nl.stats();
        let lint_warnings = args.lint_warnings(nl);

        let t = timers.span("ours");
        let ours = analyze(nl, &args.mc_config()).expect("analysis succeeds");
        let cpu_ours = t.stop();

        let t = timers.span("sat");
        let sat = analyze(
            nl,
            &McConfig {
                engine: Engine::Sat,
                ..args.mc_config()
            },
        )
        .expect("analysis succeeds");
        let cpu_sat = t.stop();

        // BDD baseline: only attempted on the smaller circuits; a modest
        // node budget reproduces the paper's observation that symbolic
        // traversal does not scale.
        let bdd = if s.ffs <= 80 {
            let t = timers.span("bdd");
            let r = analyze(
                nl,
                &McConfig {
                    engine: Engine::Bdd {
                        node_limit: 1 << 22,
                        reachability: false,
                    },
                    ..args.mc_config()
                },
            )
            .expect("analysis succeeds");
            let dt = t.stop();
            if r.stats.unknown == 0 {
                Some((r.stats.multi_total(), dt))
            } else {
                None // budget exceeded: "did not complete"
            }
        } else {
            None
        };

        assert_eq!(
            ours.multi_cycle_pairs(),
            sat.multi_cycle_pairs(),
            "{}: engines disagree",
            nl.name()
        );

        // Encode-work accounting: whole-circuit template cost vs the mean
        // sliced cost the SAT run actually paid (ISSUE 4 acceptance:
        // per-pair encoded vars drop ≥ 5x on the largest circuit).
        let cfg = args.mc_config();
        let sat_vars_template = CircuitCnf::new(&Expanded::build(nl, cfg.cycles))
            .solver()
            .num_vars();
        let sc = &sat.metrics.counters;

        total_pairs += s.ff_pairs;
        total_mc += ours.stats.multi_total();

        println!(
            "{:>8} {:>5} {:>5} {:>8} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
            nl.name(),
            s.inputs,
            s.ffs,
            s.ff_pairs,
            ours.stats.multi_total(),
            secs(cpu_ours),
            sat.stats.multi_total(),
            secs(cpu_sat),
            bdd.map_or("-".to_owned(), |(mc, _)| mc.to_string()),
            bdd.map_or("-".to_owned(), |(_, dt)| secs(dt)),
        );

        rows.push(Row {
            circuit: nl.name().to_owned(),
            inputs: s.inputs,
            ffs: s.ffs,
            ff_pairs: s.ff_pairs,
            mc_pairs_ours: ours.stats.multi_total(),
            cpu_ours: cpu_ours.as_secs_f64(),
            mc_pairs_sat: sat.stats.multi_total(),
            cpu_sat: cpu_sat.as_secs_f64(),
            mc_pairs_bdd: bdd.map(|(mc, _)| mc),
            cpu_bdd: bdd.map(|(_, dt)| dt.as_secs_f64()),
            unknown_ours: ours.stats.unknown,
            lint_warnings,
            slice_nodes_mean: sc.slice_nodes_mean(),
            slice_nodes_max: sc.slice_nodes_peak,
            sat_vars_template,
            sat_vars_sliced_mean: sc.slice_vars_mean(),
            static_resolved: ours.stats.multi_by_static,
            sim_words_static_on: None,
            sim_words_static_off: None,
        });
    }

    let total_ours = timers.total("ours");
    let total_sat = timers.total("sat");
    println!("{:-<100}", "");
    println!(
        "{:>8} {:>5} {:>5} {:>8} | {:>8} {:>9} | {:>8} {:>9} |",
        "Total",
        "",
        "",
        total_pairs,
        total_mc,
        secs(total_ours),
        "",
        secs(total_sat),
    );
    println!(
        "\nMC-pair fraction: {:.1}% of connected pairs; SAT/ours CPU ratio: {:.1}x",
        100.0 * total_mc as f64 / total_pairs.max(1) as f64,
        total_sat.as_secs_f64() / total_ours.as_secs_f64().max(1e-9),
    );
    if let Some(r) = rows
        .iter()
        .filter(|r| r.sat_vars_sliced_mean > 0.0)
        .max_by_key(|r| r.ffs)
    {
        println!(
            "Slicing on {}: mean slice {:.0} nodes (max {}), SAT encode \
             {:.0} vars/group vs {} whole-circuit ({:.1}x reduction)",
            r.circuit,
            r.slice_nodes_mean,
            r.slice_nodes_max,
            r.sat_vars_sliced_mean,
            r.sat_vars_template,
            r.sat_vars_template as f64 / r.sat_vars_sliced_mean.max(1.0),
        );
    }

    // Static-classification contrast: a circuit with a tied-off debug
    // block whose capture FFs are provably frozen. The dataflow pre-pass
    // resolves every (core, debug) pair before a single pattern is
    // simulated; with the pass off those pairs can never be dropped, so
    // the prefilter only stops on its idle-words budget. The canonical
    // verdicts must be byte-identical either way — only the work differs.
    let demo = mcp_gen::generators::frozen_sink_demo(64);
    let s = demo.stats();
    let t = timers.span("static_demo");
    let on = analyze(&demo, &args.mc_config()).expect("analysis succeeds");
    let cpu_on = t.stop();
    let off = analyze(
        &demo,
        &McConfig {
            static_classify: false,
            ..args.mc_config()
        },
    )
    .expect("analysis succeeds");
    assert_eq!(
        serde_json::to_string(&on.canonical()).expect("serialize"),
        serde_json::to_string(&off.canonical()).expect("serialize"),
        "{}: static pre-pass changed the canonical report",
        demo.name()
    );
    assert!(
        on.stats.sim_words < off.stats.sim_words,
        "{}: expected the pre-pass to reduce prefilter words ({} vs {})",
        demo.name(),
        on.stats.sim_words,
        off.stats.sim_words
    );
    println!(
        "\nStatic pre-pass on {}: {} of {} pairs resolved before simulation; \
         prefilter words {} vs {} with the pass off ({:.1}x reduction)",
        demo.name(),
        on.stats.multi_by_static,
        on.stats.candidates,
        on.stats.sim_words,
        off.stats.sim_words,
        off.stats.sim_words as f64 / (on.stats.sim_words as f64).max(1.0),
    );
    rows.push(Row {
        circuit: demo.name().to_owned(),
        inputs: s.inputs,
        ffs: s.ffs,
        ff_pairs: s.ff_pairs,
        mc_pairs_ours: on.stats.multi_total(),
        cpu_ours: cpu_on.as_secs_f64(),
        mc_pairs_sat: off.stats.multi_total(),
        cpu_sat: 0.0,
        mc_pairs_bdd: None,
        cpu_bdd: None,
        unknown_ours: on.stats.unknown,
        lint_warnings: args.lint_warnings(&demo),
        slice_nodes_mean: 0.0,
        slice_nodes_max: 0,
        sat_vars_template: 0,
        sat_vars_sliced_mean: 0.0,
        static_resolved: on.stats.multi_by_static,
        sim_words_static_on: Some(on.stats.sim_words),
        sim_words_static_off: Some(off.stats.sim_words),
    });

    let artifact = bench_artifact("table1", &rows);
    args.drift_gate(artifact.as_deref());
    args.dump_json(&rows);
}
