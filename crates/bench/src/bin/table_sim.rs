//! Throughput of the compiled wide-lane simulation kernel.
//!
//! Runs the random-pattern prefilter over the suite twice per circuit:
//! once on the graph-walking 64-lane reference path (`tape: false`) and
//! once per supported lane width on the compiled tape kernel, reporting
//! words simulated, wall-clock, node-evaluation throughput and the
//! speedup over the reference — plus the drift check that makes the
//! numbers trustworthy: every configuration must produce the *same*
//! [`mcp_sim::FilterOutcome`] (survivors, drop order, witness words), so the
//! speedup is measured on provably identical work.
//!
//! The headline number the roadmap tracks is the 256-lane speedup on the
//! largest circuit of the run.

use mcp_bench::{bench_artifact, secs, HarnessArgs};
use mcp_sim::{mc_filter_stats, FilterConfig};
use serde::Serialize;
use std::time::Instant;

/// Tape lane widths swept per circuit (the reference is always 64).
const LANES: [u32; 4] = [64, 128, 256, 512];

#[derive(Debug, Serialize)]
struct Row {
    circuit: String,
    nodes: usize,
    ffs: usize,
    candidate_pairs: usize,
    /// `"reference"` or `"tape"`.
    kernel: &'static str,
    lanes: u32,
    words: u64,
    /// Kernel instructions per pass (0 on the reference path) — shows
    /// how much the compile-time folding shrank the netlist.
    tape_ops_per_pass: u64,
    wall_s: f64,
    /// Netlist-node evaluations per second: `nodes × words × 2` clock
    /// cycles over wall-clock. Words are identical across kernels for a
    /// circuit, so ratios of this column are pure speedups.
    node_evals_per_sec: f64,
    /// Speedup over the reference kernel on the same circuit.
    speedup: f64,
}

/// The artifact envelope (see `bench_artifact`) records the machine's
/// core count alongside the rows: the kernel is single-threaded, but a
/// loaded shared machine depresses wall-clock, so numbers are only
/// comparable at equal `cores`.
#[derive(Debug, Serialize)]
struct Headline {
    circuit: String,
    lanes: u32,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Artifact {
    headline: Headline,
    rows: Vec<Row>,
}

fn main() {
    let args = HarnessArgs::parse();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let suite = args.suite();

    println!("Wide-lane kernel throughput on the random-pattern prefilter ({cores} core(s))");
    println!("{:-<78}", "");
    println!(
        "{:>8} {:>7} {:>7} | {:>9} {:>5} {:>8} {:>9} {:>10} {:>7}",
        "circuit", "nodes", "pairs", "kernel", "lane", "words", "wall(s)", "Mev/s", "speedup"
    );
    println!("{:-<78}", "");

    let mut rows: Vec<Row> = Vec::new();
    for nl in &suite {
        args.lint_warnings(nl);
        let s = nl.stats();
        let nodes = nl.num_nodes();
        let pairs = nl.connected_ff_pairs();
        let reference_cfg = FilterConfig {
            tape: false,
            ..FilterConfig::default()
        };

        let t = Instant::now();
        let (reference, _) = mc_filter_stats(nl, &pairs, &reference_cfg);
        let ref_wall = t.elapsed().as_secs_f64();
        let mut emit = |kernel: &'static str, lanes: u32, words: u64, ops: u64, wall: f64| {
            let evals = (nodes as f64) * (words as f64) * 2.0;
            let node_evals_per_sec = evals / wall.max(1e-9);
            let speedup = ref_wall / wall.max(1e-9);
            println!(
                "{:>8} {:>7} {:>7} | {:>9} {:>5} {:>8} {:>8} {:>10.1} {:>6.2}x",
                nl.name(),
                nodes,
                pairs.len(),
                kernel,
                lanes,
                words,
                secs(std::time::Duration::from_secs_f64(wall)),
                node_evals_per_sec / 1e6,
                speedup
            );
            rows.push(Row {
                circuit: nl.name().to_owned(),
                nodes,
                ffs: s.ffs,
                candidate_pairs: pairs.len(),
                kernel,
                lanes,
                words,
                tape_ops_per_pass: ops,
                wall_s: wall,
                node_evals_per_sec,
                speedup,
            });
        };
        emit("reference", 64, reference.words_simulated, 0, ref_wall);

        for lanes in LANES {
            let tape_cfg = FilterConfig {
                tape: true,
                lanes,
                ..reference_cfg
            };
            let t = Instant::now();
            let (out, stats) = mc_filter_stats(nl, &pairs, &tape_cfg);
            let wall = t.elapsed().as_secs_f64();
            assert_eq!(
                out,
                reference,
                "{}: tape outcome drifted from the reference at {lanes} lanes",
                nl.name()
            );
            let ops_per_pass = stats.tape_ops.checked_div(stats.passes).unwrap_or(0);
            emit("tape", lanes, out.words_simulated, ops_per_pass, wall);
        }
        println!("{:-<78}", "");
    }

    // Headline: 256-lane speedup on the largest circuit of the run
    // (the suite is ordered by size, so that is the last one).
    let headline = rows
        .iter()
        .rev()
        .find(|r| r.kernel == "tape" && r.lanes == 256)
        .map(|r| Headline {
            circuit: r.circuit.clone(),
            lanes: r.lanes,
            speedup: r.speedup,
        })
        .expect("suite is non-empty");
    println!(
        "headline: {:.2}x node-evals/sec over the reference at 256 lanes on {}",
        headline.speedup, headline.circuit
    );

    let artifact = Artifact { headline, rows };
    let text = bench_artifact("sim", &artifact);
    args.dump_json(&artifact);
    args.drift_gate(text.as_deref());
}
