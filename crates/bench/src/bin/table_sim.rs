//! Throughput of the prefilter kernel ladder: jit vs fused vs tape.
//!
//! Runs the random-pattern prefilter over the suite once on the
//! graph-walking 64-lane reference path (`tape: false`) and then once
//! per supported lane width for each compiled tier — the PR-5 tape
//! interpreter, the fused interpreter, and the native-code jit —
//! reporting words simulated, wall-clock, node-evaluation throughput
//! and the speedups over both the reference and the tape tier. Plus the
//! drift check that makes the numbers trustworthy: every configuration
//! must produce the *same* [`mcp_sim::FilterOutcome`] (survivors, drop
//! order, witness words), so the speedups are measured on provably
//! identical work.
//!
//! The headline number the roadmap tracks is the jit tier's 256-lane
//! node-evals/sec over the tape tier on the largest circuit of the run
//! (the acceptance bar is 2x on an x86-64 host; on other hosts the jit
//! tier falls back to the fused interpreter and the `kernel` column
//! says so).

use mcp_bench::{bench_artifact, secs, HarnessArgs};
use mcp_sim::{mc_filter_stats, FilterConfig, SimKernel};
use serde::Serialize;
use std::time::Instant;

/// Lane widths swept per compiled tier (the reference is always 64).
const LANES: [u32; 4] = [64, 128, 256, 512];

/// The compiled tiers swept per lane width, slowest first.
const TIERS: [SimKernel; 3] = [SimKernel::Tape, SimKernel::Fused, SimKernel::Jit];

#[derive(Debug, Serialize)]
struct Row {
    circuit: String,
    nodes: usize,
    ffs: usize,
    candidate_pairs: usize,
    /// The requested tier: `"reference"`, `"tape"`, `"fused"`, `"jit"`.
    tier: &'static str,
    /// The kernel that actually ran (`"jit-avx2"`, `"jit-scalar"`,
    /// `"fused"`, ... — the jit tier falls back on non-x86-64 hosts).
    kernel: &'static str,
    lanes: u32,
    words: u64,
    /// Kernel instructions per pass (0 on the reference path) — shows
    /// how much lowering shrank the netlist: the fused/jit tiers
    /// execute fewer instructions than the tape for the same circuit.
    ops_per_pass: u64,
    wall_s: f64,
    /// Netlist-node evaluations per second: `nodes × words × 2` clock
    /// cycles over wall-clock. Words are identical across kernels for a
    /// circuit, so ratios of this column are pure speedups.
    node_evals_per_sec: f64,
    /// Speedup over the reference kernel on the same circuit.
    speedup: f64,
    /// Speedup over the tape tier at the same lane width (1.0 for the
    /// tape rows themselves; vs the 64-lane reference otherwise).
    speedup_vs_tape: f64,
}

/// The artifact envelope (see `bench_artifact`) records the machine's
/// core count alongside the rows: the kernel is single-threaded, but a
/// loaded shared machine depresses wall-clock, so numbers are only
/// comparable at equal `cores`.
#[derive(Debug, Serialize)]
struct Headline {
    circuit: String,
    lanes: u32,
    /// Which kernel the jit tier actually ran as.
    jit_kernel: &'static str,
    /// Jit node-evals/sec over the tape tier at the same width.
    jit_vs_tape: f64,
    /// Jit node-evals/sec over the 64-lane reference path.
    jit_vs_reference: f64,
}

#[derive(Debug, Serialize)]
struct Artifact {
    headline: Headline,
    rows: Vec<Row>,
}

fn tier_name(k: SimKernel) -> &'static str {
    k.as_str()
}

fn main() {
    let args = HarnessArgs::parse();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let suite = args.suite();

    println!("Kernel-ladder throughput on the random-pattern prefilter ({cores} core(s))");
    println!("{:-<86}", "");
    println!(
        "{:>8} {:>7} {:>7} | {:>10} {:>5} {:>8} {:>9} {:>10} {:>7} {:>7}",
        "circuit",
        "nodes",
        "pairs",
        "kernel",
        "lane",
        "words",
        "wall(s)",
        "Mev/s",
        "vs ref",
        "vs tape"
    );
    println!("{:-<86}", "");

    let mut rows: Vec<Row> = Vec::new();
    for nl in &suite {
        args.lint_warnings(nl);
        let s = nl.stats();
        let nodes = nl.num_nodes();
        let pairs = nl.connected_ff_pairs();
        let reference_cfg = FilterConfig {
            tape: false,
            ..FilterConfig::default()
        };

        let t = Instant::now();
        let (reference, _) = mc_filter_stats(nl, &pairs, &reference_cfg);
        let ref_wall = t.elapsed().as_secs_f64();
        let mut emit = |tier: &'static str,
                        kernel: &'static str,
                        lanes: u32,
                        words: u64,
                        ops: u64,
                        wall: f64,
                        tape_wall: f64| {
            let evals = (nodes as f64) * (words as f64) * 2.0;
            let node_evals_per_sec = evals / wall.max(1e-9);
            let speedup = ref_wall / wall.max(1e-9);
            let speedup_vs_tape = tape_wall / wall.max(1e-9);
            println!(
                "{:>8} {:>7} {:>7} | {:>10} {:>5} {:>8} {:>8} {:>10.1} {:>6.2}x {:>6.2}x",
                nl.name(),
                nodes,
                pairs.len(),
                kernel,
                lanes,
                words,
                secs(std::time::Duration::from_secs_f64(wall)),
                node_evals_per_sec / 1e6,
                speedup,
                speedup_vs_tape
            );
            rows.push(Row {
                circuit: nl.name().to_owned(),
                nodes,
                ffs: s.ffs,
                candidate_pairs: pairs.len(),
                tier,
                kernel,
                lanes,
                words,
                ops_per_pass: ops,
                wall_s: wall,
                node_evals_per_sec,
                speedup,
                speedup_vs_tape,
            });
        };
        emit(
            "reference",
            "reference",
            64,
            reference.words_simulated,
            0,
            ref_wall,
            ref_wall,
        );

        for lanes in LANES {
            let mut tape_wall = ref_wall;
            for tier in TIERS {
                let tier_cfg = FilterConfig {
                    tape: true,
                    lanes,
                    kernel: tier,
                    ..reference_cfg
                };
                let t = Instant::now();
                let (out, stats) = mc_filter_stats(nl, &pairs, &tier_cfg);
                let wall = t.elapsed().as_secs_f64();
                assert_eq!(
                    out,
                    reference,
                    "{}: {tier:?} outcome drifted from the reference at {lanes} lanes",
                    nl.name()
                );
                if tier == SimKernel::Tape {
                    tape_wall = wall;
                }
                let ops = stats.tape_ops.max(stats.fused_ops);
                let ops_per_pass = ops.checked_div(stats.passes).unwrap_or(0);
                emit(
                    tier_name(tier),
                    stats.kernel,
                    lanes,
                    out.words_simulated,
                    ops_per_pass,
                    wall,
                    tape_wall,
                );
            }
        }
        println!("{:-<86}", "");
    }

    // Headline: the jit tier's 256-lane speedup over the tape tier on
    // the largest circuit of the run (the suite is ordered by size, so
    // that is the last one).
    let jit = rows
        .iter()
        .rev()
        .find(|r| r.tier == "jit" && r.lanes == 256)
        .expect("suite is non-empty");
    let headline = Headline {
        circuit: jit.circuit.clone(),
        lanes: jit.lanes,
        jit_kernel: jit.kernel,
        jit_vs_tape: jit.speedup_vs_tape,
        jit_vs_reference: jit.speedup,
    };
    println!(
        "headline: {} at 256 lanes on {}: {:.2}x node-evals/sec over the tape tier \
         ({:.2}x over the reference)",
        headline.jit_kernel, headline.circuit, headline.jit_vs_tape, headline.jit_vs_reference
    );

    let artifact = Artifact { headline, rows };
    let text = bench_artifact("sim", &artifact);
    args.dump_json(&artifact);
    args.drift_gate(text.as_deref());
}
