//! Shared harness utilities for the table-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation section on the deterministic synthetic suite:
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `table1`       | Table 1 — per-circuit MC pairs & CPU, ours vs SAT \[9\] (and optional BDD \[8\]) |
//! | `table2`       | Table 2 — pairs resolved and CPU per analysis step |
//! | `table3`       | Table 3 — MC pairs before/after static-hazard checking |
//! | `table_kcycle` | Section 4.1 extension — k-cycle detection vs counter period |
//!
//! Run with `--release`; pass `--quick` to restrict to the smaller half of
//! the suite, `--json <path>` to also dump machine-readable rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mcp_core::McConfig;
use mcp_netlist::Netlist;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Use the abbreviated suite.
    pub quick: bool,
    /// Optional JSON dump path.
    pub json: Option<String>,
    /// Lint every suite circuit before benchmarking it, failing the run
    /// on error-level findings and propagating warning counts into the
    /// bench artifact.
    pub lint: bool,
    /// Worker threads for the pair loop (default 1: the paper's numbers
    /// are single-threaded, so parallelism is opt-in per run).
    pub threads: usize,
    /// Optional baseline `BENCH_*.json` to diff this run's artifact
    /// against; above-threshold counter growth fails the run.
    pub baseline: Option<String>,
    /// Counter growth (percent) tolerated by the `--baseline` gate.
    pub threshold: f64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            quick: false,
            json: None,
            lint: false,
            threads: 1,
            baseline: None,
            threshold: 0.0,
        }
    }
}

impl HarnessArgs {
    /// Parses `--quick`, `--lint`, `--threads <N>`, `--json <path>`,
    /// `--baseline <path>` and `--threshold <pct>` from
    /// `std::env::args`, exiting with status 2 on unknown arguments
    /// (a typo must not silently produce wrong-config numbers).
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(out) => out,
            Err(e) => {
                eprintln!(
                    "error: {e}\nusage: [--quick] [--lint] [--threads <N>] [--json <path>] \
                     [--baseline <BENCH.json>] [--threshold <pct>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`parse`](Self::parse)).
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown argument, a `--json`/`--baseline`
    /// without a path, a non-numeric `--threshold`, or a non-numeric /
    /// zero `--threads`.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--lint" => out.lint = true,
                "--json" => {
                    out.json = Some(args.next().ok_or("`--json` needs a path")?);
                }
                "--baseline" => {
                    out.baseline = Some(args.next().ok_or("`--baseline` needs a path")?);
                }
                "--threshold" => {
                    let v = args.next().ok_or("`--threshold` needs a percentage")?;
                    out.threshold = v
                        .parse()
                        .map_err(|e| format!("bad `--threshold {v}`: {e}"))?;
                }
                "--threads" => {
                    let v = args.next().ok_or("`--threads` needs a count")?;
                    out.threads = v.parse().map_err(|e| format!("bad `--threads {v}`: {e}"))?;
                    if out.threads == 0 {
                        return Err("`--threads` must be at least 1".into());
                    }
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// Diffs this run's serialized artifact against the `--baseline`
    /// artifact over the deterministic counters (wall-clock, `cores` and
    /// `peak_rss_kb` fields are excluded as machine-dependent noise).
    ///
    /// Returns `Ok(None)` without `--baseline`, and the rendered diff
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns the rendered diff when it contains above-threshold
    /// counter growth, or a message when either artifact is unreadable.
    pub fn drift_check(&self, current: &str) -> Result<Option<String>, String> {
        let Some(path) = &self.baseline else {
            return Ok(None);
        };
        let old =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let cmp = mcp_obs::compare_artifacts(
            &old,
            current,
            mcp_obs::CompareConfig {
                threshold_pct: self.threshold,
            },
        )
        .map_err(|e| e.to_string())?;
        let rendered = cmp.render();
        if cmp.regressions() > 0 {
            return Err(format!("counter drift against `{path}`:\n{rendered}"));
        }
        Ok(Some(rendered))
    }

    /// Exit-on-drift wrapper around [`drift_check`](Self::drift_check)
    /// for the table binaries: prints the comparison, exits with status
    /// 1 on regressions.
    pub fn drift_gate(&self, current: Option<&str>) {
        let Some(current) = current else {
            if self.baseline.is_some() {
                eprintln!("error: no artifact was written, nothing to compare");
                std::process::exit(1);
            }
            return;
        };
        match self.drift_check(current) {
            Ok(None) => {}
            Ok(Some(rendered)) => eprint!("# baseline comparison:\n{rendered}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    /// The baseline analysis configuration for this run: defaults plus
    /// the harness-level `--threads` knob. Table binaries layer their
    /// engine/option overrides on top with struct update syntax.
    pub fn mc_config(&self) -> McConfig {
        McConfig {
            threads: self.threads,
            ..McConfig::default()
        }
    }

    /// Runs the full `mcp-lint` rule set on a suite circuit when `--lint`
    /// was given, and returns the number of warning-or-worse findings
    /// (always 0 without `--lint`). Exits with status 1 on error-level
    /// findings: a benchmark number measured on a corrupt netlist is
    /// worse than no number.
    pub fn lint_warnings(&self, nl: &Netlist) -> usize {
        match self.lint_warnings_checked(nl) {
            Ok(n) => n,
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }

    /// Testable core of [`lint_warnings`](Self::lint_warnings).
    ///
    /// # Errors
    ///
    /// Returns the rendered report when it contains error-level findings.
    pub fn lint_warnings_checked(&self, nl: &Netlist) -> Result<usize, String> {
        if !self.lint {
            return Ok(0);
        }
        let report =
            mcp_lint::Registry::with_default_rules().run(nl, &mcp_lint::LintConfig::default());
        if report.has_errors() {
            return Err(report.render_text(nl.name()));
        }
        Ok(report
            .iter()
            .filter(|d| d.severity >= mcp_lint::Severity::Warn)
            .count())
    }

    /// The suite selected by the flags.
    pub fn suite(&self) -> Vec<Netlist> {
        if self.quick {
            mcp_gen::suite::quick_suite()
        } else {
            mcp_gen::suite::standard_suite()
        }
    }

    /// Writes `rows` as pretty JSON when `--json` was given.
    pub fn dump_json<T: serde::Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(rows) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("cannot write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("cannot serialize results: {e}"),
            }
        }
    }
}

/// Formats a duration in seconds with millisecond resolution, the way the
/// paper's CPU columns read.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Peak resident set size of this process in kilobytes, read from
/// `/proc/self/status` (`VmHWM`, the RSS high-water mark). Returns 0 on
/// platforms without procfs — callers treat 0 as "not measured".
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Writes `rows` to `BENCH_<name>.json` in the current directory — the
/// machine-readable perf artifact each table binary leaves behind so
/// successive runs accumulate a benchmark trajectory — and returns the
/// written text (for the `--baseline` drift gate), or `None` when the
/// artifact could not be produced.
///
/// The rows are wrapped in a machine envelope recording the core count
/// and peak RSS: wall-clock columns are only comparable at equal
/// `cores`, and a memory blow-up is a regression the timing columns
/// cannot show. The envelope is assembled textually so it works for any
/// row type without a generic `Serialize` impl.
pub fn bench_artifact<T: serde::Serialize>(name: &str, rows: &T) -> Option<String> {
    let path = format!("BENCH_{name}.json");
    let body = match serde_json::to_string_pretty(rows) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot serialize {path}: {e}");
            return None;
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let doc = format!(
        "{{\n  \"cores\": {cores},\n  \"peak_rss_kb\": {},\n  \"rows\": {body}\n}}",
        peak_rss_kb()
    );
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {path}: {e}");
    } else {
        eprintln!("# wrote {path}");
    }
    Some(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats_milliseconds() {
        assert_eq!(secs(std::time::Duration::from_millis(1234)), "1.234");
        assert_eq!(secs(std::time::Duration::ZERO), "0.000");
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        let argv = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let args = HarnessArgs::try_parse(argv("--quick --json out.json")).expect("parse");
        assert!(args.quick);
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert!(HarnessArgs::try_parse(argv("--qiuck")).is_err());
        assert!(HarnessArgs::try_parse(argv("--json")).is_err());
    }

    #[test]
    fn threads_knob_parses_and_reaches_the_config() {
        let argv = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let args = HarnessArgs::try_parse(argv("")).expect("parse");
        assert_eq!(args.threads, 1, "single-threaded by default");
        assert_eq!(args.mc_config().threads, 1);
        let args = HarnessArgs::try_parse(argv("--threads 8")).expect("parse");
        assert_eq!(args.threads, 8);
        assert_eq!(args.mc_config().threads, 8);
        assert!(HarnessArgs::try_parse(argv("--threads")).is_err());
        assert!(HarnessArgs::try_parse(argv("--threads nope")).is_err());
        assert!(HarnessArgs::try_parse(argv("--threads 0")).is_err());
    }

    #[test]
    fn lint_gate_is_quiet_on_the_suite_and_off_by_default() {
        let nl = mcp_gen::suite::quick_suite().remove(0);
        let off = HarnessArgs::default();
        assert_eq!(off.lint_warnings_checked(&nl).expect("off"), 0);
        let argv = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let on = HarnessArgs::try_parse(argv("--lint")).expect("parse");
        assert!(on.lint);
        // The generated suite is lint-clean: no warnings, no errors.
        assert_eq!(on.lint_warnings_checked(&nl).expect("clean"), 0);
    }

    #[test]
    fn peak_rss_is_measured_where_procfs_exists() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(
                peak_rss_kb() > 0,
                "VmHWM should be nonzero for a live process"
            );
        } else {
            assert_eq!(peak_rss_kb(), 0);
        }
    }

    #[test]
    fn baseline_drift_gate_flags_counter_growth_only() {
        let argv = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join("mcp-bench-drift");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let baseline = dir.join("BENCH_base.json");
        std::fs::write(
            &baseline,
            "{\n  \"cores\": 8,\n  \"peak_rss_kb\": 1000,\n  \"rows\": [{\"pairs\": 100}]\n}",
        )
        .expect("write");

        let args = HarnessArgs::try_parse(argv(&format!(
            "--baseline {} --threshold 10",
            baseline.display()
        )))
        .expect("parse");
        assert!((args.threshold - 10.0).abs() < 1e-9);

        // Within threshold — and machine-dependent fields never count.
        let ok = "{\n  \"cores\": 1,\n  \"peak_rss_kb\": 99999,\n  \"rows\": [{\"pairs\": 105}]\n}";
        let rendered = args.drift_check(ok).expect("within threshold").unwrap();
        assert!(rendered.contains("differing"), "{rendered}");

        // Above threshold: a drift error carrying the diff table.
        let bad = "{\n  \"cores\": 8,\n  \"peak_rss_kb\": 1000,\n  \"rows\": [{\"pairs\": 200}]\n}";
        let err = args.drift_check(bad).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");

        // Without --baseline the gate is inert.
        assert_eq!(HarnessArgs::default().drift_check(bad).expect("off"), None);
        assert!(HarnessArgs::try_parse(argv("--baseline")).is_err());
        assert!(HarnessArgs::try_parse(argv("--threshold x")).is_err());
    }

    #[test]
    fn default_args_select_full_suite() {
        let args = HarnessArgs::default();
        assert_eq!(args.suite().len(), 12);
        let quick = HarnessArgs {
            quick: true,
            ..HarnessArgs::default()
        };
        assert_eq!(quick.suite().len(), 6);
    }
}
