//! Shared harness utilities for the table-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation section on the deterministic synthetic suite:
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `table1`       | Table 1 — per-circuit MC pairs & CPU, ours vs SAT \[9\] (and optional BDD \[8\]) |
//! | `table2`       | Table 2 — pairs resolved and CPU per analysis step |
//! | `table3`       | Table 3 — MC pairs before/after static-hazard checking |
//! | `table_kcycle` | Section 4.1 extension — k-cycle detection vs counter period |
//!
//! Run with `--release`; pass `--quick` to restrict to the smaller half of
//! the suite, `--json <path>` to also dump machine-readable rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mcp_core::McConfig;
use mcp_netlist::Netlist;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Use the abbreviated suite.
    pub quick: bool,
    /// Optional JSON dump path.
    pub json: Option<String>,
    /// Lint every suite circuit before benchmarking it, failing the run
    /// on error-level findings and propagating warning counts into the
    /// bench artifact.
    pub lint: bool,
    /// Worker threads for the pair loop (default 1: the paper's numbers
    /// are single-threaded, so parallelism is opt-in per run).
    pub threads: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            quick: false,
            json: None,
            lint: false,
            threads: 1,
        }
    }
}

impl HarnessArgs {
    /// Parses `--quick`, `--lint`, `--threads <N>` and `--json <path>`
    /// from `std::env::args`, exiting with status 2 on unknown arguments
    /// (a typo must not silently produce wrong-config numbers).
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("error: {e}\nusage: [--quick] [--lint] [--threads <N>] [--json <path>]");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`parse`](Self::parse)).
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown argument, a `--json` without a
    /// path, or a non-numeric / zero `--threads`.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--lint" => out.lint = true,
                "--json" => {
                    out.json = Some(args.next().ok_or("`--json` needs a path")?);
                }
                "--threads" => {
                    let v = args.next().ok_or("`--threads` needs a count")?;
                    out.threads = v.parse().map_err(|e| format!("bad `--threads {v}`: {e}"))?;
                    if out.threads == 0 {
                        return Err("`--threads` must be at least 1".into());
                    }
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// The baseline analysis configuration for this run: defaults plus
    /// the harness-level `--threads` knob. Table binaries layer their
    /// engine/option overrides on top with struct update syntax.
    pub fn mc_config(&self) -> McConfig {
        McConfig {
            threads: self.threads,
            ..McConfig::default()
        }
    }

    /// Runs the full `mcp-lint` rule set on a suite circuit when `--lint`
    /// was given, and returns the number of warning-or-worse findings
    /// (always 0 without `--lint`). Exits with status 1 on error-level
    /// findings: a benchmark number measured on a corrupt netlist is
    /// worse than no number.
    pub fn lint_warnings(&self, nl: &Netlist) -> usize {
        match self.lint_warnings_checked(nl) {
            Ok(n) => n,
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }

    /// Testable core of [`lint_warnings`](Self::lint_warnings).
    ///
    /// # Errors
    ///
    /// Returns the rendered report when it contains error-level findings.
    pub fn lint_warnings_checked(&self, nl: &Netlist) -> Result<usize, String> {
        if !self.lint {
            return Ok(0);
        }
        let report =
            mcp_lint::Registry::with_default_rules().run(nl, &mcp_lint::LintConfig::default());
        if report.has_errors() {
            return Err(report.render_text(nl.name()));
        }
        Ok(report
            .iter()
            .filter(|d| d.severity >= mcp_lint::Severity::Warn)
            .count())
    }

    /// The suite selected by the flags.
    pub fn suite(&self) -> Vec<Netlist> {
        if self.quick {
            mcp_gen::suite::quick_suite()
        } else {
            mcp_gen::suite::standard_suite()
        }
    }

    /// Writes `rows` as pretty JSON when `--json` was given.
    pub fn dump_json<T: serde::Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(rows) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("cannot write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("cannot serialize results: {e}"),
            }
        }
    }
}

/// Formats a duration in seconds with millisecond resolution, the way the
/// paper's CPU columns read.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Writes `rows` to `BENCH_<name>.json` in the current directory — the
/// machine-readable perf artifact each table binary leaves behind so
/// successive runs accumulate a benchmark trajectory.
pub fn bench_artifact<T: serde::Serialize>(name: &str, rows: &T) {
    let path = format!("BENCH_{name}.json");
    match serde_json::to_string_pretty(rows) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("cannot write {path}: {e}");
            } else {
                eprintln!("# wrote {path}");
            }
        }
        Err(e) => eprintln!("cannot serialize {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats_milliseconds() {
        assert_eq!(secs(std::time::Duration::from_millis(1234)), "1.234");
        assert_eq!(secs(std::time::Duration::ZERO), "0.000");
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        let argv = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let args = HarnessArgs::try_parse(argv("--quick --json out.json")).expect("parse");
        assert!(args.quick);
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert!(HarnessArgs::try_parse(argv("--qiuck")).is_err());
        assert!(HarnessArgs::try_parse(argv("--json")).is_err());
    }

    #[test]
    fn threads_knob_parses_and_reaches_the_config() {
        let argv = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let args = HarnessArgs::try_parse(argv("")).expect("parse");
        assert_eq!(args.threads, 1, "single-threaded by default");
        assert_eq!(args.mc_config().threads, 1);
        let args = HarnessArgs::try_parse(argv("--threads 8")).expect("parse");
        assert_eq!(args.threads, 8);
        assert_eq!(args.mc_config().threads, 8);
        assert!(HarnessArgs::try_parse(argv("--threads")).is_err());
        assert!(HarnessArgs::try_parse(argv("--threads nope")).is_err());
        assert!(HarnessArgs::try_parse(argv("--threads 0")).is_err());
    }

    #[test]
    fn lint_gate_is_quiet_on_the_suite_and_off_by_default() {
        let nl = mcp_gen::suite::quick_suite().remove(0);
        let off = HarnessArgs::default();
        assert_eq!(off.lint_warnings_checked(&nl).expect("off"), 0);
        let argv = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let on = HarnessArgs::try_parse(argv("--lint")).expect("parse");
        assert!(on.lint);
        // The generated suite is lint-clean: no warnings, no errors.
        assert_eq!(on.lint_warnings_checked(&nl).expect("clean"), 0);
    }

    #[test]
    fn default_args_select_full_suite() {
        let args = HarnessArgs::default();
        assert_eq!(args.suite().len(), 12);
        let quick = HarnessArgs {
            quick: true,
            ..HarnessArgs::default()
        };
        assert_eq!(quick.suite().len(), 6);
    }
}
