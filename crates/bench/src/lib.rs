//! Shared harness utilities for the table-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation section on the deterministic synthetic suite:
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `table1`       | Table 1 — per-circuit MC pairs & CPU, ours vs SAT \[9\] (and optional BDD \[8\]) |
//! | `table2`       | Table 2 — pairs resolved and CPU per analysis step |
//! | `table3`       | Table 3 — MC pairs before/after static-hazard checking |
//! | `table_kcycle` | Section 4.1 extension — k-cycle detection vs counter period |
//!
//! Run with `--release`; pass `--quick` to restrict to the smaller half of
//! the suite, `--json <path>` to also dump machine-readable rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mcp_netlist::Netlist;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Use the abbreviated suite.
    pub quick: bool,
    /// Optional JSON dump path.
    pub json: Option<String>,
}

impl HarnessArgs {
    /// Parses `--quick` and `--json <path>` from `std::env::args`.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => out.json = args.next(),
                other => {
                    eprintln!("ignoring unknown argument `{other}`");
                }
            }
        }
        out
    }

    /// The suite selected by the flags.
    pub fn suite(&self) -> Vec<Netlist> {
        if self.quick {
            mcp_gen::suite::quick_suite()
        } else {
            mcp_gen::suite::standard_suite()
        }
    }

    /// Writes `rows` as pretty JSON when `--json` was given.
    pub fn dump_json<T: serde::Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(rows) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("cannot write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("cannot serialize results: {e}"),
            }
        }
    }
}

/// Formats a duration in seconds with millisecond resolution, the way the
/// paper's CPU columns read.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats_milliseconds() {
        assert_eq!(secs(std::time::Duration::from_millis(1234)), "1.234");
        assert_eq!(secs(std::time::Duration::ZERO), "0.000");
    }

    #[test]
    fn default_args_select_full_suite() {
        let args = HarnessArgs::default();
        assert_eq!(args.suite().len(), 12);
        let quick = HarnessArgs {
            quick: true,
            ..HarnessArgs::default()
        };
        assert_eq!(quick.suite().len(), 6);
    }
}
