//! Multi-valued logic for gate-level analysis.
//!
//! This crate is the semantic foundation of the workspace: it defines the
//! value domains and gate functions every other crate (simulation,
//! implication, ATPG, SAT encoding, BDD construction) agrees on.
//!
//! Three domains are provided:
//!
//! * [`V3`] — the classic ternary domain `{0, 1, X}` used by the implication
//!   engine and the event-driven simulator. `X` means *unassigned /
//!   unknown*, and all operations are the strongest monotone extensions of
//!   the Boolean functions (e.g. `AND(0, X) = 0`).
//! * [`V5`] — Roth's five-valued D-calculus `{0, 1, X, D, D̄}` for
//!   reasoning about the propagation of a *transition* (a value that
//!   differs between a "before" and an "after" copy of the circuit). The
//!   componentwise-evaluation theorem — over definite values, forward V5
//!   evaluation equals the pair of V3 evaluations (and is a sound
//!   abstraction of it under unknowns) — is property-tested in `mcp-sim`;
//!   it licenses the hazard checker's two-frame value formulation.
//! * Bit-parallel 64-lane Boolean words (`u64`), evaluated by
//!   [`GateKind::eval_word`], used by the random-pattern simulator.
//!
//! [`GateKind`] enumerates the combinational gate functions of the netlist
//! model (the ISCAS89 gate set) together with their structural properties:
//! controlling value, output inversion, and evaluation over each domain.
//!
//! # Example
//!
//! ```
//! use mcp_logic::{GateKind, V3};
//!
//! // A controlling 0 on an AND input decides the output even when the
//! // other input is unknown.
//! let out = GateKind::And.eval_v3([V3::Zero, V3::X]);
//! assert_eq!(out, V3::Zero);
//!
//! // NAND inverts, and its controlling value is 0.
//! assert_eq!(GateKind::Nand.controlling_value(), Some(false));
//! assert!(GateKind::Nand.output_inversion());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod v3;
pub mod v5;

pub use gate::GateKind;
pub use v3::V3;
pub use v5::V5;
