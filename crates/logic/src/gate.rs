//! Combinational gate functions and their structural properties.

use crate::{V3, V5};
use std::fmt;
use std::str::FromStr;

/// The combinational gate functions of the netlist model.
///
/// This is the ISCAS89 gate set. Every gate is characterized by two
/// structural properties that the implication engine, the ATPG search and
/// the path-sensitization checks rely on:
///
/// * the **controlling value** — the input value that determines the gate
///   output regardless of the other inputs (`0` for AND/NAND, `1` for
///   OR/NOR, none for XOR/XNOR/NOT/BUF), see [`GateKind::controlling_value`];
/// * the **output inversion** — whether the gate output is the complement
///   of the corresponding non-inverting function, see
///   [`GateKind::output_inversion`].
///
/// # Example
///
/// ```
/// use mcp_logic::GateKind;
///
/// assert_eq!(GateKind::Nor.controlling_value(), Some(true));
/// assert_eq!(GateKind::Nor.controlled_output(), Some(false));
/// assert_eq!("NAND".parse::<GateKind>()?, GateKind::Nand);
/// # Ok::<(), mcp_logic::gate::ParseGateKindError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// n-ary conjunction.
    And,
    /// n-ary negated conjunction.
    Nand,
    /// n-ary disjunction.
    Or,
    /// n-ary negated disjunction.
    Nor,
    /// n-ary parity (odd number of ones).
    Xor,
    /// n-ary negated parity.
    Xnor,
    /// Unary inverter.
    Not,
    /// Unary buffer.
    Buf,
}

/// All gate kinds, in a fixed order (useful for exhaustive tests and
/// generators).
pub const ALL_GATE_KINDS: [GateKind; 8] = [
    GateKind::And,
    GateKind::Nand,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Not,
    GateKind::Buf,
];

impl GateKind {
    /// The input value that alone determines the output, if the gate has
    /// one: `Some(false)` for AND/NAND, `Some(true)` for OR/NOR, `None` for
    /// the parity gates and the unary gates.
    #[inline]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            GateKind::Xor | GateKind::Xnor | GateKind::Not | GateKind::Buf => None,
        }
    }

    /// The complement of the controlling value, when one exists.
    #[inline]
    pub fn noncontrolling_value(self) -> Option<bool> {
        self.controlling_value().map(|c| !c)
    }

    /// The output value produced when some input carries the controlling
    /// value (the *controlled* output), when the gate has a controlling
    /// value.
    #[inline]
    pub fn controlled_output(self) -> Option<bool> {
        self.controlling_value()
            .map(|c| c ^ self.output_inversion())
    }

    /// Whether the gate output is inverted relative to its non-inverting
    /// base function (NAND, NOR, XNOR, NOT are inverting).
    #[inline]
    pub fn output_inversion(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The number of inputs the gate requires: `Some(1)` for NOT/BUF,
    /// `None` (meaning "one or more") for the n-ary gates.
    #[inline]
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            GateKind::Not | GateKind::Buf => Some(1),
            _ => None,
        }
    }

    /// Evaluates the gate over Booleans.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has length ≠ 1 for NOT/BUF.
    pub fn eval_bool<I>(self, inputs: I) -> bool
    where
        I: IntoIterator<Item = bool>,
    {
        let mut it = inputs.into_iter();
        let first = it.next().expect("gate must have at least one input");
        let base = match self {
            GateKind::And | GateKind::Nand => it.fold(first, |acc, b| acc & b),
            GateKind::Or | GateKind::Nor => it.fold(first, |acc, b| acc | b),
            GateKind::Xor | GateKind::Xnor => it.fold(first, |acc, b| acc ^ b),
            GateKind::Not | GateKind::Buf => {
                assert!(it.next().is_none(), "NOT/BUF take exactly one input");
                first
            }
        };
        base ^ self.output_inversion()
    }

    /// Evaluates the gate over the ternary domain, producing a definite
    /// value whenever the definite inputs alone determine it.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has length ≠ 1 for NOT/BUF.
    pub fn eval_v3<I>(self, inputs: I) -> V3
    where
        I: IntoIterator<Item = V3>,
    {
        let mut it = inputs.into_iter();
        let first = it.next().expect("gate must have at least one input");
        let base = match self {
            GateKind::And | GateKind::Nand => it.fold(first, |acc, b| acc.and(b)),
            GateKind::Or | GateKind::Nor => it.fold(first, |acc, b| acc.or(b)),
            GateKind::Xor | GateKind::Xnor => it.fold(first, |acc, b| acc.xor(b)),
            GateKind::Not | GateKind::Buf => {
                assert!(it.next().is_none(), "NOT/BUF take exactly one input");
                first
            }
        };
        base.invert_if(self.output_inversion())
    }

    /// Evaluates the gate over the five-valued D-calculus.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has length ≠ 1 for NOT/BUF.
    pub fn eval_v5<I>(self, inputs: I) -> V5
    where
        I: IntoIterator<Item = V5>,
    {
        let mut it = inputs.into_iter();
        let first = it.next().expect("gate must have at least one input");
        let base = match self {
            GateKind::And | GateKind::Nand => it.fold(first, |acc, b| acc.and(b)),
            GateKind::Or | GateKind::Nor => it.fold(first, |acc, b| acc.or(b)),
            GateKind::Xor | GateKind::Xnor => it.fold(first, |acc, b| acc.xor(b)),
            GateKind::Not | GateKind::Buf => {
                assert!(it.next().is_none(), "NOT/BUF take exactly one input");
                first
            }
        };
        base.invert_if(self.output_inversion())
    }

    /// Evaluates the gate over 64 parallel Boolean lanes packed in `u64`
    /// words (bit `i` of every word belongs to lane `i`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has length ≠ 1 for NOT/BUF.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        let (&first, rest) = inputs
            .split_first()
            .expect("gate must have at least one input");
        let base = match self {
            GateKind::And | GateKind::Nand => rest.iter().fold(first, |acc, &b| acc & b),
            GateKind::Or | GateKind::Nor => rest.iter().fold(first, |acc, &b| acc | b),
            GateKind::Xor | GateKind::Xnor => rest.iter().fold(first, |acc, &b| acc ^ b),
            GateKind::Not | GateKind::Buf => {
                assert!(rest.is_empty(), "NOT/BUF take exactly one input");
                first
            }
        };
        if self.output_inversion() {
            !base
        } else {
            base
        }
    }

    /// The ISCAS89 `.bench` keyword for this gate.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// Error returned when parsing an unknown gate keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    keyword: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate keyword `{}`", self.keyword)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses an ISCAS89 keyword, case-insensitively. Both `BUF` and `BUFF`
    /// are accepted for the buffer.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            other => Err(ParseGateKindError {
                keyword: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn controlled_outputs() {
        // AND with a 0 input outputs 0; NAND outputs 1; OR with a 1 outputs
        // 1; NOR outputs 0.
        assert_eq!(GateKind::And.controlled_output(), Some(false));
        assert_eq!(GateKind::Nand.controlled_output(), Some(true));
        assert_eq!(GateKind::Or.controlled_output(), Some(true));
        assert_eq!(GateKind::Nor.controlled_output(), Some(false));
        assert_eq!(GateKind::Xor.controlled_output(), None);
    }

    #[test]
    fn eval_bool_matches_truth_tables() {
        for kind in ALL_GATE_KINDS {
            if kind.fixed_arity() == Some(1) {
                for a in [false, true] {
                    let expect = a ^ kind.output_inversion();
                    assert_eq!(kind.eval_bool([a]), expect, "{kind}({a})");
                }
                continue;
            }
            for a in [false, true] {
                for b in [false, true] {
                    let expect = match kind {
                        GateKind::And => a & b,
                        GateKind::Nand => !(a & b),
                        GateKind::Or => a | b,
                        GateKind::Nor => !(a | b),
                        GateKind::Xor => a ^ b,
                        GateKind::Xnor => !(a ^ b),
                        _ => unreachable!(),
                    };
                    assert_eq!(kind.eval_bool([a, b]), expect, "{kind}({a},{b})");
                }
            }
        }
    }

    #[test]
    fn eval_v3_refines_eval_bool() {
        // On definite inputs the ternary evaluation matches the Boolean one,
        // for all kinds and arities 1..=3.
        for kind in ALL_GATE_KINDS {
            let arities: &[usize] = match kind.fixed_arity() {
                Some(1) => &[1],
                _ => &[1, 2, 3],
            };
            for &n in arities {
                for bits in 0..(1u32 << n) {
                    let bools: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                    let v3s: Vec<V3> = bools.iter().map(|&b| V3::from(b)).collect();
                    assert_eq!(
                        kind.eval_v3(v3s).to_bool(),
                        Some(kind.eval_bool(bools.iter().copied())),
                        "{kind} arity {n} bits {bits:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_v3_uses_controlling_values() {
        assert_eq!(GateKind::And.eval_v3([V3::Zero, V3::X, V3::X]), V3::Zero);
        assert_eq!(GateKind::Nand.eval_v3([V3::Zero, V3::X]), V3::One);
        assert_eq!(GateKind::Or.eval_v3([V3::X, V3::One]), V3::One);
        assert_eq!(GateKind::Nor.eval_v3([V3::X, V3::One]), V3::Zero);
        assert_eq!(GateKind::Xor.eval_v3([V3::One, V3::X]), V3::X);
    }

    #[test]
    fn eval_word_is_lanewise_eval_bool() {
        // Each bit lane of the word evaluation must equal the scalar
        // Boolean evaluation of that lane.
        let a = 0b1100u64;
        let b = 0b1010u64;
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let w = kind.eval_word(&[a, b]);
            for lane in 0..4 {
                let la = a >> lane & 1 == 1;
                let lb = b >> lane & 1 == 1;
                assert_eq!(
                    w >> lane & 1 == 1,
                    kind.eval_bool([la, lb]),
                    "{kind} lane {lane}"
                );
            }
        }
        assert_eq!(GateKind::Not.eval_word(&[a]) & 0xF, !a & 0xF);
        assert_eq!(GateKind::Buf.eval_word(&[a]), a);
    }

    #[test]
    fn eval_v5_propagates_transitions() {
        // A falling transition through AND with stable non-controlling side
        // input propagates; through NOR with a stable controlling side input
        // it is blocked.
        assert_eq!(GateKind::And.eval_v5([V5::D, V5::One]), V5::D);
        assert_eq!(GateKind::Nand.eval_v5([V5::D, V5::One]), V5::Dbar);
        assert_eq!(GateKind::Nor.eval_v5([V5::D, V5::One]), V5::Zero);
        assert_eq!(GateKind::Xor.eval_v5([V5::D, V5::Zero]), V5::D);
        assert_eq!(GateKind::Xor.eval_v5([V5::D, V5::D]), V5::Zero);
    }

    #[test]
    fn keyword_round_trip() {
        for kind in ALL_GATE_KINDS {
            let parsed: GateKind = kind.bench_keyword().parse().expect("round trip");
            assert_eq!(parsed, kind);
        }
        assert_eq!("nand".parse::<GateKind>(), Ok(GateKind::Nand));
        assert_eq!("BUF".parse::<GateKind>(), Ok(GateKind::Buf));
        assert!("MAJ".parse::<GateKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn not_rejects_two_inputs() {
        GateKind::Not.eval_bool([true, false]);
    }
}
