//! The ternary logic domain `{0, 1, X}`.

use std::fmt;

/// A ternary logic value: definite `0`, definite `1`, or unknown `X`.
///
/// `X` represents "unassigned / unknown". All operations are the strongest
/// monotone (Kleene) extensions of the Boolean functions: the result is
/// definite whenever the definite inputs alone determine it.
///
/// # Example
///
/// ```
/// use mcp_logic::V3;
///
/// assert_eq!(V3::Zero.and(V3::X), V3::Zero); // controlling 0 decides
/// assert_eq!(V3::One.and(V3::X), V3::X);     // non-controlling 1 does not
/// assert_eq!(!V3::X, V3::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum V3 {
    /// Definite logic 0.
    Zero,
    /// Definite logic 1.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
}

impl V3 {
    /// Returns `true` if the value is definite (`0` or `1`).
    ///
    /// ```
    /// use mcp_logic::V3;
    /// assert!(V3::Zero.is_definite());
    /// assert!(!V3::X.is_definite());
    /// ```
    #[inline]
    pub fn is_definite(self) -> bool {
        self != V3::X
    }

    /// Converts to `Option<bool>`: `Some` for definite values, `None` for `X`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// Ternary conjunction (Kleene AND).
    #[inline]
    pub fn and(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }

    /// Ternary disjunction (Kleene OR).
    #[inline]
    pub fn or(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }

    /// Ternary exclusive-or. `X` on either side yields `X`.
    #[inline]
    pub fn xor(self, rhs: V3) -> V3 {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => V3::from(a ^ b),
            _ => V3::X,
        }
    }

    /// Applies an output inversion when `invert` is true; `X` stays `X`.
    ///
    /// This is how NAND/NOR/XNOR are derived from AND/OR/XOR.
    #[inline]
    pub fn invert_if(self, invert: bool) -> V3 {
        if invert {
            !self
        } else {
            self
        }
    }
}

impl From<bool> for V3 {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }
}

impl std::ops::Not for V3 {
    type Output = V3;

    #[inline]
    fn not(self) -> V3 {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }
}

impl fmt::Display for V3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            V3::Zero => write!(f, "0"),
            V3::One => write!(f, "1"),
            V3::X => write!(f, "X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V3; 3] = [V3::Zero, V3::One, V3::X];

    #[test]
    fn not_is_involutive_on_definite() {
        assert_eq!(!!V3::Zero, V3::Zero);
        assert_eq!(!!V3::One, V3::One);
        assert_eq!(!V3::X, V3::X);
    }

    #[test]
    fn and_matches_kleene_table() {
        assert_eq!(V3::Zero.and(V3::X), V3::Zero);
        assert_eq!(V3::X.and(V3::Zero), V3::Zero);
        assert_eq!(V3::One.and(V3::One), V3::One);
        assert_eq!(V3::One.and(V3::X), V3::X);
        assert_eq!(V3::X.and(V3::X), V3::X);
    }

    #[test]
    fn or_matches_kleene_table() {
        assert_eq!(V3::One.or(V3::X), V3::One);
        assert_eq!(V3::X.or(V3::One), V3::One);
        assert_eq!(V3::Zero.or(V3::Zero), V3::Zero);
        assert_eq!(V3::Zero.or(V3::X), V3::X);
        assert_eq!(V3::X.or(V3::X), V3::X);
    }

    #[test]
    fn xor_is_strict_in_x() {
        for v in ALL {
            assert_eq!(v.xor(V3::X), V3::X);
            assert_eq!(V3::X.xor(v), V3::X);
        }
        assert_eq!(V3::One.xor(V3::Zero), V3::One);
        assert_eq!(V3::One.xor(V3::One), V3::Zero);
    }

    #[test]
    fn ops_are_monotone_refinements_of_bool() {
        // Whenever both operands are definite, the ternary ops agree with
        // the Boolean ops.
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(V3::from(a).and(V3::from(b)), V3::from(a & b));
                assert_eq!(V3::from(a).or(V3::from(b)), V3::from(a | b));
                assert_eq!(V3::from(a).xor(V3::from(b)), V3::from(a ^ b));
            }
        }
    }

    #[test]
    fn and_or_commute() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a.and(b)), (!a).or(!b));
                assert_eq!(!(a.or(b)), (!a).and(!b));
            }
        }
    }

    #[test]
    fn display_round_trips_meaning() {
        assert_eq!(V3::Zero.to_string(), "0");
        assert_eq!(V3::One.to_string(), "1");
        assert_eq!(V3::X.to_string(), "X");
    }

    #[test]
    fn default_is_unknown() {
        assert_eq!(V3::default(), V3::X);
    }
}
