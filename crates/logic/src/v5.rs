//! Roth's five-valued D-calculus `{0, 1, X, D, D̄}`.

use crate::V3;
use std::fmt;

/// A five-valued D-calculus value.
///
/// The D-calculus tracks a *pair* of Boolean values simultaneously: the
/// value in a "before" copy of the circuit and the value in an "after" copy.
/// `D` means `before = 1, after = 0`... historically `D` is
/// "good = 1 / faulty = 0"; here we adopt the transition reading used by the
/// hazard checker: `D` is a signal that is `1` before a clock edge and `0`
/// after it (a falling transition), `D̄` the rising transition. `0`/`1` are
/// stable values and `X` is unknown in at least one copy.
///
/// Composition is component-wise Boolean algebra on the pair, with `X`
/// absorbing as in [`V3`].
///
/// # Example
///
/// ```
/// use mcp_logic::V5;
///
/// // A falling transition through an inverter becomes a rising one.
/// assert_eq!(!V5::D, V5::Dbar);
/// // A stable controlling 0 blocks a transition at an AND gate.
/// assert_eq!(V5::D.and(V5::Zero), V5::Zero);
/// // A stable non-controlling 1 lets it through.
/// assert_eq!(V5::D.and(V5::One), V5::D);
/// // Two opposite transitions reconverging at an AND may glitch, but their
/// // settled composition is a stable 0.
/// assert_eq!(V5::D.and(V5::Dbar), V5::Zero);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum V5 {
    /// Stable 0 in both copies.
    Zero,
    /// Stable 1 in both copies.
    One,
    /// Unknown in at least one copy.
    #[default]
    X,
    /// `1` before / `0` after (falling transition).
    D,
    /// `0` before / `1` after (rising transition).
    Dbar,
}

impl V5 {
    /// Decomposes into the (before, after) component pair.
    #[inline]
    pub fn components(self) -> (V3, V3) {
        match self {
            V5::Zero => (V3::Zero, V3::Zero),
            V5::One => (V3::One, V3::One),
            V5::X => (V3::X, V3::X),
            V5::D => (V3::One, V3::Zero),
            V5::Dbar => (V3::Zero, V3::One),
        }
    }

    /// Recomposes a value from (before, after) components.
    ///
    /// Any `X` component makes the result `X` — the calculus does not track
    /// half-known pairs.
    #[inline]
    pub fn from_components(before: V3, after: V3) -> V5 {
        match (before, after) {
            (V3::Zero, V3::Zero) => V5::Zero,
            (V3::One, V3::One) => V5::One,
            (V3::One, V3::Zero) => V5::D,
            (V3::Zero, V3::One) => V5::Dbar,
            _ => V5::X,
        }
    }

    /// Returns `true` for the transition values `D` and `D̄`.
    #[inline]
    pub fn is_transition(self) -> bool {
        matches!(self, V5::D | V5::Dbar)
    }

    /// Returns `true` for the stable definite values `0` and `1`.
    #[inline]
    pub fn is_stable(self) -> bool {
        matches!(self, V5::Zero | V5::One)
    }

    /// Five-valued conjunction (component-wise AND).
    #[inline]
    pub fn and(self, rhs: V5) -> V5 {
        let (a0, a1) = self.components();
        let (b0, b1) = rhs.components();
        V5::from_components(a0.and(b0), a1.and(b1))
    }

    /// Five-valued disjunction (component-wise OR).
    #[inline]
    pub fn or(self, rhs: V5) -> V5 {
        let (a0, a1) = self.components();
        let (b0, b1) = rhs.components();
        V5::from_components(a0.or(b0), a1.or(b1))
    }

    /// Five-valued exclusive-or (component-wise XOR).
    #[inline]
    pub fn xor(self, rhs: V5) -> V5 {
        let (a0, a1) = self.components();
        let (b0, b1) = rhs.components();
        V5::from_components(a0.xor(b0), a1.xor(b1))
    }

    /// Applies an output inversion when `invert` is true.
    #[inline]
    pub fn invert_if(self, invert: bool) -> V5 {
        if invert {
            !self
        } else {
            self
        }
    }
}

impl From<bool> for V5 {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            V5::One
        } else {
            V5::Zero
        }
    }
}

impl std::ops::Not for V5 {
    type Output = V5;

    #[inline]
    fn not(self) -> V5 {
        match self {
            V5::Zero => V5::One,
            V5::One => V5::Zero,
            V5::X => V5::X,
            V5::D => V5::Dbar,
            V5::Dbar => V5::D,
        }
    }
}

impl fmt::Display for V5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            V5::Zero => write!(f, "0"),
            V5::One => write!(f, "1"),
            V5::X => write!(f, "X"),
            V5::D => write!(f, "D"),
            V5::Dbar => write!(f, "D'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V5; 5] = [V5::Zero, V5::One, V5::X, V5::D, V5::Dbar];

    #[test]
    fn components_round_trip() {
        for v in ALL {
            let (b, a) = v.components();
            assert_eq!(V5::from_components(b, a), v);
        }
    }

    #[test]
    fn classic_roth_and_table_spot_checks() {
        assert_eq!(V5::D.and(V5::D), V5::D);
        assert_eq!(V5::D.and(V5::Dbar), V5::Zero);
        assert_eq!(V5::Dbar.and(V5::Dbar), V5::Dbar);
        assert_eq!(V5::D.and(V5::Zero), V5::Zero);
        assert_eq!(V5::D.and(V5::One), V5::D);
        // X with a transition: the settled value is unknown unless the
        // definite component is controlling in both copies — for AND with
        // X that never happens, so the result is X.
        assert_eq!(V5::D.and(V5::X), V5::X);
    }

    #[test]
    fn classic_roth_or_table_spot_checks() {
        assert_eq!(V5::D.or(V5::Dbar), V5::One);
        assert_eq!(V5::D.or(V5::Zero), V5::D);
        assert_eq!(V5::D.or(V5::One), V5::One);
        assert_eq!(V5::Dbar.or(V5::Dbar), V5::Dbar);
    }

    #[test]
    fn xor_of_equal_transitions_is_stable_zero() {
        assert_eq!(V5::D.xor(V5::D), V5::Zero);
        assert_eq!(V5::D.xor(V5::Dbar), V5::One);
        assert_eq!(V5::D.xor(V5::Zero), V5::D);
        assert_eq!(V5::D.xor(V5::One), V5::Dbar);
    }

    #[test]
    fn not_swaps_transitions() {
        assert_eq!(!V5::D, V5::Dbar);
        assert_eq!(!V5::Dbar, V5::D);
        assert_eq!(!V5::X, V5::X);
    }

    #[test]
    fn ops_agree_with_componentwise_v3() {
        // Exhaustive consistency check against the defining decomposition.
        for a in ALL {
            for b in ALL {
                let (a0, a1) = a.components();
                let (b0, b1) = b.components();
                assert_eq!(
                    a.and(b),
                    V5::from_components(a0.and(b0), a1.and(b1)),
                    "and({a}, {b})"
                );
                assert_eq!(
                    a.or(b),
                    V5::from_components(a0.or(b0), a1.or(b1)),
                    "or({a}, {b})"
                );
                assert_eq!(
                    a.xor(b),
                    V5::from_components(a0.xor(b0), a1.xor(b1)),
                    "xor({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn transition_predicates() {
        assert!(V5::D.is_transition());
        assert!(V5::Dbar.is_transition());
        assert!(!V5::X.is_transition());
        assert!(V5::Zero.is_stable());
        assert!(!V5::D.is_stable());
    }
}
