//! Pins the checked-in PR-1-era journal fixture against the ledger
//! readers: journals written before the run header, span events, slice
//! fields and the `resumed` flag existed must keep loading unchanged.
//!
//! The in-crate unit test covers the *shape* with a synthetic line; this
//! test covers the *artifact* — a real multi-line fixture file that must
//! never be regenerated, so reader drift against historical journals is
//! caught even if the unit test's literal is updated alongside the code.

use mcp_obs::{
    compare_artifacts, read_journal_file, read_ledger_file, read_ledger_resilient_file,
    CompareConfig,
};
use std::path::PathBuf;

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pr1_journal.ndjson")
}

#[test]
fn the_pr1_fixture_loads_as_a_journal_with_defaulted_fields() {
    let events = read_journal_file(fixture()).expect("PR-1 journal parses");
    assert_eq!(events.len(), 5);

    // Every record predates the slice/resume fields: all defaulted.
    for e in &events {
        assert_eq!(e.slice_nodes, None, "pair ({}, {})", e.src, e.dst);
        assert_eq!(e.slice_vars, None, "pair ({}, {})", e.src, e.dst);
        assert!(!e.resumed, "pair ({}, {})", e.src, e.dst);
    }

    // Spot-check the payloads survived: the self-loop implication verdict
    // with both contradiction assignments, and the sim drop word.
    assert_eq!((events[0].src, events[0].dst), (0, 0));
    assert_eq!(events[0].class, "multi");
    assert_eq!(events[0].assignments.len(), 2);
    assert!(events[0]
        .assignments
        .iter()
        .all(|a| a.outcome == "contradiction"));
    assert_eq!(events[1].step, "random_sim");
    assert_eq!(events[1].sim_word, Some(3));
    assert_eq!(events[1].engine, None);
    assert_eq!(events[3].engine.as_deref(), Some("atpg"));
    assert_eq!(events[3].micros, 840);
}

#[test]
fn the_pr1_fixture_loads_as_a_headerless_ledger() {
    for ledger in [
        read_ledger_file(fixture()).expect("strict read"),
        read_ledger_resilient_file(fixture()).expect("resilient read"),
    ] {
        assert_eq!(ledger.header, None, "PR-1 journals carry no run header");
        assert!(ledger.spans.is_empty(), "PR-1 journals carry no spans");
        assert_eq!(ledger.events.len(), 5);
    }
}

#[test]
fn the_pr1_fixture_feeds_the_compare_gate() {
    // `stats --compare` must accept old journals on either side: compared
    // against itself the fixture reports no drift at all.
    let text = std::fs::read_to_string(fixture()).expect("fixture readable");
    let cmp = compare_artifacts(&text, &text, CompareConfig::default()).expect("old vs old");
    assert_eq!(cmp.regressions(), 0);
    assert!(
        cmp.render().contains("no counter differences"),
        "got: {}",
        cmp.render()
    );
}
