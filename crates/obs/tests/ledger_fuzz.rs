//! Property-based fuzzing of ledger ingestion.
//!
//! The resume and merge paths trust [`mcp_obs::read_ledger_resilient`]
//! to turn whatever a crashed (or hostile) process left on disk into
//! either a clean resume point or a typed error. These properties pin
//! that contract against the failure shapes sharded runs actually
//! produce: truncated final lines, duplicated or interleaved events,
//! and corrupt JSON. Two things must never happen: a panic, or silent
//! loss of a verdict that was durably written before the corruption
//! point.

use mcp_obs::{
    read_ledger, read_ledger_resilient, run_digest, PairEvent, RunHeader, SpanEvent, LEDGER_VERSION,
};
use proptest::prelude::*;

fn event(src: usize, dst: usize, resolved: bool) -> PairEvent {
    PairEvent {
        src,
        dst,
        step: if resolved {
            "implication"
        } else {
            "random_sim"
        }
        .to_owned(),
        class: if resolved { "multi" } else { "single" }.to_owned(),
        engine: resolved.then(|| "implication".to_owned()),
        assignments: Vec::new(),
        micros: 1,
        sim_word: (!resolved).then_some(0),
        slice_nodes: None,
        slice_vars: None,
        resumed: false,
        static_pass: false,
        cached: false,
        kernel: (!resolved).then(|| "tape".to_owned()),
    }
}

fn header(shard_index: u64, shard_count: u64) -> RunHeader {
    RunHeader {
        ledger: LEDGER_VERSION,
        circuit: "fuzz".to_owned(),
        netlist_hash: 7,
        config_fingerprint: 9,
        pair_digest: 13,
        pairs: 32,
        shard_index,
        shard_count,
        run_digest: run_digest(7, 9, 13),
    }
}

/// A syntactically valid ledger built from the generated shape: header,
/// a run of pair events (with optional duplicates), and a span line.
fn render(events: &[(usize, usize, bool)], dup_every: usize, with_span: bool) -> String {
    let mut out = serde_json::to_string(&header(1, 4)).unwrap() + "\n";
    for (k, &(src, dst, resolved)) in events.iter().enumerate() {
        let line = serde_json::to_string(&event(src, dst, resolved)).unwrap();
        out.push_str(&line);
        out.push('\n');
        // A resumed-then-killed-then-resumed shard re-journals restored
        // verdicts, so real ledgers contain duplicates; ingestion must
        // keep them all (last-write-wins is the resume planner's job).
        if dup_every != 0 && k % dup_every == 0 {
            out.push_str(&line);
            out.push('\n');
        }
    }
    if with_span {
        let span = SpanEvent {
            span: "analyze/pairs".to_owned(),
            tid: 1,
            start_us: 0,
            dur_us: 5,
        };
        out.push_str(&serde_json::to_string(&span).unwrap());
        out.push('\n');
    }
    out
}

fn shape_strategy() -> impl Strategy<Value = (Vec<(usize, usize, bool)>, usize, bool)> {
    (
        proptest::collection::vec((0usize..12, 0usize..12, any::<bool>()), 0..24),
        0usize..4,
        any::<bool>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncating_the_final_line_never_loses_a_durable_verdict(
        (events, dup_every, with_span) in shape_strategy(),
        cut in 1usize..200,
    ) {
        let full = render(&events, dup_every, with_span);
        let parsed = read_ledger(full.as_bytes()).expect("well-formed ledger parses strictly");
        prop_assert_eq!(parsed.header.as_ref(), Some(&header(1, 4)));

        // Tear the final line at an arbitrary byte offset strictly
        // inside its JSON (a cut at or past the closing brace is not a
        // torn line at all), the way a SIGKILL mid-writeln does.
        let last_start = full[..full.len() - 1].rfind('\n').map_or(0, |p| p + 1);
        let last_len = full.len() - last_start;
        let torn_len = last_start + 1 + cut % (last_len - 2);
        let torn = &full[..torn_len];

        let ledger = read_ledger_resilient(torn.as_bytes())
            .expect("a torn final line is the one corruption resilient mode accepts");
        // Every line that was durably completed before the tear is
        // still there: the only loss is the torn line itself.
        let durable = full[..torn_len].matches('\n').count();
        let kept = ledger.header.iter().count() + ledger.spans.len() + ledger.events.len();
        prop_assert_eq!(kept, durable, "durable lines lost during resilient ingestion");
    }

    #[test]
    fn corrupt_interior_lines_give_a_typed_error_not_a_panic(
        (events, dup_every, with_span) in shape_strategy(),
        garbage in prop_oneof![
            Just("not json".to_owned()),
            Just("{\"src\":1}".to_owned()),
            Just("{\"ledger\":\"v2\"}".to_owned()),
            Just("[1,2,3]".to_owned()),
            Just("{\"src\":0,\"dst\":1,\"step\":3}".to_owned()),
        ],
        at in 0usize..16,
    ) {
        let full = render(&events, dup_every, with_span);
        let mut lines: Vec<&str> = full.lines().collect();
        let garbage_at = at % lines.len();
        lines.insert(garbage_at, &garbage);
        let corrupt = lines.join("\n") + "\n";
        // Both readers refuse mid-file garbage with an io::Error; the
        // resilient reader only forgives the final line.
        let strict = read_ledger(corrupt.as_bytes());
        prop_assert!(strict.is_err());
        if garbage_at + 1 == lines.len() {
            prop_assert!(read_ledger_resilient(corrupt.as_bytes()).is_ok());
        } else {
            let err = read_ledger_resilient(corrupt.as_bytes());
            prop_assert!(err.is_err());
            prop_assert!(
                err.unwrap_err().to_string().contains("journal line"),
                "corruption errors must name the offending line"
            );
        }
    }

    #[test]
    fn interleaved_shard_ledgers_keep_every_event(
        (events_a, dup_a, _) in shape_strategy(),
        (events_b, dup_b, _) in shape_strategy(),
        stripe in 1usize..5,
    ) {
        // Concatenating or striping two shard journals (as a naive
        // collector might) still yields every event: ingestion is
        // order-insensitive and duplication-tolerant. Soundness checks
        // (foreign shards, conflicting verdicts) belong to the merge
        // planner, which needs the full event set to make them.
        let a = render(&events_a, dup_a, false);
        let b = render(&events_b, dup_b, false);
        let la = read_ledger(a.as_bytes()).expect("parses");
        let lb = read_ledger(b.as_bytes()).expect("parses");

        let lines_a: Vec<&str> = a.lines().collect();
        let lines_b: Vec<&str> = b.lines().collect();
        let mut woven = Vec::new();
        let (mut ia, mut ib) = (0, 0);
        while ia < lines_a.len() || ib < lines_b.len() {
            for _ in 0..stripe {
                if ia < lines_a.len() {
                    woven.push(lines_a[ia]);
                    ia += 1;
                }
            }
            for _ in 0..stripe {
                if ib < lines_b.len() {
                    woven.push(lines_b[ib]);
                    ib += 1;
                }
            }
        }
        let woven = woven.join("\n") + "\n";
        let ledger = read_ledger(woven.as_bytes()).expect("interleaved ledgers parse");
        prop_assert_eq!(ledger.events.len(), la.events.len() + lb.events.len());
        // The header slot is last-write-wins; with identical shard
        // headers that is still the shared header.
        prop_assert!(ledger.header.is_some());
    }
}
