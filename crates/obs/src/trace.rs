//! Timestamped span capture and Chrome trace-event export.
//!
//! [`Timers`](crate::Timers) answers "how much total time went where";
//! this module answers "when, and on which thread". The pipeline runs a
//! [`Tracer`] alongside the timers, collecting one [`SpanEvent`] per
//! entered span with begin/end timestamps relative to the tracer's
//! epoch and a per-thread track id. `mcpath trace --format chrome`
//! turns those into trace-event JSON loadable in Perfetto or
//! `chrome://tracing`.

use crate::ledger::SpanEvent;
use crate::timers::SpanStat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TRACE_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's trace track id.
///
/// Ids are handed out process-wide in first-use order, so the main
/// thread and every scoped pair-loop worker get distinct tracks — which
/// is exactly what makes the work-stealing schedule visible in a trace
/// viewer. They are *not* OS thread ids; they are stable only within a
/// process lifetime.
pub fn current_tid() -> u64 {
    TRACE_TID.with(|t| *t)
}

/// Collector of timestamped spans, shared by reference across worker
/// threads. All timestamps are microseconds since the tracer's
/// construction (its *epoch*), so the resulting events are
/// self-contained without wall-clock anchoring.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    spans: Mutex<Vec<SpanEvent>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a tracer whose epoch is now.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Enters a timestamped span at `path` on the calling thread's
    /// track; the returned guard records the span when dropped.
    pub fn span(&self, path: impl Into<String>) -> TraceGuard<'_> {
        TraceGuard {
            tracer: self,
            path: path.into(),
            start: Instant::now(),
            done: false,
        }
    }

    /// Records a finished span directly.
    pub fn record(&self, span: SpanEvent) {
        self.spans.lock().expect("tracer poisoned").push(span);
    }

    /// Takes every span recorded so far, leaving the tracer empty.
    pub fn drain(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.spans.lock().expect("tracer poisoned"))
    }

    fn finish(&self, path: &str, start: Instant) {
        let start_us = start.duration_since(self.epoch).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        self.record(SpanEvent {
            span: path.to_owned(),
            tid: current_tid(),
            start_us,
            dur_us,
        });
    }
}

/// RAII guard of one entered trace span; see [`Tracer::span`].
#[must_use = "dropping the guard immediately records a ~zero-length span"]
#[derive(Debug)]
pub struct TraceGuard<'t> {
    tracer: &'t Tracer,
    path: String,
    start: Instant,
    done: bool,
}

impl TraceGuard<'_> {
    /// Ends the span now.
    pub fn stop(mut self) {
        self.tracer.finish(&self.path, self.start);
        self.done = true;
    }
}

impl Drop for TraceGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.tracer.finish(&self.path, self.start);
        }
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

/// One complete (`ph: "X"`) event of the Chrome trace-event format.
///
/// Field names are dictated by the format, hence the non-snake-case
/// idents (the vendored serde stand-in has no `rename`, so the Rust
/// field name *is* the JSON key).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event name — the full span path.
    pub name: String,
    /// Category — the span path's first segment, used by viewers for
    /// filtering and coloring.
    pub cat: String,
    /// Phase; always `"X"` (complete event with explicit duration).
    pub ph: String,
    /// Begin timestamp in microseconds.
    pub ts: u64,
    /// Duration in microseconds.
    pub dur: u64,
    /// Process id; always 1 (the analysis is single-process).
    pub pid: u64,
    /// Thread track id (see [`current_tid`]).
    pub tid: u64,
}

/// A Chrome trace-event JSON document (the "JSON object format").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(non_snake_case)] // field names dictated by the trace-event format
pub struct ChromeTrace {
    /// The events, one per captured span.
    pub traceEvents: Vec<ChromeEvent>,
    /// Display unit hint for viewers; always `"ms"`.
    pub displayTimeUnit: String,
}

fn category_of(path: &str) -> String {
    path.split('/').next().unwrap_or(path).to_owned()
}

/// Converts captured timestamped spans into a Chrome trace document.
pub fn chrome_trace(spans: &[SpanEvent]) -> ChromeTrace {
    let events = spans
        .iter()
        .map(|s| ChromeEvent {
            name: s.span.clone(),
            cat: category_of(&s.span),
            ph: "X".to_owned(),
            ts: s.start_us,
            dur: s.dur_us,
            pid: 1,
            tid: s.tid,
        })
        .collect();
    ChromeTrace {
        traceEvents: events,
        displayTimeUnit: "ms".to_owned(),
    }
}

/// Degraded export for artifacts that only carry flat span *totals*
/// (saved reports, pre-v2 snapshots): synthesizes one event per span
/// path, laid out back-to-back on a single track in path order. Real
/// begin times are gone, so this shows proportions, not schedule.
pub fn chrome_trace_from_totals(spans: &BTreeMap<String, SpanStat>) -> ChromeTrace {
    let mut events = Vec::with_capacity(spans.len());
    let mut ts = 0u64;
    for (path, stat) in spans {
        let dur = stat.total.as_micros() as u64;
        events.push(ChromeEvent {
            name: path.clone(),
            cat: category_of(path),
            ph: "X".to_owned(),
            ts,
            dur,
            pid: 1,
            tid: 0,
        });
        ts += dur;
    }
    ChromeTrace {
        traceEvents: events,
        displayTimeUnit: "ms".to_owned(),
    }
}
