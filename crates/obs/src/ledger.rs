//! The versioned run ledger: NDJSON journal format, sinks, and readers.
//!
//! A ledger is an append-only NDJSON file with three line types, each a
//! self-describing JSON object:
//!
//! - a [`RunHeader`] (first line, format v2+) carrying the ledger format
//!   version and the digests that make resume safe — netlist content
//!   hash, config fingerprint, and candidate-pair-set digest;
//! - [`PairEvent`] lines, one per resolved FF pair, appended (and
//!   flushed) the moment the verdict lands so a SIGKILL loses at most
//!   the line being written;
//! - [`SpanEvent`] lines, written at end of run, carrying the timestamped
//!   span tree for trace export.
//!
//! PR-1-era journals are bare streams of [`PairEvent`]s with neither
//! header nor spans; every reader here accepts them.

use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Current ledger format version, written into [`RunHeader::ledger`].
pub const LEDGER_VERSION: u64 = 2;

/// Process exit status of the deterministic fault-injection hook: a
/// sink whose [`FailAfter`] budget is exhausted terminates the process
/// with this code, so kill/resume tests can tell an injected crash from
/// an ordinary failure.
pub const FAULT_EXIT_CODE: i32 = 86;

/// Environment variable read by [`FileSink::create`]: when set to an
/// integer `k`, the sink aborts the process (exit [`FAULT_EXIT_CODE`])
/// on the `k+1`-th journal write, after exactly `k` lines have become
/// durable. This is the test tier's stand-in for a SIGKILL landing at a
/// deterministic point in the run.
pub const FAIL_AFTER_ENV: &str = "MCPATH_FAIL_AFTER_EVENTS";

/// 64-bit FNV-1a over a byte string — the repo-wide content hash for
/// ledger digests. Chosen for being dependency-free and stable across
/// platforms, not for collision resistance.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest identifying a run's full configuration identity: FNV-1a over
/// the little-endian bytes of the netlist hash, the config fingerprint,
/// and the candidate-pair-set digest, in that order. Every shard of one
/// logical run shares this value, so `merge` can reject a ledger that
/// belongs to a different run even when shard indices happen to line up.
pub fn run_digest(netlist_hash: u64, config_fingerprint: u64, pair_digest: u64) -> u64 {
    let mut bytes = [0u8; 24];
    bytes[..8].copy_from_slice(&netlist_hash.to_le_bytes());
    bytes[8..16].copy_from_slice(&config_fingerprint.to_le_bytes());
    bytes[16..].copy_from_slice(&pair_digest.to_le_bytes());
    fnv1a(&bytes)
}

/// First line of a v2+ ledger: identifies the run so `--resume` can
/// refuse to splice verdicts from a different circuit or config.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHeader {
    /// Ledger format version ([`LEDGER_VERSION`] when written by this
    /// build). Doubles as the line-type discriminator: no other ledger
    /// line has a `ledger` field.
    pub ledger: u64,
    /// Circuit name, for human-readable mismatch diagnostics (the
    /// authoritative identity check is `netlist_hash`).
    pub circuit: String,
    /// FNV-1a hash of the netlist's canonical BENCH serialization.
    pub netlist_hash: u64,
    /// Fingerprint of the verdict-affecting `McConfig` fields.
    pub config_fingerprint: u64,
    /// Digest of the ordered candidate pair set the run committed to.
    /// Shard ledgers commit to the **full** candidate set — shard
    /// identity lives in the dedicated fields below — so any shard of a
    /// run is digest-compatible with its siblings and with an unsharded
    /// run of the same config.
    pub pair_digest: u64,
    /// Number of candidate pairs in that set.
    pub pairs: u64,
    /// 0-based shard index, or 0 for an unsharded run. Pre-shard ledgers
    /// deserialize to the unsharded `(0, 0)` identity.
    #[serde(default)]
    pub shard_index: u64,
    /// Total shard count, or 0 for an unsharded run.
    #[serde(default)]
    pub shard_count: u64,
    /// Parent-run digest (see [`run_digest`]): identical across every
    /// shard of one logical run. 0 in pre-shard ledgers.
    #[serde(default)]
    pub run_digest: u64,
}

impl RunHeader {
    /// The run digest this header's identity fields imply. `merge`
    /// recomputes it per shard and refuses ledgers whose recorded
    /// [`RunHeader::run_digest`] disagrees (a foreign or doctored
    /// journal).
    pub fn expected_run_digest(&self) -> u64 {
        run_digest(self.netlist_hash, self.config_fingerprint, self.pair_digest)
    }
}

/// One timestamped span: a node of the run's span tree, written to the
/// ledger at end of run and exported by `mcpath trace`.
///
/// Timestamps are microseconds relative to the run's trace epoch (the
/// construction of the tracer), so a ledger is self-contained without
/// any wall-clock anchoring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Hierarchical `/`-separated span path. Doubles as the line-type
    /// discriminator: no other ledger line has a `span` field.
    pub span: String,
    /// Id of the OS thread the span ran on (stable within one run).
    pub tid: u64,
    /// Begin timestamp, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Outcome of one of the four value assignments the implication step
/// tries on a pair, or of a downstream search on that assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentEvent {
    /// Value assigned to the source FF at time 0.
    pub src_value: bool,
    /// Value assigned to the destination FF input at the sink time.
    pub dst_value: bool,
    /// What happened: `contradiction`, `implied_violation`, `witness`,
    /// `unsat`, or `aborted`.
    pub outcome: String,
}

fn is_false(b: &bool) -> bool {
    !*b
}

/// One journal record: how a single FF pair was resolved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairEvent {
    /// Source FF index.
    pub src: usize,
    /// Destination FF index.
    pub dst: usize,
    /// Pipeline step that resolved the pair (`structural`, `random_sim`,
    /// `implication`, `atpg`).
    pub step: String,
    /// Final classification: `multi`, `single`, or `unknown`.
    pub class: String,
    /// Decision engine that produced the classification, if any.
    pub engine: Option<String>,
    /// Per-assignment outcomes from the implication/search step.
    pub assignments: Vec<AssignmentEvent>,
    /// Wall-clock microseconds spent on this pair.
    pub micros: u64,
    /// For pairs dropped by the random-simulation prefilter: the 0-based
    /// index of the 64-pattern word whose lane witnessed the violation —
    /// the per-pair drop cause (simulation time is spent in bulk, so
    /// `micros` stays 0 for these records). `None` for every other step.
    pub sim_word: Option<u64>,
    /// Node count of the sink-group slice this pair ran on. `None` when
    /// slicing was off or the resolving step ran no engine.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slice_nodes: Option<u64>,
    /// Variable count of that slice (free variables for implication,
    /// encoded CNF variables for SAT). `None` as for `slice_nodes`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slice_vars: Option<u64>,
    /// `true` when this verdict was restored from a prior run's ledger
    /// by `--resume` instead of being computed in this run.
    #[serde(default, skip_serializing_if = "is_false")]
    pub resumed: bool,
    /// `true` when the static dataflow pre-pass resolved this pair
    /// before the sim prefilter or any engine ran. (Named `static_pass`
    /// because `static` is a Rust keyword.)
    #[serde(default, skip_serializing_if = "is_false")]
    pub static_pass: bool,
    /// `true` when this verdict was spliced from the content-addressed
    /// artifact store (a warm rerun, or a clean ECO group) instead of
    /// being computed in this run. Unlike `resumed` replays, cached
    /// splices carry no `engine` tag: the run performed zero engine
    /// work for them.
    #[serde(default, skip_serializing_if = "is_false")]
    pub cached: bool,
    /// For `random_sim` drops: which kernel tier simulated the witness
    /// (`jit-avx2`, `jit-scalar`, `fused`, `tape`, `reference`). `None`
    /// for every other step — cached splices and static-resolved pairs
    /// simulate zero words, and tagging only real sim work is what lets
    /// per-tier throughput attribution exclude them.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kernel: Option<String>,
}

/// Receiver of ledger records.
///
/// Implementations must be callable concurrently from the pair-loop
/// worker threads.
pub trait ObsSink: Send + Sync {
    /// Records one per-pair event.
    fn record(&self, event: &PairEvent);

    /// Records the run header. Called at most once, before any pair
    /// event. The default discards it (in-memory sinks that only feed
    /// `stats` aggregation don't need run identity).
    fn record_header(&self, _header: &RunHeader) {}

    /// Records one timestamped span. Called after the pair loop
    /// completes. The default discards it.
    fn record_span(&self, _span: &SpanEvent) {}

    /// Whether events will actually be kept. Hot paths check this before
    /// building [`PairEvent`]s, so a disabled sink costs one virtual
    /// call per pair and nothing per assignment.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes buffered events to durable storage, if any.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Delegation through `Arc`, so a caller can hand a sink to an
/// `ObsCtx` (which takes ownership of a boxed sink) while keeping a
/// handle to read it back afterwards — the pattern resume and ledger
/// tests rely on.
impl<S: ObsSink + ?Sized> ObsSink for std::sync::Arc<S> {
    fn record(&self, event: &PairEvent) {
        (**self).record(event);
    }

    fn record_header(&self, header: &RunHeader) {
        (**self).record_header(header);
    }

    fn record_span(&self, span: &SpanEvent) {
        (**self).record_span(span);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn flush(&self) -> io::Result<()> {
        (**self).flush()
    }
}

/// Default sink: drops everything and reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn record(&self, _event: &PairEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Deterministic fault-injection budget: admits exactly `limit` journal
/// writes, then refuses every further one.
///
/// The counter is checked *before* the write, so a sink honoring the
/// budget leaves exactly `limit` durable lines behind and dies on the
/// `limit+1`-th attempt — the deterministic stand-in for a SIGKILL that
/// kill/resume tests need (a real signal lands at a scheduler-dependent
/// line). The budget itself only counts; the caller decides what
/// refusal means ([`FileSink`] exits with [`FAULT_EXIT_CODE`]).
#[derive(Debug)]
pub struct FailAfter {
    limit: u64,
    count: AtomicU64,
}

impl FailAfter {
    /// A budget admitting exactly `limit` writes.
    pub fn new(limit: u64) -> Self {
        FailAfter {
            limit,
            count: AtomicU64::new(0),
        }
    }

    /// Reads the budget from [`FAIL_AFTER_ENV`], or `None` when the
    /// variable is unset or not an integer (a typo disables the hook
    /// rather than silently killing a production run at line 0).
    pub fn from_env() -> Option<Self> {
        Self::from_value(&std::env::var(FAIL_AFTER_ENV).ok()?)
    }

    /// Parses a budget from the env-var text (testable core of
    /// [`from_env`](Self::from_env)).
    pub fn from_value(value: &str) -> Option<Self> {
        value.trim().parse().ok().map(Self::new)
    }

    /// Claims one write slot. Returns `true` while the budget lasts;
    /// the first `limit` calls — under any thread interleaving — get
    /// `true`, every later call gets `false`.
    pub fn admit(&self) -> bool {
        self.count.fetch_add(1, Ordering::SeqCst) < self.limit
    }

    /// Writes admitted so far (saturating at the limit).
    pub fn admitted(&self) -> u64 {
        self.count.load(Ordering::SeqCst).min(self.limit)
    }
}

/// NDJSON ledger file sink: one JSON object per line.
///
/// Every record is flushed to the OS as soon as it is written — the
/// whole point of the ledger is surviving a SIGKILL, and a `BufWriter`
/// holding completed verdicts in user space would defeat it. At worst
/// the final line is torn mid-write; [`read_ledger_resilient`] tolerates
/// exactly that.
///
/// When [`FAIL_AFTER_ENV`] is set (or a [`FailAfter`] is attached via
/// [`FileSink::with_fault`]), the sink becomes the fault-injection
/// surface: once the budget is exhausted it flushes what it has and
/// terminates the process with [`FAULT_EXIT_CODE`], simulating a crash
/// at a deterministic journal position.
#[derive(Debug)]
pub struct FileSink {
    out: Mutex<BufWriter<File>>,
    fault: Option<FailAfter>,
}

impl FileSink {
    /// Creates (truncates) the ledger file at `path`, arming the
    /// fault-injection hook when [`FAIL_AFTER_ENV`] is set.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::with_fault(File::create(path)?, FailAfter::from_env()))
    }

    /// Wraps an already-open file, with an explicit (or no) fault
    /// budget — the constructor tests use to exercise the hook without
    /// touching process-global environment.
    pub fn with_fault(file: File, fault: Option<FailAfter>) -> Self {
        FileSink {
            out: Mutex::new(BufWriter::new(file)),
            fault,
        }
    }

    fn write_line(&self, line: &str) {
        if let Some(fault) = &self.fault {
            if !fault.admit() {
                // Injected crash: make the admitted lines durable, then
                // die without unwinding — like the SIGKILL this models,
                // nothing downstream gets to run.
                let _ = self.flush();
                std::process::exit(FAULT_EXIT_CODE);
            }
        }
        let mut out = self.out.lock().expect("file sink poisoned");
        // An exhausted disk mid-journal should not kill the analysis;
        // the error resurfaces on the explicit end-of-run flush.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl ObsSink for FileSink {
    fn record(&self, event: &PairEvent) {
        let line = serde_json::to_string(event).expect("PairEvent serializes");
        self.write_line(&line);
    }

    fn record_header(&self, header: &RunHeader) {
        let line = serde_json::to_string(header).expect("RunHeader serializes");
        self.write_line(&line);
    }

    fn record_span(&self, span: &SpanEvent) {
        let line = serde_json::to_string(span).expect("SpanEvent serializes");
        self.write_line(&line);
    }

    fn flush(&self) -> io::Result<()> {
        self.out.lock().expect("file sink poisoned").flush()
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// In-memory sink for tests and for `mcpath stats` post-processing.
#[derive(Debug, Default)]
pub struct MemSink {
    header: Mutex<Option<RunHeader>>,
    spans: Mutex<Vec<SpanEvent>>,
    events: Mutex<Vec<PairEvent>>,
}

impl MemSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes all recorded pair events, leaving the sink empty.
    pub fn drain(&self) -> Vec<PairEvent> {
        std::mem::take(&mut self.events.lock().expect("mem sink poisoned"))
    }

    /// Takes the recorded run header, if one was recorded.
    pub fn take_header(&self) -> Option<RunHeader> {
        self.header.lock().expect("mem sink poisoned").take()
    }

    /// Takes all recorded span events.
    pub fn drain_spans(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.spans.lock().expect("mem sink poisoned"))
    }
}

impl ObsSink for MemSink {
    fn record(&self, event: &PairEvent) {
        self.events
            .lock()
            .expect("mem sink poisoned")
            .push(event.clone());
    }

    fn record_header(&self, header: &RunHeader) {
        *self.header.lock().expect("mem sink poisoned") = Some(header.clone());
    }

    fn record_span(&self, span: &SpanEvent) {
        self.spans
            .lock()
            .expect("mem sink poisoned")
            .push(span.clone());
    }
}

/// A fully parsed ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// The run header — `None` for PR-1-era journals, which predate it.
    pub header: Option<RunHeader>,
    /// The timestamped span tree (empty for PR-1-era journals, and for
    /// runs killed before the end-of-run span dump).
    pub spans: Vec<SpanEvent>,
    /// Per-pair verdicts, in the order they were appended.
    pub events: Vec<PairEvent>,
}

/// One parsed ledger line.
enum Line {
    Header(RunHeader),
    Span(SpanEvent),
    Pair(PairEvent),
}

/// Classifies one non-blank ledger line by trying each record type in
/// discriminator order: `ledger` field → header, `span` field → span,
/// otherwise a pair event (whose parse error is the one reported, since
/// bare pair streams are the common legacy case).
fn parse_line(line: &str) -> Result<Line, serde_json::Error> {
    if let Ok(h) = serde_json::from_str::<RunHeader>(line) {
        return Ok(Line::Header(h));
    }
    if let Ok(s) = serde_json::from_str::<SpanEvent>(line) {
        return Ok(Line::Span(s));
    }
    serde_json::from_str::<PairEvent>(line).map(Line::Pair)
}

fn read_ledger_impl(reader: impl io::Read, resilient: bool) -> io::Result<Ledger> {
    let mut ledger = Ledger::default();
    let mut lines = BufReader::new(reader).lines().enumerate().peekable();
    while let Some((lineno, line)) = lines.next() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Ok(Line::Header(h)) => ledger.header = Some(h),
            Ok(Line::Span(s)) => ledger.spans.push(s),
            Ok(Line::Pair(p)) => ledger.events.push(p),
            Err(e) => {
                // A SIGKILL can tear the line being written; in resilient
                // mode tolerate a malformed FINAL line (and only that —
                // garbage mid-file still means a corrupt ledger).
                let is_last = lines.peek().is_none();
                if resilient && is_last {
                    break;
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journal line {}: {e}", lineno + 1),
                ));
            }
        }
    }
    Ok(ledger)
}

/// Parses a complete ledger (header, spans, pair events) from NDJSON.
/// Blank lines are ignored; malformed lines are errors. Accepts both
/// v2 ledgers and PR-1-era bare pair-event journals (`header` comes
/// back `None` for the latter).
pub fn read_ledger(reader: impl io::Read) -> io::Result<Ledger> {
    read_ledger_impl(reader, false)
}

/// Opens and parses the ledger file at `path`; see [`read_ledger`].
pub fn read_ledger_file(path: impl AsRef<Path>) -> io::Result<Ledger> {
    read_ledger(File::open(path)?)
}

/// Like [`read_ledger`], but tolerates a malformed *final* line — the
/// torn write a SIGKILL mid-`writeln!` leaves behind. This is the reader
/// `--resume` uses; garbage anywhere else is still an error.
pub fn read_ledger_resilient(reader: impl io::Read) -> io::Result<Ledger> {
    read_ledger_impl(reader, true)
}

/// Opens and resiliently parses the ledger file at `path`; see
/// [`read_ledger_resilient`].
pub fn read_ledger_resilient_file(path: impl AsRef<Path>) -> io::Result<Ledger> {
    read_ledger_resilient(File::open(path)?)
}

/// Parses an NDJSON journal back into its pair events, skipping header
/// and span lines. Blank lines are ignored; malformed lines are errors.
///
/// This is the aggregation-oriented reader behind `mcpath stats`; use
/// [`read_ledger`] when the header or spans matter.
pub fn read_journal(reader: impl io::Read) -> io::Result<Vec<PairEvent>> {
    read_ledger(reader).map(|l| l.events)
}

/// Opens and parses the NDJSON journal file at `path`.
pub fn read_journal_file(path: impl AsRef<Path>) -> io::Result<Vec<PairEvent>> {
    read_journal(File::open(path)?)
}
