//! Relaxed atomic engine counters and their serializable snapshots.

use crate::timers::SpanStat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One relaxed atomic counter.
///
/// Relaxed ordering is deliberate: counters are statistics, each update
/// is a single atomic RMW, and no other memory is published through
/// them.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises the counter to `n` if it is currently lower (for peak
    /// gauges like the BDD unique-table size).
    pub fn raise_to(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared live counters for every engine in the pipeline.
///
/// The pipeline flushes per-pair deltas in here from worker threads;
/// [`Metrics::counters`] takes the plain-integer snapshot.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Implication engine: definite values derived by propagation.
    pub implications: Counter,
    /// Implication engine: propagations that ended in a contradiction.
    pub contradictions: Counter,
    /// Implication engine: learned implications added by static learning.
    pub learned_implications: Counter,
    /// ATPG: decisions taken by the backtrack search.
    pub atpg_decisions: Counter,
    /// ATPG: backtracks performed.
    pub atpg_backtracks: Counter,
    /// ATPG: searches that hit the backtrack limit and aborted.
    pub atpg_aborts: Counter,
    /// SAT: decisions.
    pub sat_decisions: Counter,
    /// SAT: unit propagations.
    pub sat_propagations: Counter,
    /// SAT: conflicts.
    pub sat_conflicts: Counter,
    /// SAT: clauses learned from conflicts.
    pub sat_learned: Counter,
    /// SAT: restarts.
    pub sat_restarts: Counter,
    /// BDD: peak unique-table size over all per-pair managers.
    pub bdd_peak_nodes: Counter,
    /// BDD: apply/ITE cache lookups.
    pub bdd_cache_lookups: Counter,
    /// BDD: apply/ITE cache hits.
    pub bdd_cache_hits: Counter,
    /// Random simulation: 64-pattern words simulated.
    pub sim_words: Counter,
    /// Random simulation: candidate pairs dropped by the prefilter.
    pub sim_pairs_dropped: Counter,
    /// Random simulation: wide evaluation passes of the compiled tape
    /// kernel (each pass covers `lanes / 64` words). Zero when the
    /// prefilter ran on the graph-walking reference path.
    pub sim_passes: Counter,
    /// Random simulation: tape instructions executed by the compiled
    /// kernel (instructions per eval × evals). Zero on the reference
    /// path.
    pub sim_tape_ops: Counter,
    /// Random simulation: fused instructions executed (after NOT fusion
    /// and dead-slot elimination). Moves on the `fused` and `jit` kernel
    /// tiers only.
    pub sim_fused_ops: Counter,
    /// JIT kernel: native-code compilations performed (one per filter
    /// run that landed on the jit tier).
    pub jit_compiles: Counter,
    /// JIT kernel: bytes of machine code emitted.
    pub jit_bytes: Counter,
    /// JIT kernel: calls into jitted code (two per wide pass).
    pub jit_batches: Counter,
    /// Lint: rules executed over netlists.
    pub lint_rules_run: Counter,
    /// Lint: diagnostics (violations) reported by executed rules.
    pub lint_violations: Counter,
    /// Lint/dataflow: nodes visited building the shared analysis index
    /// (one Kleene fixpoint + one Tarjan pass + two backward sweeps per
    /// netlist — the traversals the rules used to repeat individually).
    pub lint_nodes_visited: Counter,
    /// Dataflow: nodes the ternary interpreter proved constant at the
    /// sequential fixpoint.
    pub dataflow_consts: Counter,
    /// Dataflow: Kleene rounds the FF widening needed to converge.
    pub dataflow_iters: Counter,
    /// Static pre-classification: candidate pairs resolved by the
    /// dataflow pass before any engine or the sim prefilter ran.
    pub static_resolved: Counter,
    /// Slicing: cone slices built (one per sink group in slice mode).
    pub slice_builds: Counter,
    /// Slicing: pairs served by an already-built sink-group slice
    /// (group size minus one, summed over groups).
    pub slice_cache_hits: Counter,
    /// Slicing: total nodes across all built slices (mean slice size =
    /// `slice_nodes / slice_builds`).
    pub slice_nodes: Counter,
    /// Slicing: total per-slice variables across all built slices — free
    /// variables for the implication engine, encoded CNF variables for
    /// the SAT engine.
    pub slice_vars: Counter,
    /// Slicing: largest slice built (node count).
    pub slice_nodes_peak: Counter,
    /// Resume: completed verdicts restored from a prior run's ledger
    /// instead of being re-verified. Zero on an uninterrupted run.
    pub resume_pairs_loaded: Counter,
    /// Sharding: surviving pairs this shard owns after the deterministic
    /// sink-group partition. Zero on an unsharded run.
    pub shard_pairs_owned: Counter,
    /// Sharding: surviving pairs assigned to other shards and skipped by
    /// this process. Zero on an unsharded run.
    pub shard_pairs_skipped: Counter,
    /// Artifact cache: store lookups that found a usable entry.
    pub cache_hits: Counter,
    /// Artifact cache: store lookups that found nothing (cold runs).
    pub cache_misses: Counter,
    /// Artifact cache: cached verdicts discarded because a netlist delta
    /// dirtied their sink group (ECO re-analysis). Zero on warm reruns.
    pub cache_invalidations: Counter,
    /// Artifact cache: engine verdicts answered from the store instead
    /// of being re-verified (warm reruns and clean ECO groups).
    pub cache_pairs_spliced: Counter,
    /// ECO re-analysis: sink groups whose cone intersected the netlist
    /// delta and were re-verified from scratch.
    pub eco_groups_reverified: Counter,
    /// ECO re-analysis: sink groups untouched by the netlist delta whose
    /// verdicts were spliced from the store.
    pub eco_groups_spliced: Counter,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-integer snapshot of every counter.
    pub fn counters(&self) -> Counters {
        Counters {
            implications: self.implications.get(),
            contradictions: self.contradictions.get(),
            learned_implications: self.learned_implications.get(),
            atpg_decisions: self.atpg_decisions.get(),
            atpg_backtracks: self.atpg_backtracks.get(),
            atpg_aborts: self.atpg_aborts.get(),
            sat_decisions: self.sat_decisions.get(),
            sat_propagations: self.sat_propagations.get(),
            sat_conflicts: self.sat_conflicts.get(),
            sat_learned: self.sat_learned.get(),
            sat_restarts: self.sat_restarts.get(),
            bdd_peak_nodes: self.bdd_peak_nodes.get(),
            bdd_cache_lookups: self.bdd_cache_lookups.get(),
            bdd_cache_hits: self.bdd_cache_hits.get(),
            sim_words: self.sim_words.get(),
            sim_pairs_dropped: self.sim_pairs_dropped.get(),
            sim_passes: self.sim_passes.get(),
            sim_tape_ops: self.sim_tape_ops.get(),
            sim_fused_ops: self.sim_fused_ops.get(),
            jit_compiles: self.jit_compiles.get(),
            jit_bytes: self.jit_bytes.get(),
            jit_batches: self.jit_batches.get(),
            lint_rules_run: self.lint_rules_run.get(),
            lint_violations: self.lint_violations.get(),
            lint_nodes_visited: self.lint_nodes_visited.get(),
            dataflow_consts: self.dataflow_consts.get(),
            dataflow_iters: self.dataflow_iters.get(),
            static_resolved: self.static_resolved.get(),
            slice_builds: self.slice_builds.get(),
            slice_cache_hits: self.slice_cache_hits.get(),
            slice_nodes: self.slice_nodes.get(),
            slice_vars: self.slice_vars.get(),
            slice_nodes_peak: self.slice_nodes_peak.get(),
            resume_pairs_loaded: self.resume_pairs_loaded.get(),
            shard_pairs_owned: self.shard_pairs_owned.get(),
            shard_pairs_skipped: self.shard_pairs_skipped.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_invalidations: self.cache_invalidations.get(),
            cache_pairs_spliced: self.cache_pairs_spliced.get(),
            eco_groups_reverified: self.eco_groups_reverified.get(),
            eco_groups_spliced: self.eco_groups_spliced.get(),
        }
    }
}

/// Serializable snapshot of [`Metrics`] — same fields, plain `u64`s.
///
/// Counter totals are sums of deterministic per-pair deltas, so two
/// runs with the same seed and config produce identical `Counters`
/// regardless of worker scheduling (span *timings* do not share this
/// property, which is why they live outside this struct).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings documented on `Metrics`
pub struct Counters {
    pub implications: u64,
    pub contradictions: u64,
    pub learned_implications: u64,
    pub atpg_decisions: u64,
    pub atpg_backtracks: u64,
    pub atpg_aborts: u64,
    pub sat_decisions: u64,
    pub sat_propagations: u64,
    pub sat_conflicts: u64,
    pub sat_learned: u64,
    pub sat_restarts: u64,
    pub bdd_peak_nodes: u64,
    pub bdd_cache_lookups: u64,
    pub bdd_cache_hits: u64,
    pub sim_words: u64,
    pub sim_pairs_dropped: u64,
    // Tape-kernel counters arrived after the first report format;
    // `default` keeps old saved reports parseable.
    #[serde(default)]
    pub sim_passes: u64,
    #[serde(default)]
    pub sim_tape_ops: u64,
    // JIT/fused-kernel counters arrived with the native-code tier.
    #[serde(default)]
    pub sim_fused_ops: u64,
    #[serde(default)]
    pub jit_compiles: u64,
    #[serde(default)]
    pub jit_bytes: u64,
    #[serde(default)]
    pub jit_batches: u64,
    pub lint_rules_run: u64,
    pub lint_violations: u64,
    // Dataflow-analysis counters arrived with the static pre-pass;
    // `default` keeps old saved reports parseable.
    #[serde(default)]
    pub lint_nodes_visited: u64,
    #[serde(default)]
    pub dataflow_consts: u64,
    #[serde(default)]
    pub dataflow_iters: u64,
    #[serde(default)]
    pub static_resolved: u64,
    // Slice counters arrived after the first journal/report format;
    // `default` keeps old saved reports parseable.
    #[serde(default)]
    pub slice_builds: u64,
    #[serde(default)]
    pub slice_cache_hits: u64,
    #[serde(default)]
    pub slice_nodes: u64,
    #[serde(default)]
    pub slice_vars: u64,
    #[serde(default)]
    pub slice_nodes_peak: u64,
    // Resume support (ledger format 2) arrived after the slice fields.
    #[serde(default)]
    pub resume_pairs_loaded: u64,
    // Shard counters arrived with multi-process verification.
    #[serde(default)]
    pub shard_pairs_owned: u64,
    #[serde(default)]
    pub shard_pairs_skipped: u64,
    // Cache/ECO counters arrived with the staged artifact store.
    #[serde(default)]
    pub cache_hits: u64,
    #[serde(default)]
    pub cache_misses: u64,
    #[serde(default)]
    pub cache_invalidations: u64,
    #[serde(default)]
    pub cache_pairs_spliced: u64,
    #[serde(default)]
    pub eco_groups_reverified: u64,
    #[serde(default)]
    pub eco_groups_spliced: u64,
}

impl Counters {
    /// Fraction of BDD cache lookups that hit, or 0.0 with no lookups.
    pub fn bdd_cache_hit_rate(&self) -> f64 {
        if self.bdd_cache_lookups == 0 {
            0.0
        } else {
            self.bdd_cache_hits as f64 / self.bdd_cache_lookups as f64
        }
    }

    /// Mean node count of built slices, or 0.0 when no slice was built.
    pub fn slice_nodes_mean(&self) -> f64 {
        if self.slice_builds == 0 {
            0.0
        } else {
            self.slice_nodes as f64 / self.slice_builds as f64
        }
    }

    /// Mean per-slice variable count, or 0.0 when no slice was built.
    pub fn slice_vars_mean(&self) -> f64 {
        if self.slice_builds == 0 {
            0.0
        } else {
            self.slice_vars as f64 / self.slice_builds as f64
        }
    }
}

/// Full observability snapshot: counters plus span timings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Engine counters (deterministic for a fixed seed/config).
    pub counters: Counters,
    /// Accumulated span timings by path (wall-clock, not deterministic).
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// Random-simulation throughput: 64-pattern words per wall-clock
    /// second, or 0.0 when no sim time was recorded. Wall-clock-derived,
    /// so (unlike the counters) not deterministic across runs.
    ///
    /// Attribution is **per kernel tier**: when kernel-tagged child
    /// spans (`analyze/sim/<tier>`, e.g. `analyze/sim/jit-avx2`) exist,
    /// their summed time is the denominator — the parent `analyze/sim`
    /// span also covers tape/lowering compilation and pair grouping, and
    /// on warm-cache or static-resolved runs it accrues time with *zero*
    /// words simulated, which used to deflate the rate. The parent span
    /// remains the fallback for snapshots recorded before the tags
    /// existed.
    pub fn sim_words_per_sec(&self) -> f64 {
        let tiers: f64 = self
            .spans
            .iter()
            .filter(|(path, _)| path.starts_with("analyze/sim/"))
            .map(|(_, s)| s.total.as_secs_f64())
            .sum();
        let secs = if tiers > 0.0 {
            tiers
        } else {
            self.spans
                .get("analyze/sim")
                .map_or(0.0, |s| s.total.as_secs_f64())
        };
        if secs > 0.0 {
            self.counters.sim_words as f64 / secs
        } else {
            0.0
        }
    }

    /// The kernel-tier tags that recorded sim time, in span order —
    /// e.g. `["jit-avx2"]`. Empty for pre-tag snapshots.
    pub fn sim_kernel_tags(&self) -> Vec<&str> {
        self.spans
            .keys()
            .filter_map(|path| path.strip_prefix("analyze/sim/"))
            .collect()
    }
}
