//! Hierarchical wall-clock span accumulation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accumulated wall-clock total and entry count of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Total time spent inside the span, summed over entries.
    pub total: Duration,
    /// Number of times the span was entered.
    pub count: u64,
}

impl SpanStat {
    /// Mean time per entry, or zero when the span was never entered.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Thread-safe hierarchical span accumulator.
///
/// Spans are keyed by `/`-separated paths (`"analyze/pairs/implication"`);
/// the hierarchy is by naming convention, so a snapshot sorts parents
/// directly above their children.
#[derive(Debug, Default)]
pub struct Timers {
    entries: Mutex<BTreeMap<String, SpanStat>>,
}

impl Timers {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters the span at `path`; the returned guard records elapsed
    /// time into this accumulator when dropped.
    pub fn span(&self, path: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            timers: self,
            path: path.into(),
            start: Instant::now(),
            done: false,
        }
    }

    /// Adds an externally measured duration (e.g. per-worker busy time
    /// summed across threads) to the span at `path`.
    pub fn add(&self, path: &str, elapsed: Duration) {
        let mut entries = self.entries.lock().expect("timers poisoned");
        let stat = entries.entry(path.to_owned()).or_default();
        stat.total += elapsed;
        stat.count += 1;
    }

    /// Total accumulated so far at `path` (zero if never entered).
    pub fn total(&self, path: &str) -> Duration {
        self.entries
            .lock()
            .expect("timers poisoned")
            .get(path)
            .map_or(Duration::ZERO, |s| s.total)
    }

    /// A copy of every span recorded so far.
    pub fn snapshot(&self) -> BTreeMap<String, SpanStat> {
        self.entries.lock().expect("timers poisoned").clone()
    }
}

/// RAII guard of one entered span; see [`Timers::span`].
#[must_use = "dropping the guard immediately records a ~zero-length span"]
#[derive(Debug)]
pub struct SpanGuard<'t> {
    timers: &'t Timers,
    path: String,
    start: Instant,
    done: bool,
}

impl<'t> SpanGuard<'t> {
    /// Enters a child span `self.path + "/" + name`.
    pub fn child(&self, name: &str) -> SpanGuard<'t> {
        self.timers.span(format!("{}/{name}", self.path))
    }

    /// The span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Ends the span now and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.timers.add(&self.path, elapsed);
        self.done = true;
        elapsed
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.timers.add(&self.path, self.start.elapsed());
        }
    }
}
