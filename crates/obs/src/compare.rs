//! Regression-aware artifact comparison for `mcpath stats --compare`.
//!
//! Wall-clock numbers are noise on shared or single-core CI runners, but
//! the pipeline's *counters* (implications, SAT conflicts, tape ops,
//! slice sizes) are deterministic for a fixed seed and config. This
//! module flattens two artifacts — saved `McReport`s, `MetricsSnapshot`s,
//! `BENCH_*.json` files, or NDJSON ledgers — down to their integer
//! counters, diffs them, and flags increases above a configurable
//! threshold as regressions, giving CI a drift gate that works where
//! timing comparisons cannot.

use crate::ledger::{read_ledger, Ledger};
use serde::Content;
use std::collections::BTreeMap;
use std::io;

/// Keys whose values are wall-clock derived, machine-dependent, or
/// otherwise non-deterministic — excluded from comparison wholesale.
/// `spans` subtrees are skipped entirely; the rest match individual
/// path segments.
fn is_noise_key(key: &str) -> bool {
    matches!(
        key,
        "micros"
            | "secs"
            | "nanos"
            | "start_us"
            | "dur_us"
            | "ts"
            | "dur"
            | "tid"
            | "cores"
            | "peak_rss_kb"
            | "words_per_sec"
            | "pairs_per_sec"
    ) || key.starts_with("time")
}

fn flatten_content(prefix: &str, value: &Content, out: &mut BTreeMap<String, u64>) {
    match value {
        Content::U64(n) => {
            out.insert(prefix.to_owned(), *n);
        }
        Content::I64(_) | Content::F64(_) => {
            // Negative integers and floats are not counters; skip.
        }
        Content::Map(entries) => {
            for (key, child) in entries {
                if key == "spans" || is_noise_key(key) {
                    continue;
                }
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}/{key}")
                };
                flatten_content(&path, child, out);
            }
        }
        Content::Seq(items) => {
            // Arrays of rows (BENCH artifacts, pair lists) are order-
            // and content-deterministic; index into them.
            for (i, item) in items.iter().enumerate() {
                let path = if prefix.is_empty() {
                    format!("{i}")
                } else {
                    format!("{prefix}/{i}")
                };
                flatten_content(&path, item, out);
            }
        }
        Content::Null | Content::Bool(_) | Content::Str(_) => {}
    }
}

/// Aggregates an NDJSON ledger into deterministic counters: verdict
/// counts keyed by resolving step and class, total assignment outcomes,
/// and summed slice sizes. Per-event order and timing are discarded —
/// under work stealing the append order is scheduling-dependent, but
/// these aggregates are not.
fn flatten_ledger(ledger: &Ledger, out: &mut BTreeMap<String, u64>) {
    if let Some(h) = &ledger.header {
        out.insert("header/pairs".to_owned(), h.pairs);
    }
    for event in &ledger.events {
        *out.entry(format!("pairs/{}/{}", event.step, event.class))
            .or_insert(0) += 1;
        *out.entry("assignments".to_owned()).or_insert(0) += event.assignments.len() as u64;
        if let Some(n) = event.slice_nodes {
            *out.entry("slice_nodes".to_owned()).or_insert(0) += n;
        }
        if let Some(v) = event.slice_vars {
            *out.entry("slice_vars".to_owned()).or_insert(0) += v;
        }
    }
}

/// Flattens one artifact's text into its deterministic integer counters.
///
/// The text is tried as an NDJSON ledger first — every ledger line type
/// has required fields no other artifact has at top level, so a one-line
/// journal and a multi-line journal take the same (aggregating) path —
/// then as a single JSON document (saved report, metrics snapshot,
/// BENCH artifact). Anything parseable as neither is an error.
pub fn flatten_artifact(text: &str) -> io::Result<BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    match read_ledger(text.as_bytes()) {
        Ok(ledger) => {
            flatten_ledger(&ledger, &mut out);
            Ok(out)
        }
        Err(ledger_err) => {
            let content = serde_json::from_str_content(text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "artifact is neither an NDJSON ledger ({ledger_err}) \
                         nor a JSON document ({e})"
                    ),
                )
            })?;
            flatten_content("", &content, &mut out);
            Ok(out)
        }
    }
}

/// Comparison thresholds.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// A counter increase strictly above this percentage of the old
    /// value is a regression (decreases and new/removed counters never
    /// are). `0.0` flags any strict increase.
    pub threshold_pct: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        // Counters are deterministic, so the default tolerates nothing.
        CompareConfig { threshold_pct: 0.0 }
    }
}

/// One counter that differs between the two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDiff {
    /// Flattened counter key (`/`-joined path).
    pub key: String,
    /// Value in the old artifact (`None` if the counter is new).
    pub old: Option<u64>,
    /// Value in the new artifact (`None` if the counter was removed).
    pub new: Option<u64>,
    /// Whether this difference is an above-threshold increase.
    pub regression: bool,
}

/// Result of comparing two artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Every differing counter, sorted by key.
    pub diffs: Vec<CounterDiff>,
    /// Counters present and equal in both artifacts.
    pub unchanged: usize,
}

impl Comparison {
    /// Number of above-threshold regressions.
    pub fn regressions(&self) -> usize {
        self.diffs.iter().filter(|d| d.regression).count()
    }

    /// Human-readable table of the differences.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.diffs.is_empty() {
            out.push_str(&format!(
                "no counter differences ({} counters compared)\n",
                self.unchanged
            ));
            return out;
        }
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>9}\n",
            "counter", "old", "new", "delta"
        ));
        for d in &self.diffs {
            let old = d.old.map_or("-".to_owned(), |v| v.to_string());
            let new = d.new.map_or("-".to_owned(), |v| v.to_string());
            let delta = match (d.old, d.new) {
                (Some(o), Some(n)) => {
                    let signed = n as i128 - o as i128;
                    if o > 0 {
                        format!("{:+.1}%", signed as f64 * 100.0 / o as f64)
                    } else {
                        format!("{signed:+}")
                    }
                }
                _ => "-".to_owned(),
            };
            let mark = if d.regression { "  REGRESSION" } else { "" };
            out.push_str(&format!(
                "{:<40} {old:>14} {new:>14} {delta:>9}{mark}\n",
                d.key
            ));
        }
        out.push_str(&format!(
            "{} differing, {} unchanged, {} regression(s)\n",
            self.diffs.len(),
            self.unchanged,
            self.regressions()
        ));
        out
    }
}

/// Compares two flattened artifacts.
pub fn compare_counters(
    old: &BTreeMap<String, u64>,
    new: &BTreeMap<String, u64>,
    config: CompareConfig,
) -> Comparison {
    let mut result = Comparison::default();
    let keys: std::collections::BTreeSet<&String> = old.keys().chain(new.keys()).collect();
    for key in keys {
        let o = old.get(key).copied();
        let n = new.get(key).copied();
        if o == n {
            result.unchanged += 1;
            continue;
        }
        let regression = match (o, n) {
            (Some(o), Some(n)) if n > o => {
                let growth_pct = (n - o) as f64 * 100.0 / (o.max(1)) as f64;
                growth_pct > config.threshold_pct
            }
            // A counter appearing from nothing is unbounded growth.
            (None, Some(n)) => n > 0,
            _ => false,
        };
        result.diffs.push(CounterDiff {
            key: key.clone(),
            old: o,
            new: n,
            regression,
        });
    }
    result
}

/// Parses and compares two artifact texts; see [`flatten_artifact`] and
/// [`compare_counters`].
pub fn compare_artifacts(
    old_text: &str,
    new_text: &str,
    config: CompareConfig,
) -> io::Result<Comparison> {
    let old = flatten_artifact(old_text)?;
    let new = flatten_artifact(new_text)?;
    Ok(compare_counters(&old, &new, config))
}
