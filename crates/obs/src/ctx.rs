//! The per-run observability context bundling timers, counters, sink,
//! tracer, and progress meter.

use crate::ledger::{ObsSink, PairEvent};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::progress::ProgressMeter;
use crate::timers::Timers;
use crate::trace::{TraceGuard, Tracer};
use crate::NullSink;
use std::time::Duration;

/// Everything the pipeline needs to observe one run: timers, counters,
/// a ledger sink, a timestamped-span tracer, and an optional progress
/// meter. Shared by reference across the pair-loop worker threads.
pub struct ObsCtx {
    /// Span timers (flat totals by path).
    pub timers: Timers,
    /// Engine counters.
    pub metrics: Metrics,
    /// Timestamped span collector for trace export.
    pub tracer: Tracer,
    sink: Box<dyn ObsSink>,
    tracing: bool,
    progress: Option<ProgressMeter>,
}

impl Default for ObsCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ObsCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsCtx")
            .field("timers", &self.timers)
            .field("metrics", &self.metrics)
            .field("sink_enabled", &self.sink.enabled())
            .field("tracing", &self.tracing)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl ObsCtx {
    /// A context with a [`NullSink`], tracing off, and no progress
    /// meter — the zero-overhead default.
    pub fn new() -> Self {
        ObsCtx {
            timers: Timers::new(),
            metrics: Metrics::new(),
            tracer: Tracer::new(),
            sink: Box::new(NullSink),
            tracing: false,
            progress: None,
        }
    }

    /// Replaces the ledger sink. Tracing follows the sink: an enabled
    /// sink turns timestamped span capture on, since captured spans are
    /// only ever observable through the sink's end-of-run span dump.
    pub fn with_sink(mut self, sink: Box<dyn ObsSink>) -> Self {
        self.tracing = sink.enabled();
        self.sink = sink;
        self
    }

    /// Overrides whether timestamped spans are captured (independent of
    /// the sink, e.g. for tests that read the tracer directly).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enables progress lines on stderr, at most one per `every`.
    pub fn with_progress(mut self, every: Duration) -> Self {
        self.progress = Some(ProgressMeter::new(every));
        self
    }

    /// The ledger sink.
    pub fn sink(&self) -> &dyn ObsSink {
        &*self.sink
    }

    /// Whether timestamped span capture is on.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Enters a timestamped trace span if tracing is on. The path
    /// closure only runs when the span will actually be captured, so
    /// hot paths pay nothing for label formatting when tracing is off.
    pub fn trace_span(&self, path: impl FnOnce() -> String) -> Option<TraceGuard<'_>> {
        if self.tracing {
            Some(self.tracer.span(path()))
        } else {
            None
        }
    }

    /// Records one pair event through the sink (no-op when disabled).
    pub fn record(&self, event: &PairEvent) {
        self.sink.record(event);
    }

    /// Emits a progress line if a meter is attached and the throttle
    /// allows it.
    pub fn progress(&self, label: &str, done: usize, total: usize) {
        if let Some(meter) = &self.progress {
            meter.tick(label, done, total, None);
        }
    }

    /// Like [`ObsCtx::progress`], with work-weighted cost totals for an
    /// ETA estimate (`(completed_cost, total_cost)` in the scheduler's
    /// slice-node cost units).
    pub fn progress_with_cost(&self, label: &str, done: usize, total: usize, cost: (u64, u64)) {
        if let Some(meter) = &self.progress {
            meter.tick(label, done, total, Some(cost));
        }
    }

    /// Counters-plus-spans snapshot of the run so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.metrics.counters(),
            spans: self.timers.snapshot(),
        }
    }
}
