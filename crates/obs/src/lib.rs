//! Observability for the multi-cycle path pipeline.
//!
//! Four complementary facilities, all cheap enough to stay on by
//! default and all safe to share across the scoped worker threads of the
//! pair loop:
//!
//! - **Span timers** ([`Timers`], [`SpanGuard`]): RAII wall-clock
//!   accumulation keyed by hierarchical `a/b/c` paths on the monotonic
//!   clock, replacing ad-hoc `Instant::now()` bookkeeping.
//! - **Engine counters** ([`Metrics`], [`Counters`]): relaxed
//!   `AtomicU64`s the pipeline flushes per-pair deltas into — decisions,
//!   backtracks, implications, SAT conflicts, BDD cache traffic, words
//!   simulated. [`Counters`] is the serializable snapshot embedded in
//!   reports.
//! - **Run ledger** ([`ObsSink`], [`RunHeader`], [`PairEvent`]): a
//!   versioned NDJSON journal. A v2 ledger opens with a [`RunHeader`]
//!   (format version plus netlist/config/pair-set digests), appends one
//!   flushed [`PairEvent`] per resolved pair — making the file a durable
//!   checkpoint that `analyze --resume` can restart from after a SIGKILL
//!   — and closes with the run's timestamped [`SpanEvent`] tree. The
//!   default [`NullSink`] reports `enabled() == false` so hot paths skip
//!   event construction entirely; [`FileSink`] writes the NDJSON ledger;
//!   [`MemSink`] buffers in memory for tests.
//! - **Trace capture** ([`Tracer`], [`chrome_trace`]): timestamped spans
//!   with per-thread track ids, exportable as Chrome trace-event JSON
//!   for Perfetto.
//!
//! [`ObsCtx`] bundles these plus an optional throttled progress meter,
//! and is what the pipeline's `analyze_with` entry point accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod ctx;
mod ledger;
mod metrics;
mod progress;
mod timers;
mod trace;

pub use compare::{
    compare_artifacts, compare_counters, flatten_artifact, CompareConfig, Comparison, CounterDiff,
};
pub use ctx::ObsCtx;
pub use ledger::{
    fnv1a, read_journal, read_journal_file, read_ledger, read_ledger_file, read_ledger_resilient,
    read_ledger_resilient_file, run_digest, AssignmentEvent, FailAfter, FileSink, Ledger, MemSink,
    NullSink, ObsSink, PairEvent, RunHeader, SpanEvent, FAIL_AFTER_ENV, FAULT_EXIT_CODE,
    LEDGER_VERSION,
};
pub use metrics::{Counter, Counters, Metrics, MetricsSnapshot};
pub use timers::{SpanGuard, SpanStat, Timers};
pub use trace::{
    chrome_trace, chrome_trace_from_totals, current_tid, ChromeEvent, ChromeTrace, Tracer,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn span_guards_accumulate_by_path() {
        let timers = Timers::new();
        {
            let root = timers.span("analyze");
            let _child = root.child("pairs");
            std::thread::sleep(Duration::from_millis(2));
        }
        timers.add("analyze/pairs", Duration::from_millis(5));
        let snap = timers.snapshot();
        assert_eq!(snap["analyze"].count, 1);
        assert_eq!(snap["analyze/pairs"].count, 2);
        assert!(snap["analyze/pairs"].total >= Duration::from_millis(5));
        assert!(timers.total("analyze") >= Duration::from_millis(2));
        assert_eq!(timers.total("never"), Duration::ZERO);
    }

    #[test]
    fn span_stop_returns_elapsed_once() {
        let timers = Timers::new();
        let g = timers.span("x");
        let elapsed = g.stop();
        let snap = timers.snapshot();
        assert_eq!(snap["x"].count, 1);
        assert_eq!(snap["x"].total, elapsed);
        assert_eq!(snap["x"].mean(), elapsed);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let metrics = Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&metrics);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.implications.add(1);
                    }
                    m.bdd_peak_nodes.raise_to(37);
                });
            }
        });
        let c = metrics.counters();
        assert_eq!(c.implications, 4000);
        assert_eq!(c.bdd_peak_nodes, 37);
        assert_eq!(c.bdd_cache_hit_rate(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let ctx = ObsCtx::new();
        ctx.metrics.sat_conflicts.add(7);
        ctx.timers.add("analyze/sim", Duration::from_micros(1234));
        let snap = ctx.snapshot();
        let text = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.counters.sat_conflicts, 7);
    }

    fn sample_event(k: usize) -> PairEvent {
        PairEvent {
            src: k,
            dst: k + 1,
            step: "atpg".to_owned(),
            class: "single".to_owned(),
            engine: None,
            assignments: Vec::new(),
            micros: k as u64,
            sim_word: Some(k as u64),
            slice_nodes: None,
            slice_vars: None,
            resumed: false,
            static_pass: false,
            cached: false,
            kernel: None,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_mem_sink_records() {
        assert!(!NullSink.enabled());
        let sink = MemSink::new();
        assert!(sink.enabled());
        let event = PairEvent {
            src: 1,
            dst: 2,
            step: "implication".to_owned(),
            class: "multi".to_owned(),
            engine: Some("implication".to_owned()),
            assignments: vec![AssignmentEvent {
                src_value: true,
                dst_value: false,
                outcome: "contradiction".to_owned(),
            }],
            micros: 42,
            sim_word: None,
            slice_nodes: Some(12),
            slice_vars: Some(4),
            resumed: false,
            static_pass: false,
            cached: false,
            kernel: None,
        };
        sink.record(&event);
        assert_eq!(sink.drain(), vec![event]);
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn file_sink_writes_parseable_ndjson() {
        let path = std::env::temp_dir().join(format!(
            "mcp_obs_journal_test_{}.ndjson",
            std::process::id()
        ));
        let events: Vec<PairEvent> = (0..3).map(sample_event).collect();
        {
            let sink = FileSink::create(&path).expect("create");
            for e in &events {
                sink.record(e);
            }
            sink.flush().expect("flush");
        }
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 3);
        let back = read_journal_file(&path).expect("parse journal");
        assert_eq!(back, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_sink_writes_full_ledgers() {
        let path =
            std::env::temp_dir().join(format!("mcp_obs_ledger_test_{}.ndjson", std::process::id()));
        let header = RunHeader {
            ledger: LEDGER_VERSION,
            circuit: "s27".to_owned(),
            netlist_hash: 11,
            config_fingerprint: 22,
            pair_digest: 33,
            pairs: 2,
            shard_index: 1,
            shard_count: 4,
            run_digest: run_digest(11, 22, 33),
        };
        assert_eq!(header.run_digest, header.expected_run_digest());
        let span = SpanEvent {
            span: "analyze/pairs".to_owned(),
            tid: 1,
            start_us: 5,
            dur_us: 40,
        };
        {
            let sink = FileSink::create(&path).expect("create");
            sink.record_header(&header);
            sink.record(&sample_event(0));
            sink.record(&sample_event(1));
            sink.record_span(&span);
            sink.flush().expect("flush");
        }
        let ledger = read_ledger_file(&path).expect("parse ledger");
        assert_eq!(ledger.header, Some(header));
        assert_eq!(ledger.spans, vec![span]);
        assert_eq!(ledger.events.len(), 2);
        // The journal-level reader sees only the pair events.
        let events = read_journal_file(&path).expect("parse as journal");
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resilient_reader_tolerates_only_a_torn_final_line() {
        let good = format!(
            "{}\n{}\n",
            serde_json::to_string(&sample_event(0)).unwrap(),
            serde_json::to_string(&sample_event(1)).unwrap()
        );
        let torn = format!("{good}{{\"src\":9,\"dst\":10,\"st");
        // Strict reader rejects the torn tail; resilient one drops it.
        assert!(read_ledger(torn.as_bytes()).is_err());
        let ledger = read_ledger_resilient(torn.as_bytes()).expect("resilient parse");
        assert_eq!(ledger.events.len(), 2);
        // Garbage mid-file stays an error even in resilient mode.
        let mid = format!("not json\n{good}");
        assert!(read_ledger_resilient(mid.as_bytes()).is_err());
    }

    #[test]
    fn journal_reader_rejects_garbage() {
        let bad = "{\"src\": 1}\nnot json\n";
        assert!(read_journal(bad.as_bytes()).is_err());
    }

    #[test]
    fn resumed_flag_is_omitted_when_false_and_round_trips_when_true() {
        let mut event = sample_event(0);
        let text = serde_json::to_string(&event).unwrap();
        assert!(!text.contains("resumed"));
        assert!(!text.contains("static_pass"));
        assert!(!text.contains("cached"));
        event.resumed = true;
        event.static_pass = true;
        event.cached = true;
        let text = serde_json::to_string(&event).unwrap();
        assert!(text.contains("\"resumed\":true"));
        assert!(text.contains("\"static_pass\":true"));
        assert!(text.contains("\"cached\":true"));
        let back: PairEvent = serde_json::from_str(&text).unwrap();
        assert!(back.resumed);
        assert!(back.static_pass);
        assert!(back.cached);
    }

    #[test]
    fn pre_slice_journals_and_snapshots_still_parse() {
        // Records written before the slice fields existed must load with
        // the fields defaulted, not error.
        let old = "{\"src\":0,\"dst\":1,\"step\":\"implication\",\"class\":\"multi\",\
                   \"engine\":\"implication\",\"assignments\":[],\"micros\":3,\
                   \"sim_word\":null}\n";
        let events = read_journal(old.as_bytes()).expect("old journal parses");
        assert_eq!(events[0].slice_nodes, None);
        assert_eq!(events[0].slice_vars, None);
        assert!(!events[0].resumed);
        let ledger = read_ledger(old.as_bytes()).expect("old ledger parses");
        assert_eq!(ledger.header, None);
        assert!(ledger.spans.is_empty());

        let old_counters = "{\"implications\":1,\"contradictions\":0,\
            \"learned_implications\":0,\"atpg_decisions\":0,\"atpg_backtracks\":0,\
            \"atpg_aborts\":0,\"sat_decisions\":0,\"sat_propagations\":0,\
            \"sat_conflicts\":0,\"sat_learned\":0,\"sat_restarts\":0,\
            \"bdd_peak_nodes\":0,\"bdd_cache_lookups\":0,\"bdd_cache_hits\":0,\
            \"sim_words\":0,\"sim_pairs_dropped\":0,\"lint_rules_run\":0,\
            \"lint_violations\":0}";
        let c: Counters = serde_json::from_str(old_counters).expect("old counters parse");
        assert_eq!(c.slice_builds, 0);
        assert_eq!(c.slice_nodes_mean(), 0.0);
        assert_eq!(c.sim_passes, 0);
        assert_eq!(c.sim_tape_ops, 0);
        assert_eq!(c.resume_pairs_loaded, 0);
        assert_eq!(c.lint_nodes_visited, 0);
        assert_eq!(c.dataflow_consts, 0);
        assert_eq!(c.dataflow_iters, 0);
        assert_eq!(c.static_resolved, 0);
    }

    #[test]
    fn sim_throughput_derives_from_the_sim_span() {
        let ctx = ObsCtx::new();
        assert_eq!(ctx.snapshot().sim_words_per_sec(), 0.0);
        ctx.metrics.sim_words.add(500);
        ctx.timers.add("analyze/sim", Duration::from_millis(250));
        let wps = ctx.snapshot().sim_words_per_sec();
        assert!((wps - 2000.0).abs() < 1e-6, "got {wps}");
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        // Reference value for the empty string from the FNV spec.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"s27"), fnv1a(b"s28"));
        assert_eq!(fnv1a(b"s27"), fnv1a(b"s27"));
    }

    #[test]
    fn run_digest_is_order_sensitive() {
        // The three identity digests feed the run digest in a fixed
        // order; swapping any two must change it, or a netlist/config
        // transposition could collide.
        let d = run_digest(1, 2, 3);
        assert_eq!(run_digest(1, 2, 3), d);
        assert_ne!(run_digest(2, 1, 3), d);
        assert_ne!(run_digest(1, 3, 2), d);
        assert_ne!(run_digest(3, 2, 1), d);
    }

    #[test]
    fn pre_shard_headers_parse_as_unsharded() {
        let old = "{\"ledger\":2,\"circuit\":\"s27\",\"netlist_hash\":11,\
                   \"config_fingerprint\":22,\"pair_digest\":33,\"pairs\":2}";
        let h: RunHeader = serde_json::from_str(old).expect("old header parses");
        assert_eq!((h.shard_index, h.shard_count), (0, 0));
        assert_eq!(h.run_digest, 0);
    }

    #[test]
    fn fail_after_admits_exactly_the_budget_under_contention() {
        // The hook's whole value is determinism: no matter how worker
        // threads interleave, exactly `limit` writes get through.
        for limit in [0u64, 1, 5, 64] {
            let fault = Arc::new(FailAfter::new(limit));
            let admitted = Arc::new(Metrics::new());
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let f = Arc::clone(&fault);
                    let a = Arc::clone(&admitted);
                    s.spawn(move || {
                        for _ in 0..64 {
                            if f.admit() {
                                a.implications.add(1);
                            }
                        }
                    });
                }
            });
            assert_eq!(admitted.counters().implications, limit);
            assert_eq!(fault.admitted(), limit);
            // Once exhausted, the budget stays exhausted.
            assert!(!fault.admit());
        }
    }

    #[test]
    fn fail_after_env_values_parse_or_disarm() {
        assert_eq!(FailAfter::from_value("7").map(|f| f.admitted()), Some(0));
        let f = FailAfter::from_value(" 2 ").expect("whitespace tolerated");
        assert!(f.admit());
        assert!(f.admit());
        assert!(!f.admit());
        // Garbage disarms the hook instead of killing runs at line 0.
        assert!(FailAfter::from_value("").is_none());
        assert!(FailAfter::from_value("nope").is_none());
        assert!(FailAfter::from_value("-1").is_none());
    }

    #[test]
    fn file_sink_with_unarmed_fault_writes_everything() {
        // A budget larger than the run never trips; the sink behaves
        // exactly like an unfaulted one (the tripping path necessarily
        // exits the process, so it is exercised by the integration
        // suite's child-process tests, not here).
        let path =
            std::env::temp_dir().join(format!("mcp_obs_fault_test_{}.ndjson", std::process::id()));
        {
            let file = std::fs::File::create(&path).expect("create");
            let sink = FileSink::with_fault(file, Some(FailAfter::new(100)));
            for k in 0..3 {
                sink.record(&sample_event(k));
            }
            sink.flush().expect("flush");
        }
        let events = read_journal_file(&path).expect("parse");
        assert_eq!(events.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tracer_assigns_distinct_tids_per_thread() {
        let tracer = Tracer::new();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let t = &tracer;
                s.spawn(move || {
                    let g = t.span("analyze/pairs/group");
                    std::thread::sleep(Duration::from_millis(1));
                    drop(g);
                });
            }
        });
        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].tid, spans[1].tid);
        assert!(spans.iter().all(|s| s.dur_us >= 1000));
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn chrome_trace_carries_spans_with_categories() {
        let spans = vec![
            SpanEvent {
                span: "analyze/sim".to_owned(),
                tid: 1,
                start_us: 0,
                dur_us: 100,
            },
            SpanEvent {
                span: "analyze/pairs/group:n5".to_owned(),
                tid: 2,
                start_us: 100,
                dur_us: 50,
            },
        ];
        let doc = chrome_trace(&spans);
        assert_eq!(doc.displayTimeUnit, "ms");
        assert_eq!(doc.traceEvents.len(), 2);
        assert!(doc.traceEvents.iter().all(|e| e.ph == "X" && e.pid == 1));
        assert_eq!(doc.traceEvents[0].cat, "analyze");
        assert_eq!(doc.traceEvents[1].ts, 100);
        assert_eq!(doc.traceEvents[1].tid, 2);
        let text = serde_json::to_string(&doc).expect("serialize");
        assert!(text.contains("\"traceEvents\""));
        let back: ChromeTrace = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn flat_totals_degrade_to_a_sequential_trace() {
        let mut spans = std::collections::BTreeMap::new();
        spans.insert(
            "analyze/pairs".to_owned(),
            SpanStat {
                total: Duration::from_micros(300),
                count: 3,
            },
        );
        spans.insert(
            "analyze/sim".to_owned(),
            SpanStat {
                total: Duration::from_micros(200),
                count: 1,
            },
        );
        let doc = chrome_trace_from_totals(&spans);
        assert_eq!(doc.traceEvents.len(), 2);
        assert_eq!(doc.traceEvents[0].ts, 0);
        assert_eq!(doc.traceEvents[1].ts, 300);
    }

    #[test]
    fn obs_ctx_trace_spans_follow_the_sink() {
        let off = ObsCtx::new();
        assert!(!off.tracing());
        assert!(off.trace_span(|| "x".to_owned()).is_none());

        let on = ObsCtx::new().with_sink(Box::new(MemSink::new()));
        assert!(on.tracing());
        on.trace_span(|| "analyze/pairs/g".to_owned());
        assert_eq!(on.tracer.drain().len(), 1);

        let null = ObsCtx::new().with_sink(Box::new(NullSink));
        assert!(!null.tracing());
    }

    #[test]
    fn compare_flags_only_above_threshold_increases() {
        let old = "{\"counters\":{\"implications\":100,\"sat_conflicts\":10},\
                   \"spans\":{\"analyze\":{\"total\":{\"secs\":1,\"nanos\":0},\"count\":1}},\
                   \"time_total\":{\"secs\":9,\"nanos\":0}}";
        let new = "{\"counters\":{\"implications\":103,\"sat_conflicts\":10},\
                   \"spans\":{\"analyze\":{\"total\":{\"secs\":7,\"nanos\":0},\"count\":1}},\
                   \"time_total\":{\"secs\":2,\"nanos\":0}}";
        // 3% growth: below a 5% threshold, above a 1% threshold. Span and
        // time_total changes never count.
        let lax = compare_artifacts(old, new, CompareConfig { threshold_pct: 5.0 }).unwrap();
        assert_eq!(lax.regressions(), 0);
        assert_eq!(lax.diffs.len(), 1);
        let strict = compare_artifacts(old, new, CompareConfig { threshold_pct: 1.0 }).unwrap();
        assert_eq!(strict.regressions(), 1);
        assert!(strict.render().contains("REGRESSION"));
        // Identical artifacts: no diffs at all.
        let same = compare_artifacts(old, old, CompareConfig::default()).unwrap();
        assert!(same.diffs.is_empty());
        assert!(same.render().contains("no counter differences"));
    }

    #[test]
    fn compare_accepts_ndjson_ledgers() {
        let a = format!(
            "{}\n{}\n",
            serde_json::to_string(&sample_event(0)).unwrap(),
            serde_json::to_string(&sample_event(1)).unwrap()
        );
        let b = format!("{}\n", serde_json::to_string(&sample_event(0)).unwrap());
        let cmp = compare_artifacts(&a, &b, CompareConfig::default()).unwrap();
        // One fewer single-by-atpg verdict: a difference, not a regression.
        assert_eq!(cmp.regressions(), 0);
        assert_eq!(cmp.diffs.len(), 1);
        let cmp = compare_artifacts(&b, &a, CompareConfig::default()).unwrap();
        assert_eq!(cmp.regressions(), 1);
    }

    #[test]
    fn obs_ctx_is_sync_and_sendable() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ObsCtx>();
        assert_sync::<Timers>();
        assert_sync::<Metrics>();
        assert_sync::<Tracer>();
    }
}
