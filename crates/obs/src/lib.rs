//! Observability for the multi-cycle path pipeline.
//!
//! Three complementary facilities, all cheap enough to stay on by
//! default and all safe to share across the scoped worker threads of the
//! pair loop:
//!
//! - **Span timers** ([`Timers`], [`SpanGuard`]): RAII wall-clock
//!   accumulation keyed by hierarchical `a/b/c` paths on the monotonic
//!   clock, replacing ad-hoc `Instant::now()` bookkeeping.
//! - **Engine counters** ([`Metrics`], [`Counters`]): relaxed
//!   `AtomicU64`s the pipeline flushes per-pair deltas into — decisions,
//!   backtracks, implications, SAT conflicts, BDD cache traffic, words
//!   simulated. [`Counters`] is the serializable snapshot embedded in
//!   reports.
//! - **Event journal** ([`ObsSink`]): a per-pair record of the resolving
//!   step, per-assignment implication outcomes, and elapsed time. The
//!   default [`NullSink`] reports `enabled() == false` so hot paths skip
//!   event construction entirely; [`FileSink`] writes NDJSON, one record
//!   per pair; [`MemSink`] buffers in memory for tests.
//!
//! [`ObsCtx`] bundles the three plus an optional throttled progress
//! meter, and is what the pipeline's `analyze_with` entry point accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Span timers
// ---------------------------------------------------------------------

/// Accumulated wall-clock total and entry count of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Total time spent inside the span, summed over entries.
    pub total: Duration,
    /// Number of times the span was entered.
    pub count: u64,
}

/// Thread-safe hierarchical span accumulator.
///
/// Spans are keyed by `/`-separated paths (`"analyze/pairs/implication"`);
/// the hierarchy is by naming convention, so a snapshot sorts parents
/// directly above their children.
#[derive(Debug, Default)]
pub struct Timers {
    entries: Mutex<BTreeMap<String, SpanStat>>,
}

impl Timers {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters the span at `path`; the returned guard records elapsed
    /// time into this accumulator when dropped.
    pub fn span(&self, path: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            timers: self,
            path: path.into(),
            start: Instant::now(),
            done: false,
        }
    }

    /// Adds an externally measured duration (e.g. per-worker busy time
    /// summed across threads) to the span at `path`.
    pub fn add(&self, path: &str, elapsed: Duration) {
        let mut entries = self.entries.lock().expect("timers poisoned");
        let stat = entries.entry(path.to_owned()).or_default();
        stat.total += elapsed;
        stat.count += 1;
    }

    /// Total accumulated so far at `path` (zero if never entered).
    pub fn total(&self, path: &str) -> Duration {
        self.entries
            .lock()
            .expect("timers poisoned")
            .get(path)
            .map_or(Duration::ZERO, |s| s.total)
    }

    /// A copy of every span recorded so far.
    pub fn snapshot(&self) -> BTreeMap<String, SpanStat> {
        self.entries.lock().expect("timers poisoned").clone()
    }
}

/// RAII guard of one entered span; see [`Timers::span`].
#[must_use = "dropping the guard immediately records a ~zero-length span"]
#[derive(Debug)]
pub struct SpanGuard<'t> {
    timers: &'t Timers,
    path: String,
    start: Instant,
    done: bool,
}

impl<'t> SpanGuard<'t> {
    /// Enters a child span `self.path + "/" + name`.
    pub fn child(&self, name: &str) -> SpanGuard<'t> {
        self.timers.span(format!("{}/{name}", self.path))
    }

    /// The span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Ends the span now and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.timers.add(&self.path, elapsed);
        self.done = true;
        elapsed
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.timers.add(&self.path, self.start.elapsed());
        }
    }
}

// ---------------------------------------------------------------------
// Engine counters
// ---------------------------------------------------------------------

/// One relaxed atomic counter.
///
/// Relaxed ordering is deliberate: counters are statistics, each update
/// is a single atomic RMW, and no other memory is published through
/// them.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises the counter to `n` if it is currently lower (for peak
    /// gauges like the BDD unique-table size).
    pub fn raise_to(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared live counters for every engine in the pipeline.
///
/// The pipeline flushes per-pair deltas in here from worker threads;
/// [`Metrics::counters`] takes the plain-integer snapshot.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Implication engine: definite values derived by propagation.
    pub implications: Counter,
    /// Implication engine: propagations that ended in a contradiction.
    pub contradictions: Counter,
    /// Implication engine: learned implications added by static learning.
    pub learned_implications: Counter,
    /// ATPG: decisions taken by the backtrack search.
    pub atpg_decisions: Counter,
    /// ATPG: backtracks performed.
    pub atpg_backtracks: Counter,
    /// ATPG: searches that hit the backtrack limit and aborted.
    pub atpg_aborts: Counter,
    /// SAT: decisions.
    pub sat_decisions: Counter,
    /// SAT: unit propagations.
    pub sat_propagations: Counter,
    /// SAT: conflicts.
    pub sat_conflicts: Counter,
    /// SAT: clauses learned from conflicts.
    pub sat_learned: Counter,
    /// SAT: restarts.
    pub sat_restarts: Counter,
    /// BDD: peak unique-table size over all per-pair managers.
    pub bdd_peak_nodes: Counter,
    /// BDD: apply/ITE cache lookups.
    pub bdd_cache_lookups: Counter,
    /// BDD: apply/ITE cache hits.
    pub bdd_cache_hits: Counter,
    /// Random simulation: 64-pattern words simulated.
    pub sim_words: Counter,
    /// Random simulation: candidate pairs dropped by the prefilter.
    pub sim_pairs_dropped: Counter,
    /// Random simulation: wide evaluation passes of the compiled tape
    /// kernel (each pass covers `lanes / 64` words). Zero when the
    /// prefilter ran on the graph-walking reference path.
    pub sim_passes: Counter,
    /// Random simulation: tape instructions executed by the compiled
    /// kernel (instructions per eval × evals). Zero on the reference
    /// path.
    pub sim_tape_ops: Counter,
    /// Lint: rules executed over netlists.
    pub lint_rules_run: Counter,
    /// Lint: diagnostics (violations) reported by executed rules.
    pub lint_violations: Counter,
    /// Slicing: cone slices built (one per sink group in slice mode).
    pub slice_builds: Counter,
    /// Slicing: pairs served by an already-built sink-group slice
    /// (group size minus one, summed over groups).
    pub slice_cache_hits: Counter,
    /// Slicing: total nodes across all built slices (mean slice size =
    /// `slice_nodes / slice_builds`).
    pub slice_nodes: Counter,
    /// Slicing: total per-slice variables across all built slices — free
    /// variables for the implication engine, encoded CNF variables for
    /// the SAT engine.
    pub slice_vars: Counter,
    /// Slicing: largest slice built (node count).
    pub slice_nodes_peak: Counter,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-integer snapshot of every counter.
    pub fn counters(&self) -> Counters {
        Counters {
            implications: self.implications.get(),
            contradictions: self.contradictions.get(),
            learned_implications: self.learned_implications.get(),
            atpg_decisions: self.atpg_decisions.get(),
            atpg_backtracks: self.atpg_backtracks.get(),
            atpg_aborts: self.atpg_aborts.get(),
            sat_decisions: self.sat_decisions.get(),
            sat_propagations: self.sat_propagations.get(),
            sat_conflicts: self.sat_conflicts.get(),
            sat_learned: self.sat_learned.get(),
            sat_restarts: self.sat_restarts.get(),
            bdd_peak_nodes: self.bdd_peak_nodes.get(),
            bdd_cache_lookups: self.bdd_cache_lookups.get(),
            bdd_cache_hits: self.bdd_cache_hits.get(),
            sim_words: self.sim_words.get(),
            sim_pairs_dropped: self.sim_pairs_dropped.get(),
            sim_passes: self.sim_passes.get(),
            sim_tape_ops: self.sim_tape_ops.get(),
            lint_rules_run: self.lint_rules_run.get(),
            lint_violations: self.lint_violations.get(),
            slice_builds: self.slice_builds.get(),
            slice_cache_hits: self.slice_cache_hits.get(),
            slice_nodes: self.slice_nodes.get(),
            slice_vars: self.slice_vars.get(),
            slice_nodes_peak: self.slice_nodes_peak.get(),
        }
    }
}

/// Serializable snapshot of [`Metrics`] — same fields, plain `u64`s.
///
/// Counter totals are sums of deterministic per-pair deltas, so two
/// runs with the same seed and config produce identical `Counters`
/// regardless of worker scheduling (span *timings* do not share this
/// property, which is why they live outside this struct).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings documented on `Metrics`
pub struct Counters {
    pub implications: u64,
    pub contradictions: u64,
    pub learned_implications: u64,
    pub atpg_decisions: u64,
    pub atpg_backtracks: u64,
    pub atpg_aborts: u64,
    pub sat_decisions: u64,
    pub sat_propagations: u64,
    pub sat_conflicts: u64,
    pub sat_learned: u64,
    pub sat_restarts: u64,
    pub bdd_peak_nodes: u64,
    pub bdd_cache_lookups: u64,
    pub bdd_cache_hits: u64,
    pub sim_words: u64,
    pub sim_pairs_dropped: u64,
    // Tape-kernel counters arrived after the first report format;
    // `default` keeps old saved reports parseable.
    #[serde(default)]
    pub sim_passes: u64,
    #[serde(default)]
    pub sim_tape_ops: u64,
    pub lint_rules_run: u64,
    pub lint_violations: u64,
    // Slice counters arrived after the first journal/report format;
    // `default` keeps old saved reports parseable.
    #[serde(default)]
    pub slice_builds: u64,
    #[serde(default)]
    pub slice_cache_hits: u64,
    #[serde(default)]
    pub slice_nodes: u64,
    #[serde(default)]
    pub slice_vars: u64,
    #[serde(default)]
    pub slice_nodes_peak: u64,
}

impl Counters {
    /// Fraction of BDD cache lookups that hit, or 0.0 with no lookups.
    pub fn bdd_cache_hit_rate(&self) -> f64 {
        if self.bdd_cache_lookups == 0 {
            0.0
        } else {
            self.bdd_cache_hits as f64 / self.bdd_cache_lookups as f64
        }
    }

    /// Mean node count of built slices, or 0.0 when no slice was built.
    pub fn slice_nodes_mean(&self) -> f64 {
        if self.slice_builds == 0 {
            0.0
        } else {
            self.slice_nodes as f64 / self.slice_builds as f64
        }
    }

    /// Mean per-slice variable count, or 0.0 when no slice was built.
    pub fn slice_vars_mean(&self) -> f64 {
        if self.slice_builds == 0 {
            0.0
        } else {
            self.slice_vars as f64 / self.slice_builds as f64
        }
    }
}

/// Full observability snapshot: counters plus span timings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Engine counters (deterministic for a fixed seed/config).
    pub counters: Counters,
    /// Accumulated span timings by path (wall-clock, not deterministic).
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// Random-simulation throughput: 64-pattern words per wall-clock
    /// second of the `analyze/sim` span, or 0.0 when the span is absent
    /// or empty. Wall-clock-derived, so (unlike the counters) not
    /// deterministic across runs.
    pub fn sim_words_per_sec(&self) -> f64 {
        let secs = self
            .spans
            .get("analyze/sim")
            .map_or(0.0, |s| s.total.as_secs_f64());
        if secs > 0.0 {
            self.counters.sim_words as f64 / secs
        } else {
            0.0
        }
    }
}

// ---------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------

/// Outcome of one of the four value assignments the implication step
/// tries on a pair, or of a downstream search on that assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentEvent {
    /// Value assigned to the source FF at time 0.
    pub src_value: bool,
    /// Value assigned to the destination FF input at the sink time.
    pub dst_value: bool,
    /// What happened: `contradiction`, `implied_violation`, `witness`,
    /// `unsat`, or `aborted`.
    pub outcome: String,
}

/// One journal record: how a single FF pair was resolved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairEvent {
    /// Source FF index.
    pub src: usize,
    /// Destination FF index.
    pub dst: usize,
    /// Pipeline step that resolved the pair (`structural`, `random_sim`,
    /// `implication`, `atpg`).
    pub step: String,
    /// Final classification: `multi`, `single`, or `unknown`.
    pub class: String,
    /// Decision engine that produced the classification, if any.
    pub engine: Option<String>,
    /// Per-assignment outcomes from the implication/search step.
    pub assignments: Vec<AssignmentEvent>,
    /// Wall-clock microseconds spent on this pair.
    pub micros: u64,
    /// For pairs dropped by the random-simulation prefilter: the 0-based
    /// index of the 64-pattern word whose lane witnessed the violation —
    /// the per-pair drop cause (simulation time is spent in bulk, so
    /// `micros` stays 0 for these records). `None` for every other step.
    pub sim_word: Option<u64>,
    /// Node count of the sink-group slice this pair ran on. `None` when
    /// slicing was off or the resolving step ran no engine.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slice_nodes: Option<u64>,
    /// Variable count of that slice (free variables for implication,
    /// encoded CNF variables for SAT). `None` as for `slice_nodes`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slice_vars: Option<u64>,
}

/// Receiver of per-pair journal events.
///
/// Implementations must be callable concurrently from the pair-loop
/// worker threads.
pub trait ObsSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &PairEvent);

    /// Whether events will actually be kept. Hot paths check this before
    /// building [`PairEvent`]s, so a disabled sink costs one virtual
    /// call per pair and nothing per assignment.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes buffered events to durable storage, if any.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Default sink: drops everything and reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn record(&self, _event: &PairEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// NDJSON file sink: one JSON object per line, one line per pair.
#[derive(Debug)]
pub struct FileSink {
    out: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncates) the journal file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(FileSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl ObsSink for FileSink {
    fn record(&self, event: &PairEvent) {
        let line = serde_json::to_string(event).expect("PairEvent serializes");
        let mut out = self.out.lock().expect("file sink poisoned");
        // An exhausted disk mid-journal should not kill the analysis;
        // the error resurfaces on the explicit end-of-run flush.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) -> io::Result<()> {
        self.out.lock().expect("file sink poisoned").flush()
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// In-memory sink for tests and for `mcpath stats` post-processing.
#[derive(Debug, Default)]
pub struct MemSink {
    events: Mutex<Vec<PairEvent>>,
}

impl MemSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes all recorded events, leaving the sink empty.
    pub fn drain(&self) -> Vec<PairEvent> {
        std::mem::take(&mut self.events.lock().expect("mem sink poisoned"))
    }
}

impl ObsSink for MemSink {
    fn record(&self, event: &PairEvent) {
        self.events
            .lock()
            .expect("mem sink poisoned")
            .push(event.clone());
    }
}

/// Parses an NDJSON journal (as written by [`FileSink`]) back into
/// events. Blank lines are ignored; malformed lines are errors.
pub fn read_journal(reader: impl io::Read) -> io::Result<Vec<PairEvent>> {
    let mut events = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal line {}: {e}", lineno + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Opens and parses the NDJSON journal file at `path`.
pub fn read_journal_file(path: impl AsRef<Path>) -> io::Result<Vec<PairEvent>> {
    read_journal(File::open(path)?)
}

// ---------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------

/// Throttled progress reporter writing single lines to stderr.
#[derive(Debug)]
struct ProgressMeter {
    every: Duration,
    started: Instant,
    last: Mutex<Instant>,
}

impl ProgressMeter {
    fn new(every: Duration) -> Self {
        let now = Instant::now();
        ProgressMeter {
            every,
            started: now,
            last: Mutex::new(now - every),
        }
    }

    fn tick(&self, label: &str, done: usize, total: usize) {
        // Never block a worker on the progress lock.
        let Ok(mut last) = self.last.try_lock() else {
            return;
        };
        if last.elapsed() < self.every && done != total {
            return;
        }
        *last = Instant::now();
        let pct = if total == 0 {
            100.0
        } else {
            done as f64 * 100.0 / total as f64
        };
        eprintln!(
            "[mcpath] {label}: {done}/{total} ({pct:.1}%) after {:.1}s",
            self.started.elapsed().as_secs_f64()
        );
    }
}

// ---------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------

/// Everything the pipeline needs to observe one run: timers, counters,
/// a journal sink, and an optional progress meter. Shared by reference
/// across the pair-loop worker threads.
pub struct ObsCtx {
    /// Span timers.
    pub timers: Timers,
    /// Engine counters.
    pub metrics: Metrics,
    sink: Box<dyn ObsSink>,
    progress: Option<ProgressMeter>,
}

impl Default for ObsCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ObsCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsCtx")
            .field("timers", &self.timers)
            .field("metrics", &self.metrics)
            .field("sink_enabled", &self.sink.enabled())
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl ObsCtx {
    /// A context with a [`NullSink`] and no progress meter — the
    /// zero-overhead default.
    pub fn new() -> Self {
        ObsCtx {
            timers: Timers::new(),
            metrics: Metrics::new(),
            sink: Box::new(NullSink),
            progress: None,
        }
    }

    /// Replaces the journal sink.
    pub fn with_sink(mut self, sink: Box<dyn ObsSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Enables progress lines on stderr, at most one per `every`.
    pub fn with_progress(mut self, every: Duration) -> Self {
        self.progress = Some(ProgressMeter::new(every));
        self
    }

    /// The journal sink.
    pub fn sink(&self) -> &dyn ObsSink {
        &*self.sink
    }

    /// Emits a progress line if a meter is attached and the throttle
    /// allows it.
    pub fn progress(&self, label: &str, done: usize, total: usize) {
        if let Some(meter) = &self.progress {
            meter.tick(label, done, total);
        }
    }

    /// Counters-plus-spans snapshot of the run so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.metrics.counters(),
            spans: self.timers.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn span_guards_accumulate_by_path() {
        let timers = Timers::new();
        {
            let root = timers.span("analyze");
            let _child = root.child("pairs");
            std::thread::sleep(Duration::from_millis(2));
        }
        timers.add("analyze/pairs", Duration::from_millis(5));
        let snap = timers.snapshot();
        assert_eq!(snap["analyze"].count, 1);
        assert_eq!(snap["analyze/pairs"].count, 2);
        assert!(snap["analyze/pairs"].total >= Duration::from_millis(5));
        assert!(timers.total("analyze") >= Duration::from_millis(2));
        assert_eq!(timers.total("never"), Duration::ZERO);
    }

    #[test]
    fn span_stop_returns_elapsed_once() {
        let timers = Timers::new();
        let g = timers.span("x");
        let elapsed = g.stop();
        let snap = timers.snapshot();
        assert_eq!(snap["x"].count, 1);
        assert_eq!(snap["x"].total, elapsed);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let metrics = Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&metrics);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.implications.add(1);
                    }
                    m.bdd_peak_nodes.raise_to(37);
                });
            }
        });
        let c = metrics.counters();
        assert_eq!(c.implications, 4000);
        assert_eq!(c.bdd_peak_nodes, 37);
        assert_eq!(c.bdd_cache_hit_rate(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let ctx = ObsCtx::new();
        ctx.metrics.sat_conflicts.add(7);
        ctx.timers.add("analyze/sim", Duration::from_micros(1234));
        let snap = ctx.snapshot();
        let text = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.counters.sat_conflicts, 7);
    }

    #[test]
    fn null_sink_is_disabled_and_mem_sink_records() {
        assert!(!NullSink.enabled());
        let sink = MemSink::new();
        assert!(sink.enabled());
        let event = PairEvent {
            src: 1,
            dst: 2,
            step: "implication".to_owned(),
            class: "multi".to_owned(),
            engine: Some("implication".to_owned()),
            assignments: vec![AssignmentEvent {
                src_value: true,
                dst_value: false,
                outcome: "contradiction".to_owned(),
            }],
            micros: 42,
            sim_word: None,
            slice_nodes: Some(12),
            slice_vars: Some(4),
        };
        sink.record(&event);
        assert_eq!(sink.drain(), vec![event]);
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn file_sink_writes_parseable_ndjson() {
        let path = std::env::temp_dir().join(format!(
            "mcp_obs_journal_test_{}.ndjson",
            std::process::id()
        ));
        let events: Vec<PairEvent> = (0..3)
            .map(|k| PairEvent {
                src: k,
                dst: k + 1,
                step: "atpg".to_owned(),
                class: "single".to_owned(),
                engine: None,
                assignments: Vec::new(),
                micros: k as u64,
                sim_word: Some(k as u64),
                slice_nodes: None,
                slice_vars: None,
            })
            .collect();
        {
            let sink = FileSink::create(&path).expect("create");
            for e in &events {
                sink.record(e);
            }
            sink.flush().expect("flush");
        }
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 3);
        let back = read_journal_file(&path).expect("parse journal");
        assert_eq!(back, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_reader_rejects_garbage() {
        let bad = "{\"src\": 1}\nnot json\n";
        assert!(read_journal(bad.as_bytes()).is_err());
    }

    #[test]
    fn pre_slice_journals_and_snapshots_still_parse() {
        // Records written before the slice fields existed must load with
        // the fields defaulted, not error.
        let old = "{\"src\":0,\"dst\":1,\"step\":\"implication\",\"class\":\"multi\",\
                   \"engine\":\"implication\",\"assignments\":[],\"micros\":3,\
                   \"sim_word\":null}\n";
        let events = read_journal(old.as_bytes()).expect("old journal parses");
        assert_eq!(events[0].slice_nodes, None);
        assert_eq!(events[0].slice_vars, None);

        let old_counters = "{\"implications\":1,\"contradictions\":0,\
            \"learned_implications\":0,\"atpg_decisions\":0,\"atpg_backtracks\":0,\
            \"atpg_aborts\":0,\"sat_decisions\":0,\"sat_propagations\":0,\
            \"sat_conflicts\":0,\"sat_learned\":0,\"sat_restarts\":0,\
            \"bdd_peak_nodes\":0,\"bdd_cache_lookups\":0,\"bdd_cache_hits\":0,\
            \"sim_words\":0,\"sim_pairs_dropped\":0,\"lint_rules_run\":0,\
            \"lint_violations\":0}";
        let c: Counters = serde_json::from_str(old_counters).expect("old counters parse");
        assert_eq!(c.slice_builds, 0);
        assert_eq!(c.slice_nodes_mean(), 0.0);
        assert_eq!(c.sim_passes, 0);
        assert_eq!(c.sim_tape_ops, 0);
    }

    #[test]
    fn sim_throughput_derives_from_the_sim_span() {
        let ctx = ObsCtx::new();
        assert_eq!(ctx.snapshot().sim_words_per_sec(), 0.0);
        ctx.metrics.sim_words.add(500);
        ctx.timers.add("analyze/sim", Duration::from_millis(250));
        let wps = ctx.snapshot().sim_words_per_sec();
        assert!((wps - 2000.0).abs() < 1e-6, "got {wps}");
    }

    #[test]
    fn obs_ctx_is_sync_and_sendable() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ObsCtx>();
        assert_sync::<Timers>();
        assert_sync::<Metrics>();
    }
}
