//! Throttled stderr progress reporting with cost-weighted ETA.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Throttled progress reporter writing single lines to stderr.
#[derive(Debug)]
pub(crate) struct ProgressMeter {
    every: Duration,
    started: Instant,
    last: Mutex<Instant>,
}

impl ProgressMeter {
    pub(crate) fn new(every: Duration) -> Self {
        let now = Instant::now();
        ProgressMeter {
            every,
            started: now,
            last: Mutex::new(now - every),
        }
    }

    /// Emits one line if the throttle allows. `cost` carries the
    /// scheduler's work-weighted progress as `(completed_cost,
    /// total_cost)`: when present, the ETA extrapolates elapsed time
    /// over *cost* rather than pair counts — sink groups are sorted
    /// hardest-first, so count-based extrapolation would overestimate
    /// badly early in a run.
    pub(crate) fn tick(&self, label: &str, done: usize, total: usize, cost: Option<(u64, u64)>) {
        // Never block a worker on the progress lock.
        let Ok(mut last) = self.last.try_lock() else {
            return;
        };
        if last.elapsed() < self.every && done != total {
            return;
        }
        *last = Instant::now();
        let pct = if total == 0 {
            100.0
        } else {
            done as f64 * 100.0 / total as f64
        };
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = match cost {
            Some((done_cost, total_cost)) if done_cost > 0 && total_cost > done_cost => {
                let remaining = elapsed * (total_cost - done_cost) as f64 / done_cost as f64;
                format!(", eta {remaining:.1}s")
            }
            _ => String::new(),
        };
        eprintln!("[mcpath] {label}: {done}/{total} ({pct:.1}%) after {elapsed:.1}s{eta}");
    }
}
