//! Differential soundness of the dataflow constant lattice against
//! `EventSim` ground truth.
//!
//! The two claims the static pre-classification pass rests on (see
//! `dataflow.rs` and DESIGN.md §14):
//!
//! - **base**: a node the *first Kleene iterate* calls constant holds
//!   that value at every time, from any initial state, under any
//!   stimulus — the FF frontier was all-X, which under-approximates
//!   every concrete state.
//! - **fix**: a node the *fixpoint* calls constant holds that value at
//!   every time ≥ `iterations` clock edges, from any initial state.
//!
//! Both are checked here by simulating random constant-seeded netlists
//! under fully random definite stimulus and comparing every definite
//! lattice entry against the simulator.

use mcp_lint::{const_lattice, AnalysisIndex};
use mcp_logic::{GateKind, V3};
use mcp_netlist::{Netlist, NetlistBuilder, NodeId};
use mcp_sim::EventSim;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random sequential netlist whose gate pool mixes PIs, FFs, and CONST
/// drivers, so the lattice has definite entries to check (the stock
/// `mcp_gen::random` generator emits no constants).
fn const_seeded_netlist(seed: u64, gates: usize) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("dfdiff");
    let mut pool: Vec<NodeId> = (0..3).map(|i| b.input(format!("I{i}"))).collect();
    pool.push(b.constant("C0", false));
    pool.push(b.constant("C1", true));
    let ffs: Vec<NodeId> = (0..3).map(|i| b.dff(format!("F{i}"))).collect();
    pool.extend(&ffs);
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for _ in 0..gates {
        let kind = kinds[rng.random_range(0..kinds.len())];
        let arity = kind.fixed_arity().unwrap_or(rng.random_range(1..=3));
        let ins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        let g = b.gate_auto(kind, ins).unwrap();
        pool.push(g);
    }
    for &ff in &ffs {
        let d = pool[rng.random_range(0..pool.len())];
        b.set_dff_input(ff, d).unwrap();
    }
    b.mark_output(*pool.last().unwrap());
    b.finish().unwrap()
}

/// Drives every PI and (initial) FF to a random definite value.
fn randomize(sim: &mut EventSim, nl: &Netlist, rng: &mut StdRng, states_too: bool) {
    for pi in 0..nl.num_inputs() {
        sim.set_input(pi, V3::from(rng.random::<bool>()));
    }
    if states_too {
        for ff in 0..nl.num_ffs() {
            sim.set_state(ff, V3::from(rng.random::<bool>()));
        }
    }
    sim.propagate();
}

/// Asserts every definite entry of `values` matches the simulator.
fn assert_lattice_holds(nl: &Netlist, sim: &EventSim, values: &[V3], what: &str) {
    for (id, node) in nl.nodes() {
        let claimed = values[id.index()];
        if claimed.is_definite() {
            assert_eq!(
                sim.value(id),
                claimed,
                "{what} lattice wrong at `{}`",
                node.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn base_constants_hold_at_every_time(seed in any::<u64>(), gates in 5usize..40) {
        let nl = const_seeded_netlist(seed, gates);
        let lattice = const_lattice(&nl);
        prop_assume!(lattice.num_definite_base() > 0);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xB45E);
        let mut sim = EventSim::new(&nl);
        randomize(&mut sim, &nl, &mut rng, true);
        assert_lattice_holds(&nl, &sim, &lattice.base, "base");
        // The base claim is time-independent: it must survive clocking.
        for _ in 0..4 {
            sim.clock();
            randomize(&mut sim, &nl, &mut rng, false);
            assert_lattice_holds(&nl, &sim, &lattice.base, "base");
        }
    }

    #[test]
    fn fixpoint_constants_hold_after_convergence(seed in any::<u64>(), gates in 5usize..40) {
        let nl = const_seeded_netlist(seed, gates);
        let lattice = const_lattice(&nl);
        prop_assume!(lattice.num_definite_fix() > lattice.num_definite_base());

        let mut rng = StdRng::seed_from_u64(seed ^ 0xF15E);
        let mut sim = EventSim::new(&nl);
        randomize(&mut sim, &nl, &mut rng, true);
        // Run the widening horizon out from an arbitrary definite state.
        for _ in 0..lattice.iterations {
            sim.clock();
            randomize(&mut sim, &nl, &mut rng, false);
        }
        for _ in 0..3 {
            assert_lattice_holds(&nl, &sim, &lattice.fix, "fix");
            sim.clock();
            randomize(&mut sim, &nl, &mut rng, false);
        }
    }

    #[test]
    fn index_base_matches_standalone_lattice(seed in any::<u64>(), gates in 5usize..30) {
        // `const_lattice` (the pipeline entry point) and the full index
        // build must agree — the pre-pass and the lint rules reason from
        // the same facts.
        let nl = const_seeded_netlist(seed, gates);
        let lattice = const_lattice(&nl);
        let index = AnalysisIndex::build(&nl);
        for (id, _) in nl.nodes() {
            prop_assert_eq!(index.base_value(id), lattice.base[id.index()]);
            prop_assert_eq!(index.fix_value(id), lattice.fix[id.index()]);
        }
        prop_assert_eq!(index.lattice().iterations, lattice.iterations);
    }
}
