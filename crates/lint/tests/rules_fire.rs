//! Negative corpus: one hand-built corrupt netlist per rule, asserting
//! the rule fires exactly once and is anchored to the right nodes.
//!
//! Each case runs its rule in isolation (a registry of one) so overlap
//! between rules — a floating gate is usually also unreachable — cannot
//! mask a miscount, then re-runs the full default registry to check the
//! rule still fires among its peers.

use mcp_lint::{Diagnostic, Diagnostics, LintConfig, LintRule, Registry, Severity};
use mcp_logic::GateKind;
use mcp_netlist::{Netlist, NetlistBuilder, NodeId, NodeKind};

/// Runs exactly one rule over the netlist.
fn run_rule(rule: Box<dyn LintRule>, nl: &Netlist) -> Diagnostics {
    let mut r = Registry::empty();
    r.register(rule);
    r.run(nl, &LintConfig::default())
}

/// Asserts `report` is a single finding of `rule` at `severity`, anchored
/// to exactly `nodes`, and returns it.
fn the_one(report: &Diagnostics, rule: &str, severity: Severity, nodes: &[NodeId]) -> Diagnostic {
    assert_eq!(report.len(), 1, "expected exactly one finding: {report:?}");
    let d = report.iter().next().unwrap().clone();
    assert_eq!(d.rule, rule);
    assert_eq!(d.severity, severity);
    let want: Vec<usize> = nodes.iter().map(|n| n.index()).collect();
    assert_eq!(d.nodes, want, "wrong anchor nodes: {d:?}");
    d
}

/// Checks the full default registry also reports `rule` on this netlist.
fn default_registry_agrees(nl: &Netlist, rule: &str) {
    let report = Registry::with_default_rules().run(nl, &LintConfig::default());
    assert!(
        report.iter().any(|d| d.rule == rule),
        "default registry misses `{rule}`: {report:?}"
    );
}

#[test]
fn comb_cycle_fires_once() {
    // g1 = AND(a, g2); g2 = BUF(g1) — a two-gate loop, plus a healthy gate.
    let mut b = NetlistBuilder::new("cyc");
    let a = b.input("a");
    let q = b.dff("q");
    let g1 = b.gate("g1", GateKind::And, [a, a]).unwrap();
    let g2 = b.gate("g2", GateKind::Buf, [g1]).unwrap();
    let ok = b.gate("ok", GateKind::Not, [a]).unwrap();
    b.rewire_fanin(g1, 1, g2).unwrap();
    b.set_dff_input(q, ok).unwrap();
    b.mark_output(q);
    let nl = b.finish_unchecked();

    let report = run_rule(Box::new(mcp_lint::rules::CombCycle), &nl);
    let d = the_one(&report, "comb-cycle", Severity::Error, &[g1, g2]);
    assert!(d.message.contains("g1") && d.message.contains("g2"));
    default_registry_agrees(&nl, "comb-cycle");
}

#[test]
fn self_loop_gate_is_a_cycle() {
    let mut b = NetlistBuilder::new("selfcyc");
    let a = b.input("a");
    let g = b.gate("g", GateKind::And, [a, a]).unwrap();
    b.rewire_fanin(g, 1, g).unwrap();
    b.mark_output(g);
    let nl = b.finish_unchecked();
    let report = run_rule(Box::new(mcp_lint::rules::CombCycle), &nl);
    the_one(&report, "comb-cycle", Severity::Error, &[g]);
}

#[test]
fn unconnected_dff_fires_once() {
    let mut b = NetlistBuilder::new("open");
    let a = b.input("a");
    let q = b.dff("q"); // never connected
    let ok = b.dff("ok");
    b.set_dff_input(ok, a).unwrap();
    b.mark_output(q);
    b.mark_output(ok);
    let nl = b.finish_unchecked();

    let report = run_rule(Box::new(mcp_lint::rules::UnconnectedDff), &nl);
    the_one(&report, "unconnected-dff", Severity::Error, &[q]);
    default_registry_agrees(&nl, "unconnected-dff");
}

#[test]
fn multi_driven_dff_fires_once() {
    let mut b = NetlistBuilder::new("md");
    let a = b.input("a");
    let c = b.input("b");
    let q = b.dff("q");
    b.set_dff_input(q, a).unwrap();
    b.add_dff_driver(q, c).unwrap();
    b.mark_output(q);
    let nl = b.finish_unchecked();

    let report = run_rule(Box::new(mcp_lint::rules::MultiDrivenDff), &nl);
    let d = the_one(&report, "multi-driven-dff", Severity::Error, &[q]);
    assert!(d.message.contains("2 D drivers"), "{d:?}");
    default_registry_agrees(&nl, "multi-driven-dff");
}

#[test]
fn duplicate_name_fires_once() {
    let mut b = NetlistBuilder::new("dup");
    let a = b.input("x");
    let q = b.dff("q");
    let g = b.gate("x", GateKind::Not, [a]).unwrap(); // name clash with input
    b.set_dff_input(q, g).unwrap();
    b.mark_output(q);
    let nl = b.finish_unchecked();

    let report = run_rule(Box::new(mcp_lint::rules::DuplicateName), &nl);
    let d = the_one(&report, "duplicate-name", Severity::Error, &[a, g]);
    assert!(d.message.contains("`x`"), "{d:?}");
    default_registry_agrees(&nl, "duplicate-name");
}

#[test]
fn floating_net_fires_once() {
    let mut b = NetlistBuilder::new("float");
    let a = b.input("a");
    let q = b.dff("q");
    let keep = b.gate("keep", GateKind::Not, [a]).unwrap();
    // `mid` is read by `tail`; `tail` is read by nothing → only `tail`
    // floats (both are unreachable, which is the other rule's business).
    let mid = b.gate("mid", GateKind::Buf, [a]).unwrap();
    let tail = b.gate("tail", GateKind::Not, [mid]).unwrap();
    b.set_dff_input(q, keep).unwrap();
    b.mark_output(q);
    let nl = b.finish().expect("well-formed apart from hygiene");

    let report = run_rule(Box::new(mcp_lint::rules::FloatingNet), &nl);
    the_one(&report, "floating-net", Severity::Warn, &[tail]);
    default_registry_agrees(&nl, "floating-net");
}

#[test]
fn unreachable_logic_fires_once_covering_the_dead_cone() {
    let mut b = NetlistBuilder::new("dead");
    let a = b.input("a");
    let q = b.dff("q");
    let keep = b.gate("keep", GateKind::Not, [a]).unwrap();
    let mid = b.gate("mid", GateKind::Buf, [a]).unwrap();
    let tail = b.gate("tail", GateKind::Not, [mid]).unwrap();
    b.set_dff_input(q, keep).unwrap();
    b.mark_output(q);
    let nl = b.finish().expect("well-formed apart from hygiene");

    let report = run_rule(Box::new(mcp_lint::rules::UnreachableLogic), &nl);
    let d = the_one(&report, "unreachable-logic", Severity::Warn, &[mid, tail]);
    assert!(d.message.contains("2 gate(s)"), "{d:?}");
    default_registry_agrees(&nl, "unreachable-logic");
}

#[test]
fn zero_width_gate_fires_once() {
    // Only a broken deserializer can produce an empty fanin list; emulate
    // one through the builder's `raw_node` entry point.
    let mut b = NetlistBuilder::new("zw");
    let a = b.raw_node("a", NodeKind::Input, Vec::new());
    let q = b.raw_node("q", NodeKind::Dff, vec![a]);
    let zw = b.raw_node("zw", NodeKind::Gate(GateKind::And), Vec::new());
    let _ok = b.raw_node("ok", NodeKind::Gate(GateKind::Not), vec![a]);
    b.mark_output(q);
    let nl = b.finish_unchecked();

    let report = run_rule(Box::new(mcp_lint::rules::ZeroWidthGate), &nl);
    let d = the_one(&report, "zero-width-gate", Severity::Error, &[zw]);
    assert!(d.message.contains("`zw`"), "{d:?}");
    default_registry_agrees(&nl, "zero-width-gate");
}

#[test]
fn constant_dff_fires_once() {
    let mut b = NetlistBuilder::new("cdff");
    let a = b.input("a");
    let one = b.constant("one", true);
    let q = b.dff("q");
    let ok = b.dff("ok");
    // q.D = OR(a, 1) — provably constant 1.
    let g = b.gate("g", GateKind::Or, [a, one]).unwrap();
    b.set_dff_input(q, g).unwrap();
    b.set_dff_input(ok, a).unwrap();
    b.mark_output(q);
    b.mark_output(ok);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::ConstantDff), &nl);
    let d = the_one(&report, "constant-dff", Severity::Warn, &[q]);
    assert!(d.message.contains("constant 1"), "{d:?}");
    default_registry_agrees(&nl, "constant-dff");
}

#[test]
fn dangling_ff_fires_once() {
    let mut b = NetlistBuilder::new("dang");
    let a = b.input("a");
    let q = b.dff("q"); // driven but never read, not an output
    let ok = b.dff("ok");
    b.set_dff_input(q, a).unwrap();
    b.set_dff_input(ok, a).unwrap();
    b.mark_output(ok);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::DanglingFf), &nl);
    the_one(&report, "dangling-ff", Severity::Warn, &[q]);
    default_registry_agrees(&nl, "dangling-ff");
}

#[test]
fn const_foldable_fires_once_aggregated() {
    let mut b = NetlistBuilder::new("cf");
    let a = b.input("a");
    let zero = b.constant("zero", false);
    let q = b.dff("q");
    // g1 = AND(a, 0) → 0; g2 = NOT(g1) → 1; live = OR(g2, a) is NOT
    // foldable (g2 is constant 1 but OR(1, a) is... constant 1 — pick XOR).
    let g1 = b.gate("g1", GateKind::And, [a, zero]).unwrap();
    let g2 = b.gate("g2", GateKind::Not, [g1]).unwrap();
    let live = b.gate("live", GateKind::Xor, [g2, a]).unwrap();
    b.set_dff_input(q, live).unwrap();
    b.mark_output(q);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::ConstFoldable), &nl);
    let d = the_one(&report, "const-foldable", Severity::Info, &[g1, g2]);
    assert!(d.message.contains("2 gate(s)"), "{d:?}");
}

#[test]
fn const_foldable_count_matches_sweep() {
    let mut b = NetlistBuilder::new("cfsweep");
    let a = b.input("a");
    let zero = b.constant("zero", false);
    let q = b.dff("q");
    let g1 = b.gate("g1", GateKind::And, [a, zero]).unwrap();
    let g2 = b.gate("g2", GateKind::Not, [g1]).unwrap();
    let live = b.gate("live", GateKind::Xor, [g2, a]).unwrap();
    b.set_dff_input(q, live).unwrap();
    b.mark_output(q);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::ConstFoldable), &nl);
    let flagged = report.iter().next().map_or(0, |d| d.nodes.len());
    let (_, stats) = mcp_netlist::sweep(&nl);
    // sweep folds exactly the provably-constant gates the lint flags
    // (later rounds may cascade further, so sweep's count is a floor).
    assert!(
        stats.folded_constant >= flagged,
        "sweep folded {} but lint flagged {flagged}",
        stats.folded_constant
    );
    assert!(flagged >= 2);
}

#[test]
fn self_loop_dff_fires_once() {
    let mut b = NetlistBuilder::new("loopff");
    let a = b.input("a");
    let q = b.dff("q");
    let ok = b.dff("ok");
    let hold = b.gate("hold", GateKind::And, [q, a]).unwrap();
    b.set_dff_input(q, hold).unwrap();
    b.set_dff_input(ok, a).unwrap();
    b.mark_output(q);
    b.mark_output(ok);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::SelfLoopDff), &nl);
    the_one(&report, "self-loop-dff", Severity::Info, &[q]);
}

#[test]
fn x_prop_to_dff_fires_on_a_pi_free_counter() {
    // q.D = NOT(q): a free-running toggle no input can ever set. The
    // healthy FF is fed from a PI and must stay clean.
    let mut b = NetlistBuilder::new("xprop");
    let a = b.input("a");
    let q = b.dff("q");
    let ok = b.dff("ok");
    let n = b.gate("n", GateKind::Not, [q]).unwrap();
    b.set_dff_input(q, n).unwrap();
    b.set_dff_input(ok, a).unwrap();
    b.mark_output(q);
    b.mark_output(ok);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::XPropToDff), &nl);
    let d = the_one(&report, "x-prop-to-dff", Severity::Info, &[q]);
    assert!(d.message.contains("power-up X"), "{d:?}");
    default_registry_agrees(&nl, "x-prop-to-dff");

    // Negative: route the PI into the counter and the finding vanishes.
    let mut b = NetlistBuilder::new("xprop_ok");
    let a = b.input("a");
    let q = b.dff("q");
    let n = b.gate("n", GateKind::Xor, [q, a]).unwrap();
    b.set_dff_input(q, n).unwrap();
    b.mark_output(q);
    let nl = b.finish().unwrap();
    assert!(run_rule(Box::new(mcp_lint::rules::XPropToDff), &nl).is_empty());
}

#[test]
fn unobservable_logic_fires_behind_a_constant_shadow() {
    // dead = NOT(a) only feeds forced = OR(dead, 1): structurally live,
    // semantically unable to influence the FF behind the constant.
    let mut b = NetlistBuilder::new("dark");
    let a = b.input("a");
    let one = b.constant("one", true);
    let q = b.dff("q");
    let dead = b.gate("dead", GateKind::Not, [a]).unwrap();
    let forced = b.gate("forced", GateKind::Or, [dead, one]).unwrap();
    b.set_dff_input(q, forced).unwrap();
    b.mark_output(q);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::UnobservableLogic), &nl);
    let d = the_one(&report, "unobservable-logic", Severity::Warn, &[dead]);
    assert!(d.message.contains("shadowed by constants"), "{d:?}");
    default_registry_agrees(&nl, "unobservable-logic");

    // Negative: without the constant the same shape is fully observable.
    let mut b = NetlistBuilder::new("lit");
    let a = b.input("a");
    let c = b.input("c");
    let q = b.dff("q");
    let dead = b.gate("dead", GateKind::Not, [a]).unwrap();
    let forced = b.gate("forced", GateKind::Or, [dead, c]).unwrap();
    b.set_dff_input(q, forced).unwrap();
    b.mark_output(q);
    let nl = b.finish().unwrap();
    assert!(run_rule(Box::new(mcp_lint::rules::UnobservableLogic), &nl).is_empty());
}

#[test]
fn const_implied_net_fires_on_a_register_ladder() {
    // g1 = OR(a, 1) is combinationally constant (const-foldable's
    // business); q1, g2, q2 become constant only through clock edges.
    let mut b = NetlistBuilder::new("ladder");
    let a = b.input("a");
    let one = b.constant("one", true);
    let q1 = b.dff("q1");
    let q2 = b.dff("q2");
    let g1 = b.gate("g1", GateKind::Or, [a, one]).unwrap();
    let g2 = b.gate("g2", GateKind::Buf, [q1]).unwrap();
    let live = b.gate("live", GateKind::Xor, [q2, a]).unwrap();
    b.set_dff_input(q1, g1).unwrap();
    b.set_dff_input(q2, g2).unwrap();
    b.mark_output(live);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::ConstImpliedNet), &nl);
    let d = the_one(&report, "const-implied-net", Severity::Warn, &[q1, q2, g2]);
    assert!(d.message.contains("after 2 clock edge(s)"), "{d:?}");
    default_registry_agrees(&nl, "const-implied-net");

    // Negative: no CONST driver, no sequential constants.
    let mut b = NetlistBuilder::new("noconst");
    let a = b.input("a");
    let q = b.dff("q");
    b.set_dff_input(q, a).unwrap();
    b.mark_output(q);
    let nl = b.finish().unwrap();
    assert!(run_rule(Box::new(mcp_lint::rules::ConstImpliedNet), &nl).is_empty());
}

/// Builds one load-enabled FF: `q.D = OR(AND(q, NOT en), AND(data, en))`.
fn load_enabled_ff(b: &mut NetlistBuilder, tag: &str, data: NodeId, en: NodeId) -> NodeId {
    let q = b.dff(format!("q{tag}"));
    let ne = b.gate(format!("ne{tag}"), GateKind::Not, [en]).unwrap();
    let hold = b
        .gate(format!("hold{tag}"), GateKind::And, [q, ne])
        .unwrap();
    let load = b
        .gate(format!("load{tag}"), GateKind::And, [data, en])
        .unwrap();
    let d = b
        .gate(format!("d{tag}"), GateKind::Or, [hold, load])
        .unwrap();
    b.set_dff_input(q, d).unwrap();
    q
}

#[test]
fn domain_mixing_fires_across_enable_domains() {
    let mut b = NetlistBuilder::new("mix");
    let data = b.input("data");
    let en1 = b.input("en1");
    let en2 = b.input("en2");
    let q1 = load_enabled_ff(&mut b, "1", data, en1);
    let q2 = load_enabled_ff(&mut b, "2", q1, en2);
    b.mark_output(q2);
    let nl = b.finish().unwrap();

    let report = run_rule(Box::new(mcp_lint::rules::DomainMixing), &nl);
    let d = the_one(&report, "domain-mixing", Severity::Info, &[q1, q2]);
    assert!(d.message.contains("q1 -> q2"), "{d:?}");
    default_registry_agrees(&nl, "domain-mixing");

    // Negative: the same transfer under one shared enable is one domain.
    let mut b = NetlistBuilder::new("same");
    let data = b.input("data");
    let en = b.input("en");
    let q1 = load_enabled_ff(&mut b, "1", data, en);
    let q2 = load_enabled_ff(&mut b, "2", q1, en);
    b.mark_output(q2);
    let nl = b.finish().unwrap();
    assert!(run_rule(Box::new(mcp_lint::rules::DomainMixing), &nl).is_empty());
}

// ---------------------------------------------------------------------
// Registry configuration behaviour
// ---------------------------------------------------------------------

fn dangling_ff_netlist() -> Netlist {
    let mut b = NetlistBuilder::new("cfg");
    let a = b.input("a");
    let q = b.dff("q");
    let ok = b.dff("ok");
    b.set_dff_input(q, a).unwrap();
    b.set_dff_input(ok, a).unwrap();
    b.mark_output(ok);
    b.finish().unwrap()
}

#[test]
fn disabled_rules_do_not_run() {
    let nl = dangling_ff_netlist();
    let cfg = LintConfig::default().disable("dangling-ff");
    let report = Registry::with_default_rules().run(&nl, &cfg);
    assert!(report.iter().all(|d| d.rule != "dangling-ff"));
}

#[test]
fn deny_escalates_to_error() {
    let nl = dangling_ff_netlist();
    let cfg = LintConfig::default().deny("dangling-ff");
    let report = Registry::with_default_rules().run(&nl, &cfg);
    let d = report.iter().find(|d| d.rule == "dangling-ff").unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(report.has_errors());
}

#[test]
fn errors_only_drops_warnings() {
    let nl = dangling_ff_netlist();
    let report = Registry::with_default_rules().run(&nl, &LintConfig::errors_only());
    assert!(report.is_empty(), "{report:?}");
}

#[test]
fn metrics_count_rules_and_violations() {
    let nl = dangling_ff_netlist();
    let metrics = mcp_obs::Metrics::new();
    let report = Registry::with_default_rules().run_with_metrics(
        &nl,
        &LintConfig::default(),
        Some(&metrics),
    );
    let c = metrics.counters();
    assert_eq!(c.lint_rules_run, 15);
    assert_eq!(c.lint_violations, report.len() as u64);
    assert!(c.lint_violations >= 1);
    assert!(c.lint_nodes_visited > 0);
}

#[test]
fn shared_index_is_built_once_for_the_whole_registry() {
    // The satellite claim on m38584: `Registry::run` traverses the graph
    // once (the shared `AnalysisIndex` build), where the rules previously
    // re-walked it individually. The counter must equal exactly one index
    // build, i.e. a `#rules`-fold reduction over per-rule rebuilds.
    let nl = mcp_gen::suite::standard_suite()
        .into_iter()
        .find(|n| n.name() == "m38584")
        .expect("m38584 in the standard suite");
    let one_build = mcp_lint::AnalysisIndex::build(&nl).nodes_visited();
    assert!(one_build > 0);

    let metrics = mcp_obs::Metrics::new();
    Registry::with_default_rules().run_with_metrics(&nl, &LintConfig::default(), Some(&metrics));
    let c = metrics.counters();
    assert_eq!(c.lint_nodes_visited, one_build, "index built exactly once");
    let graph_rules = 9; // rules that consume lattice/SCC/reach/cone facts
    assert!(c.lint_nodes_visited < graph_rules * one_build);
}

#[test]
fn clean_circuit_yields_empty_report_and_json_round_trip() {
    let mut b = NetlistBuilder::new("clean");
    let a = b.input("a");
    let q = b.dff("q");
    let g = b.gate("g", GateKind::Not, [a]).unwrap();
    b.set_dff_input(q, g).unwrap();
    b.mark_output(q);
    let nl = b.finish().unwrap();
    let report = Registry::with_default_rules().run(&nl, &LintConfig::default());
    assert!(report.is_empty(), "{report:?}");
    assert_eq!(report.max_severity(), None);

    // JSON shape survives a round trip even when non-empty.
    let dirty = Registry::with_default_rules().run(&dangling_ff_netlist(), &LintConfig::default());
    let text = dirty.render_json();
    let back: Diagnostics = serde_json::from_str(&text).expect("parse");
    assert_eq!(back, dirty);
}
