//! Property: every netlist the `mcp-gen` crate produces is lint-clean.
//!
//! The structured generators (paper figures, parameterized datapaths,
//! pipelines, LFSRs, the benchmark suite) must produce **no finding at
//! Warn or above** — Info findings are legitimate structure (e.g. the
//! gated datapath's hold multiplexers self-loop by design). Random
//! netlists may legitimately contain dead or floating logic (their gates
//! are wired blind), so for them the property is the pipeline's own
//! admission bar: no Error-level finding.

use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_gen::{circuits, generators, suite};
use mcp_lint::{Diagnostics, LintConfig, Registry, Severity};
use mcp_netlist::Netlist;
use proptest::prelude::*;

fn lint(nl: &Netlist) -> Diagnostics {
    Registry::with_default_rules().run(nl, &LintConfig::default())
}

/// Asserts no finding at or above `bar`.
fn assert_below(nl: &Netlist, bar: Severity) {
    let report = lint(nl);
    let worst = report.max_severity();
    assert!(
        worst.is_none_or(|s| s < bar),
        "`{}` is not lint-clean below {bar}: {}",
        nl.name(),
        report.render_text(nl.name())
    );
}

#[test]
fn paper_circuits_are_clean() {
    assert_below(&circuits::fig1(), Severity::Warn);
    assert_below(&circuits::fig3(), Severity::Warn);
    assert_below(&circuits::fig4_fragment(), Severity::Warn);
}

#[test]
fn structured_generators_are_clean() {
    assert_below(&generators::pipeline(4, 3), Severity::Warn);
    assert_below(&generators::lfsr(8, 3), Severity::Warn);
    assert_below(
        &generators::gated_datapath(&generators::DatapathConfig {
            width: 3,
            counter_bits: 2,
            load_phase: 0,
            capture_phase: 3,
        }),
        Severity::Warn,
    );
}

#[test]
fn benchmark_suites_are_clean() {
    for nl in suite::standard_suite() {
        assert_below(&nl, Severity::Warn);
    }
    for nl in suite::quick_suite() {
        assert_below(&nl, Severity::Warn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_netlists_pass_the_admission_bar(
        seed in 0u64..100_000,
        ffs in 1usize..6,
        pis in 0usize..4,
        gates in 1usize..40,
        max_arity in 1usize..5,
    ) {
        let nl = random_netlist(seed, &RandomCircuitConfig { ffs, pis, gates, max_arity });
        let report = Registry::with_default_rules().run(&nl, &LintConfig::errors_only());
        prop_assert!(report.is_empty(), "{}", report.render_text(nl.name()));
    }

    #[test]
    fn random_datapaths_are_clean(
        width in 1usize..5,
        counter_bits in 1usize..4,
        phase in 0u64..8,
    ) {
        let capture_phase = phase % (1 << counter_bits);
        let nl = generators::gated_datapath(&generators::DatapathConfig {
            width,
            counter_bits,
            load_phase: 0,
            capture_phase,
        });
        let report = lint(&nl);
        prop_assert!(
            report.max_severity().is_none_or(|s| s < Severity::Warn),
            "{}", report.render_text(nl.name())
        );
    }
}
