//! Rule-based static analysis of [`Netlist`]s, plus validation of the SDC
//! constraints the pipeline emits.
//!
//! The multi-cycle analysis is only sound on well-formed circuits: a
//! combinational cycle breaks the 2-frame expansion, an unconnected DFF
//! has no next-state function, and a duplicated name makes `-from`/`-to`
//! constraints ambiguous. Rather than trusting the input (and silently
//! producing wrong answers), the pipeline runs this crate's Error-level
//! rules first and refuses corrupt netlists with diagnostics.
//!
//! # Architecture
//!
//! * [`LintRule`] — one structural check over a [`Netlist`]; pushes
//!   [`Diagnostic`]s.
//! * [`Registry`] — the rule set; [`Registry::with_default_rules`] holds
//!   the built-in rules, [`Registry::run`] applies them under a
//!   [`LintConfig`] (per-rule enable/deny, severity floor).
//! * [`Diagnostics`] — the report: renderable as text or JSON, with
//!   severity roll-ups.
//! * [`sdc`] — parses `set_multicycle_path` constraint text back and
//!   cross-checks it against the netlist and the verified pair list.
//!
//! Netlists that went through `NetlistBuilder::finish` are already
//! guaranteed free of the Error-level defects (the builder rejects them);
//! the lint pass exists for netlists from other sources —
//! `finish_unchecked`, deserializers, external tools — and for the
//! Warn/Info hygiene rules the builder deliberately permits.
//!
//! ```
//! use mcp_lint::{LintConfig, Registry, Severity};
//! use mcp_netlist::NetlistBuilder;
//! use mcp_logic::GateKind;
//!
//! let mut b = NetlistBuilder::new("demo");
//! let a = b.input("a");
//! let q = b.dff("q");
//! let g = b.gate("g", GateKind::Not, [a]).unwrap();
//! b.set_dff_input(q, g).unwrap();
//! // note: q is never marked as an output — a dangling FF
//! let nl = b.finish().unwrap();
//!
//! let report = Registry::with_default_rules().run(&nl, &LintConfig::default());
//! assert!(report.iter().any(|d| d.rule == "dangling-ff"));
//! assert_eq!(report.max_severity(), Some(Severity::Warn));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mcp_netlist::{Netlist, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub mod dataflow;
pub mod rules;
pub mod sdc;

pub use dataflow::{const_lattice, AnalysisIndex, ConstLattice, FfDomain};
pub use rules::default_rules;
pub use sdc::{parse_sdc, validate_sdc, SdcConstraint};

// ---------------------------------------------------------------------
// Severity and diagnostics
// ---------------------------------------------------------------------

/// How bad a finding is.
///
/// Ordering is by badness: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Noteworthy structure, no action needed (e.g. self-loop DFFs).
    Info,
    /// Suspicious but analyzable (e.g. dead logic, dangling FFs).
    Warn,
    /// The netlist is corrupt; analysis results would be meaningless.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `comb-cycle`).
    pub rule: String,
    /// Severity after any [`LintConfig`] override.
    pub severity: Severity,
    /// Dense node indices the finding is anchored to (empty for
    /// netlist-global or SDC-text findings). Convert back with
    /// [`NodeId::from_index`].
    pub nodes: Vec<usize>,
    /// Human-readable explanation, with node names resolved.
    pub message: String,
    /// 1-based line in the validated SDC text, for [`sdc`] findings.
    pub line: Option<usize>,
}

impl Diagnostic {
    /// Builds a diagnostic anchored to netlist nodes.
    pub fn new(
        rule: &str,
        severity: Severity,
        nodes: impl IntoIterator<Item = NodeId>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.to_owned(),
            severity,
            nodes: nodes.into_iter().map(NodeId::index).collect(),
            message: message.into(),
            line: None,
        }
    }

    /// Builds a diagnostic anchored to a line of SDC text.
    pub fn at_line(
        rule: &str,
        severity: Severity,
        line: usize,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.to_owned(),
            severity,
            nodes: Vec::new(),
            message: message.into(),
            line: Some(line),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)?;
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        if !self.nodes.is_empty() {
            write!(f, " (nodes:")?;
            for n in &self.nodes {
                write!(f, " n{n}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A lint report: the findings of one run, in rule registration order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// All findings that survived the [`LintConfig`] filters.
    pub diagnostics: Vec<Diagnostic>,
}

impl Diagnostics {
    /// No findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Iterates over the findings.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The worst severity present, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends all findings of another report.
    pub fn extend(&mut self, other: Diagnostics) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Renders the report as one line per finding plus a summary line.
    pub fn render_text(&self, subject: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{subject}: {} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        out
    }

    /// Renders the report as machine-readable JSON.
    ///
    /// # Panics
    ///
    /// Never — the report is always serializable.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("diagnostics serialize")
    }
}

// ---------------------------------------------------------------------
// Rules and registry
// ---------------------------------------------------------------------

/// One structural or semantic check over a [`Netlist`].
///
/// Rules must be pure: no ordering dependencies between rules, and a rule
/// must behave identically whether run alone or with the full registry.
/// A rule pushes findings at its [`default_severity`](Self::default_severity);
/// the registry applies [`LintConfig`] overrides afterwards.
///
/// Every rule receives the shared [`AnalysisIndex`] the registry computed
/// once for the run — constant lattice, SCCs, liveness/observability,
/// per-FF cones, FF domains — instead of re-deriving those facts itself.
pub trait LintRule {
    /// Stable kebab-case identifier, used in config and output.
    fn id(&self) -> &'static str;

    /// Severity of this rule's findings unless overridden.
    fn default_severity(&self) -> Severity;

    /// One-line description of what the rule checks.
    fn description(&self) -> &'static str;

    /// Runs the check, pushing one [`Diagnostic`] per finding.
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>);
}

/// Per-run lint configuration: which rules run and how their findings are
/// classified.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// Rule ids that do not run at all.
    pub disabled: BTreeSet<String>,
    /// Rule id → severity replacing the rule's default (a `deny` list is
    /// a set of overrides to [`Severity::Error`]).
    pub severity_overrides: BTreeMap<String, Severity>,
    /// Findings strictly below this severity are dropped from the report.
    /// `None` keeps everything.
    pub min_severity: Option<Severity>,
}

impl LintConfig {
    /// Keeps only [`Severity::Error`] findings — the pipeline's admission
    /// check: hygiene warnings must not block analysis.
    pub fn errors_only() -> LintConfig {
        LintConfig {
            min_severity: Some(Severity::Error),
            ..LintConfig::default()
        }
    }

    /// Disables a rule.
    pub fn disable(mut self, rule: &str) -> LintConfig {
        self.disabled.insert(rule.to_owned());
        self
    }

    /// Escalates a rule's findings to [`Severity::Error`].
    pub fn deny(mut self, rule: &str) -> LintConfig {
        self.severity_overrides
            .insert(rule.to_owned(), Severity::Error);
        self
    }

    /// Overrides a rule's severity.
    pub fn set_severity(mut self, rule: &str, severity: Severity) -> LintConfig {
        self.severity_overrides.insert(rule.to_owned(), severity);
        self
    }
}

/// The set of lint rules to run.
pub struct Registry {
    rules: Vec<Box<dyn LintRule>>,
}

impl Registry {
    /// A registry with no rules; populate with [`register`](Self::register).
    pub fn empty() -> Registry {
        Registry { rules: Vec::new() }
    }

    /// The built-in rule set (see [`rules`] for the list).
    pub fn with_default_rules() -> Registry {
        let mut r = Registry::empty();
        for rule in rules::default_rules() {
            r.register(rule);
        }
        r
    }

    /// Adds a rule. Rule ids must be unique.
    ///
    /// # Panics
    ///
    /// Panics if a rule with the same id is already registered.
    pub fn register(&mut self, rule: Box<dyn LintRule>) {
        assert!(
            self.rules.iter().all(|r| r.id() != rule.id()),
            "duplicate lint rule id `{}`",
            rule.id()
        );
        self.rules.push(rule);
    }

    /// The registered rules, in registration order.
    pub fn rules(&self) -> impl Iterator<Item = &dyn LintRule> {
        self.rules.iter().map(|r| r.as_ref())
    }

    /// Runs every enabled rule and collects the surviving findings.
    pub fn run(&self, netlist: &Netlist, cfg: &LintConfig) -> Diagnostics {
        self.run_with_metrics(netlist, cfg, None)
    }

    /// [`run`](Self::run), additionally bumping the `lint_rules_run` /
    /// `lint_violations` / `lint_nodes_visited` counters of an
    /// observability context.
    pub fn run_with_metrics(
        &self,
        netlist: &Netlist,
        cfg: &LintConfig,
        metrics: Option<&mcp_obs::Metrics>,
    ) -> Diagnostics {
        // One shared analysis per run; every rule reads from it instead
        // of re-traversing the graph.
        let index = AnalysisIndex::build(netlist);
        if let Some(m) = metrics {
            m.lint_nodes_visited.add(index.nodes_visited());
        }
        let mut report = Diagnostics::default();
        for rule in &self.rules {
            if cfg.disabled.contains(rule.id()) {
                continue;
            }
            if let Some(m) = metrics {
                m.lint_rules_run.add(1);
            }
            let severity = cfg
                .severity_overrides
                .get(rule.id())
                .copied()
                .unwrap_or_else(|| rule.default_severity());
            let mut found = Vec::new();
            rule.check(netlist, &index, &mut found);
            for mut d in found {
                d.severity = severity;
                if cfg.min_severity.is_some_and(|min| d.severity < min) {
                    continue;
                }
                if let Some(m) = metrics {
                    m.lint_violations.add(1);
                }
                report.push(d);
            }
        }
        report
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field(
                "rules",
                &self.rules.iter().map(|r| r.id()).collect::<Vec<_>>(),
            )
            .finish()
    }
}
