//! Shared fixed-point dataflow analysis over a [`Netlist`].
//!
//! Every semantic lint rule used to re-derive its own facts — constant
//! propagation three times, two backward reachability walks, one SCC
//! pass, one cone walk per FF. This module computes all of it **once**
//! per netlist into an [`AnalysisIndex`] that the rule registry hands to
//! every rule, and exposes the constant lattice standalone
//! ([`const_lattice`]) for the pipeline's static pair pre-classification.
//!
//! # The ternary constant lattice
//!
//! Abstract values are [`V3`]: `X` (unknown) below the definite values
//! `0` and `1` in the information order (`X ⊑ 0`, `X ⊑ 1`; `0` and `1`
//! incomparable). The forward interpreter starts from the **all-X
//! state** — `CONST` drivers definite, every PI and FF output `X` — and
//! evaluates the combinational gates in topological order with
//! [`GateKind::eval_v3`](mcp_logic::GateKind::eval_v3), which exploits
//! controlling values (`AND(0, X) = 0`). That first iterate is
//! [`ConstLattice::base`].
//!
//! FF state is then widened across clock edges to a fixpoint: each round
//! replaces every FF's abstract value by its D driver's value from the
//! previous round and re-evaluates the gates. Because the all-X start is
//! below every concrete state and ternary evaluation is monotone in the
//! information order, the iterate chain only ever moves `X → definite`,
//! so it converges in at most `#FFs` rounds ([`ConstLattice::iterations`]
//! counts them). The result is [`ConstLattice::fix`].
//!
//! # Soundness
//!
//! * `base[n] = c` ⟹ node `n` evaluates to `c` at **every** time step of
//!   **every** concrete run, regardless of the power-up state (the all-X
//!   state abstracts any state, and the state at time `m` is abstracted
//!   by the `m`-th iterate, which is above the first).
//! * `fix[n] = c` ⟹ `n` evaluates to `c` at every time `≥ iterations`
//!   (the chain is stationary from there on). The value in the first few
//!   frames may still depend on the power-up state.
//!
//! This asymmetry is why the pipeline's static pair classification only
//! trusts `base`: a pair verdict quantifies over frame 1, where only the
//! first iterate is valid.

use mcp_logic::V3;
use mcp_netlist::{Netlist, NodeId, NodeKind};

/// Candidate control nets probed per FF during domain inference; bounds
/// the per-FF probing cost on cones with many sources.
const MAX_DOMAIN_CANDIDATES: usize = 8;

// ---------------------------------------------------------------------
// The forward constant/X interpreter
// ---------------------------------------------------------------------

/// The forward ternary constant analysis: first iterate, fixpoint, and
/// how many widening rounds the fixpoint took.
#[derive(Debug, Clone)]
pub struct ConstLattice {
    /// Per-node value of the first Kleene iterate (all FFs/PIs `X`):
    /// definite entries hold at **every** time step from any state.
    pub base: Vec<V3>,
    /// Per-node fixpoint value after widening FF state across clock
    /// edges: definite entries hold at every time `≥ iterations`.
    pub fix: Vec<V3>,
    /// Clock-edge widening rounds until the FF state stabilized.
    pub iterations: u32,
}

impl ConstLattice {
    /// Nodes definite in the first iterate.
    pub fn num_definite_base(&self) -> usize {
        self.base.iter().filter(|v| v.is_definite()).count()
    }

    /// Nodes definite at the fixpoint (always ≥ the base count).
    pub fn num_definite_fix(&self) -> usize {
        self.fix.iter().filter(|v| v.is_definite()).count()
    }
}

/// Runs the forward constant/X interpreter standalone.
///
/// This is the entry point for the pipeline's static pair pre-pass,
/// which needs the lattice but none of the index's backward passes.
pub fn const_lattice(netlist: &Netlist) -> ConstLattice {
    let mut visited = 0u64;
    kleene(netlist, &mut visited)
}

/// One topological evaluation sweep over the gates. Zero-fanin gates
/// (`zero-width-gate`'s Error) and gates outside the topological order
/// (cyclic, unchecked netlists) keep their current value.
fn eval_gates(netlist: &Netlist, values: &mut [V3], visited: &mut u64) {
    for &g in netlist.topo_gates() {
        *visited += 1;
        let node = netlist.node(g);
        if node.fanins().is_empty() {
            continue;
        }
        let kind = node.kind().gate_kind().expect("topo holds gates");
        values[g.index()] = kind.eval_v3(node.fanins().iter().map(|f| values[f.index()]));
    }
}

fn kleene(netlist: &Netlist, visited: &mut u64) -> ConstLattice {
    let mut values = vec![V3::X; netlist.num_nodes()];
    for (id, node) in netlist.nodes() {
        if let NodeKind::Const(v) = node.kind() {
            values[id.index()] = V3::from(v);
        }
    }
    eval_gates(netlist, &mut values, visited);
    let base = values.clone();
    let mut iterations = 0u32;
    loop {
        // Clock edge: FF value := D driver value. The chain is monotone
        // from the all-X start (ternary eval is monotone, so the next
        // iterate of a definite FF equals it); the X-only guard keeps
        // the loop trivially terminating even on corrupt netlists.
        let mut changed = false;
        for &ff in netlist.dffs() {
            let node = netlist.node(ff);
            let Some(&d) = node.fanins().first() else {
                continue; // unconnected DFF: its own Error rule
            };
            let next = values[d.index()];
            if values[ff.index()] == V3::X && next != V3::X {
                values[ff.index()] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        iterations += 1;
        eval_gates(netlist, &mut values, visited);
    }
    ConstLattice {
        base,
        fix: values,
        iterations,
    }
}

// ---------------------------------------------------------------------
// Structural passes shared by the rules
// ---------------------------------------------------------------------

/// Tarjan's SCC algorithm (iterative) over the gate-only subgraph, with
/// edges gate → gate-fanin. Returns the components that actually contain
/// a cycle — more than one node, or a single gate reading itself — each
/// sorted by node id, in a deterministic component order.
pub fn cyclic_gate_sccs(netlist: &Netlist) -> Vec<Vec<NodeId>> {
    let mut visited = 0u64;
    cyclic_gate_sccs_counted(netlist, &mut visited)
}

fn cyclic_gate_sccs_counted(netlist: &Netlist, visited: &mut u64) -> Vec<Vec<NodeId>> {
    const UNVISITED: u32 = u32::MAX;
    let n = netlist.num_nodes();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS state: (node, next fanin position to visit).
    let mut work: Vec<(usize, usize)> = Vec::new();

    for (root, node) in netlist.nodes() {
        if !node.kind().is_gate() || index[root.index()] != UNVISITED {
            continue;
        }
        work.push((root.index(), 0));
        while let Some(&mut (v, ref mut fi)) = work.last_mut() {
            if *fi == 0 {
                *visited += 1;
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let fanins = netlist.node(NodeId::from_index(v)).fanins();
            let mut descended = false;
            while *fi < fanins.len() {
                let w = fanins[*fi].index();
                *fi += 1;
                if !netlist.node(NodeId::from_index(w)).kind().is_gate() {
                    continue;
                }
                if index[w] == UNVISITED {
                    work.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v is finished: pop, close its SCC if it is a root, and
            // propagate its lowlink to the parent.
            work.pop();
            if lowlink[v] == index[v] {
                let mut comp: Vec<NodeId> = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack non-empty");
                    on_stack[w] = false;
                    comp.push(NodeId::from_index(w));
                    if w == v {
                        break;
                    }
                }
                let self_loop = comp.len() == 1 && {
                    let id = comp[0];
                    netlist.node(id).fanins().contains(&id)
                };
                if comp.len() > 1 || self_loop {
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
            if let Some(&mut (p, _)) = work.last_mut() {
                lowlink[p] = lowlink[p].min(lowlink[v]);
            }
        }
    }
    sccs
}

/// Backward reachability from the primary outputs and every FF D input.
/// With `fix` given, the walk is *semantic*: it does not descend through
/// gates whose fixpoint value is definite — a constant gate transmits no
/// information, so its cone cannot influence anything through it.
fn backward_reach(netlist: &Netlist, fix: Option<&[V3]>, visited: &mut u64) -> Vec<bool> {
    let mut reached = vec![false; netlist.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    let mark = |id: NodeId, reached: &mut Vec<bool>, stack: &mut Vec<NodeId>| {
        if !reached[id.index()] {
            reached[id.index()] = true;
            stack.push(id);
        }
    };
    for &po in netlist.outputs() {
        mark(po, &mut reached, &mut stack);
    }
    for &ff in netlist.dffs() {
        // Unconnected DFFs (their own Error) simply seed nothing.
        for &d in netlist.node(ff).fanins() {
            mark(d, &mut reached, &mut stack);
        }
    }
    while let Some(n) = stack.pop() {
        *visited += 1;
        if !netlist.node(n).kind().is_gate() {
            continue;
        }
        if fix.is_some_and(|f| f[n.index()].is_definite()) {
            continue; // constant output: fanins cannot act through it
        }
        for &f in netlist.node(n).fanins() {
            mark(f, &mut reached, &mut stack);
        }
    }
    reached
}

// ---------------------------------------------------------------------
// Per-FF cones and domain inference
// ---------------------------------------------------------------------

/// The combinational fan-in cone of one FF's D input.
#[derive(Debug, Clone, Default)]
struct FfCone {
    /// Cone gates in topological (evaluation) order.
    gates: Vec<NodeId>,
    /// Every cone node: gates plus the source/constant frontier.
    all: Vec<NodeId>,
    /// FF and PI source nodes, in node-id order.
    srcs: Vec<NodeId>,
    /// Source FF indices, sorted.
    ffs: Vec<usize>,
    /// Whether any primary input reaches the cone.
    has_pi: bool,
}

/// The clock/reset/enable domain inferred for one FF.
///
/// Inference pins one candidate control net at a time to a constant and
/// ternary-evaluates the FF's D cone, so every tag is a *sound necessary
/// condition* (the net provably forces the behavior), not a complete
/// controllability analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FfDomain {
    /// Clock index of the FF. The netlist model is single-clock today,
    /// so this is always 0; the field exists so multi-clock support
    /// changes data, not shape.
    pub clock: u32,
    /// Load enable: `(net, active_level)` — with the net at the
    /// *opposite* level the FF provably holds its own value
    /// (`D(Q=0) = 0` and `D(Q=1) = 1`), so it can only load new data
    /// while `net == active_level`.
    pub enable: Option<(NodeId, bool)>,
    /// Synchronous reset: `(net, active_level, value)` — whenever
    /// `net == active_level`, the D input is forced to `value`
    /// regardless of every other cone source.
    pub reset: Option<(NodeId, bool, bool)>,
}

impl FfDomain {
    /// `true` when two FFs sit in the same inferred domain: same clock
    /// and the same (or no) load-enable condition.
    pub fn same_domain(&self, other: &FfDomain) -> bool {
        self.clock == other.clock && self.enable == other.enable
    }
}

fn build_cones(netlist: &Netlist, visited: &mut u64) -> Vec<FfCone> {
    // Topological position of each gate, for sorting cone gates into
    // evaluation order.
    let mut topo_pos = vec![u32::MAX; netlist.num_nodes()];
    for (pos, &g) in netlist.topo_gates().iter().enumerate() {
        topo_pos[g.index()] = pos as u32;
    }
    let mut cones = Vec::with_capacity(netlist.num_ffs());
    let mut seen = vec![false; netlist.num_nodes()];
    for &ff in netlist.dffs() {
        let mut cone = FfCone::default();
        let Some(&d) = netlist.node(ff).fanins().first() else {
            cones.push(cone);
            continue; // unconnected DFF
        };
        let mut stack = vec![d];
        seen[d.index()] = true;
        while let Some(id) = stack.pop() {
            *visited += 1;
            cone.all.push(id);
            let node = netlist.node(id);
            match node.kind() {
                NodeKind::Dff => {
                    cone.srcs.push(id);
                    cone.ffs
                        .push(netlist.ff_index(id).expect("dff has ff index"));
                }
                NodeKind::Input => {
                    cone.srcs.push(id);
                    cone.has_pi = true;
                }
                NodeKind::Const(_) => {}
                NodeKind::Gate(_) => {
                    cone.gates.push(id);
                    for &f in node.fanins() {
                        if !seen[f.index()] {
                            seen[f.index()] = true;
                            stack.push(f);
                        }
                    }
                }
            }
        }
        for &id in &cone.all {
            seen[id.index()] = false; // reset the scratch for the next FF
        }
        cone.gates.sort_unstable_by_key(|g| topo_pos[g.index()]);
        cone.srcs.sort_unstable();
        cone.ffs.sort_unstable();
        cones.push(cone);
    }
    cones
}

/// Ternary-evaluates one FF cone with some sources pinned to constants;
/// returns the D input's value. `scratch` must be `num_nodes` long and is
/// fully re-initialized over the cone, so it can be reused across calls.
fn eval_cone(
    netlist: &Netlist,
    cone: &FfCone,
    d: NodeId,
    pins: &[(NodeId, V3)],
    scratch: &mut [V3],
) -> V3 {
    for &id in &cone.all {
        scratch[id.index()] = match netlist.node(id).kind() {
            NodeKind::Const(v) => V3::from(v),
            _ => V3::X,
        };
    }
    for &(id, v) in pins {
        scratch[id.index()] = v;
    }
    for &g in &cone.gates {
        let node = netlist.node(g);
        if node.fanins().is_empty() {
            continue;
        }
        // A cyclic cone (unchecked netlist) evaluates in discovery order;
        // unresolved fanins read X, which is sound.
        let kind = node.kind().gate_kind().expect("cone gates are gates");
        scratch[g.index()] = kind.eval_v3(node.fanins().iter().map(|f| scratch[f.index()]));
    }
    scratch[d.index()]
}

fn infer_domains(netlist: &Netlist, cones: &[FfCone]) -> Vec<FfDomain> {
    let mut scratch = vec![V3::X; netlist.num_nodes()];
    let mut domains = Vec::with_capacity(cones.len());
    for (j, cone) in cones.iter().enumerate() {
        let mut dom = FfDomain::default();
        let q = netlist.dffs()[j];
        let Some(&d) = netlist.node(q).fanins().first() else {
            domains.push(dom);
            continue;
        };
        // Candidate control nets: FF/PI sources of the cone, excluding
        // the FF's own output (that is the held data, not a control) and
        // the D driver itself (pinning the whole data function is not
        // control inference). First match in node-id order wins per
        // category — a controlling data pin of an AND-shaped cone is
        // genuinely indistinguishable from a sync reset at this level,
        // so the tag is a deterministic representative, not an oracle.
        let candidates: Vec<NodeId> = cone
            .srcs
            .iter()
            .copied()
            .filter(|&c| c != q && c != d)
            .take(MAX_DOMAIN_CANDIDATES)
            .collect();
        let q_in_cone = cone.srcs.contains(&q);
        for &c in &candidates {
            if dom.reset.is_some() {
                break;
            }
            for v in [false, true] {
                let forced = eval_cone(netlist, cone, d, &[(c, V3::from(v))], &mut scratch);
                if let Some(value) = forced.to_bool() {
                    dom.reset = Some((c, v, value));
                    break;
                }
            }
        }
        if q_in_cone {
            'enable: for &c in &candidates {
                for v in [false, true] {
                    let pin = (c, V3::from(v));
                    let d0 = eval_cone(netlist, cone, d, &[pin, (q, V3::Zero)], &mut scratch);
                    let d1 = eval_cone(netlist, cone, d, &[pin, (q, V3::One)], &mut scratch);
                    if d0 == V3::Zero && d1 == V3::One {
                        // Holds while `c == v`: loads only at the other level.
                        dom.enable = Some((c, !v));
                        break 'enable;
                    }
                }
            }
        }
        domains.push(dom);
    }
    domains
}

// ---------------------------------------------------------------------
// The shared index
// ---------------------------------------------------------------------

/// Everything the lint rules need to know about a netlist, computed once
/// per [`Registry::run`](crate::Registry::run) instead of once per rule.
///
/// Holds the forward constant lattice, the cyclic gate SCCs, structural
/// liveness and semantic observability, per-FF D cones with their source
/// FF/PI frontiers, the transitive PI-influence closure over the FF
/// graph, and each FF's inferred clock/reset/enable domain.
#[derive(Debug, Clone)]
pub struct AnalysisIndex {
    lattice: ConstLattice,
    cyclic_sccs: Vec<Vec<NodeId>>,
    live: Vec<bool>,
    observable: Vec<bool>,
    cones: Vec<FfCone>,
    seq_has_pi: Vec<bool>,
    domains: Vec<FfDomain>,
    nodes_visited: u64,
}

impl AnalysisIndex {
    /// Builds the index. Safe on corrupt (`finish_unchecked`) netlists:
    /// cyclic gates simply stay `X`, unconnected DFFs contribute empty
    /// cones.
    pub fn build(netlist: &Netlist) -> AnalysisIndex {
        let mut visited = 0u64;
        let lattice = kleene(netlist, &mut visited);
        let cyclic_sccs = cyclic_gate_sccs_counted(netlist, &mut visited);
        let live = backward_reach(netlist, None, &mut visited);
        let observable = backward_reach(netlist, Some(&lattice.fix), &mut visited);
        let cones = build_cones(netlist, &mut visited);

        // Transitive closure of PI influence over the FF graph: an FF is
        // PI-driven if a PI reaches its own cone or any source FF is.
        let mut seq_has_pi: Vec<bool> = cones.iter().map(|c| c.has_pi).collect();
        loop {
            let mut changed = false;
            for j in 0..cones.len() {
                if !seq_has_pi[j] && cones[j].ffs.iter().any(|&i| seq_has_pi[i]) {
                    seq_has_pi[j] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let domains = infer_domains(netlist, &cones);
        AnalysisIndex {
            lattice,
            cyclic_sccs,
            live,
            observable,
            cones,
            seq_has_pi,
            domains,
            nodes_visited: visited,
        }
    }

    /// The forward constant lattice.
    pub fn lattice(&self) -> &ConstLattice {
        &self.lattice
    }

    /// First-iterate value of a node (holds at every time step).
    pub fn base_value(&self, id: NodeId) -> V3 {
        self.lattice.base[id.index()]
    }

    /// Fixpoint value of a node (holds once the widening settles).
    pub fn fix_value(&self, id: NodeId) -> V3 {
        self.lattice.fix[id.index()]
    }

    /// The cyclic gate SCCs (each sorted by node id).
    pub fn cyclic_sccs(&self) -> &[Vec<NodeId>] {
        &self.cyclic_sccs
    }

    /// Whether a node has a structural backward path from an output or
    /// an FF D input.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.live[id.index()]
    }

    /// Whether a node can *semantically* influence an output or FF D
    /// input — the backward walk does not pass through fixpoint-constant
    /// gates.
    pub fn is_observable(&self, id: NodeId) -> bool {
        self.observable[id.index()]
    }

    /// Source FF indices in the D cone of FF `j`, sorted.
    pub fn cone_ffs(&self, j: usize) -> &[usize] {
        &self.cones[j].ffs
    }

    /// Whether a primary input reaches FF `j`'s D cone directly.
    pub fn cone_has_pi(&self, j: usize) -> bool {
        self.cones[j].has_pi
    }

    /// Whether a primary input can ever influence FF `j`, through any
    /// number of sequential levels.
    pub fn seq_has_pi(&self, j: usize) -> bool {
        self.seq_has_pi[j]
    }

    /// The inferred clock/reset/enable domain of FF `j`.
    pub fn domain(&self, j: usize) -> &FfDomain {
        &self.domains[j]
    }

    /// Graph-node visits of the shared traversals (fixpoint sweeps, SCC
    /// pass, both backward walks, cone walks). Domain-inference probe
    /// evaluations are bounded separately (candidate cap) and excluded:
    /// the counter exists to compare against what the rules used to
    /// re-traverse individually.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;

    /// d = AND(a, 0) cascading into NOT and an XOR kept alive by `a`;
    /// plus an FF ladder seeded by a constant through the fixpoint.
    fn const_ladder() -> Netlist {
        let mut b = NetlistBuilder::new("ladder");
        let a = b.input("a");
        let one = b.constant("one", true);
        let q1 = b.dff("q1");
        let q2 = b.dff("q2");
        let live = b.dff("live");
        // q1.D = OR(a, 1) — constant at the first iterate.
        let g1 = b.gate("g1", GateKind::Or, [a, one]).unwrap();
        b.set_dff_input(q1, g1).unwrap();
        // q2.D = BUF(q1) — constant only at the fixpoint (one edge later).
        let g2 = b.gate("g2", GateKind::Buf, [q1]).unwrap();
        b.set_dff_input(q2, g2).unwrap();
        // live.D = XOR(q2, a) — never constant, PI-driven.
        let g3 = b.gate("g3", GateKind::Xor, [q2, a]).unwrap();
        b.set_dff_input(live, g3).unwrap();
        b.mark_output(live);
        b.finish().unwrap()
    }

    #[test]
    fn base_is_the_first_iterate_and_fix_widens_across_edges() {
        let nl = const_ladder();
        let lat = const_lattice(&nl);
        let g1 = nl.find_node("g1").unwrap();
        let g2 = nl.find_node("g2").unwrap();
        let q1 = nl.find_node("q1").unwrap();
        let q2 = nl.find_node("q2").unwrap();
        // First iterate: only the combinationally-forced constant.
        assert_eq!(lat.base[g1.index()], V3::One);
        assert_eq!(lat.base[q1.index()], V3::X);
        assert_eq!(lat.base[g2.index()], V3::X);
        // Fixpoint: the constant crossed two FF stages.
        assert_eq!(lat.fix[q1.index()], V3::One);
        assert_eq!(lat.fix[g2.index()], V3::One);
        assert_eq!(lat.fix[q2.index()], V3::One);
        assert_eq!(lat.iterations, 2);
        assert!(lat.num_definite_fix() > lat.num_definite_base());
    }

    #[test]
    fn fixpoint_is_all_x_without_const_drivers() {
        let nl = mcp_gen::circuits::fig1();
        let lat = const_lattice(&nl);
        assert_eq!(lat.num_definite_base(), 0);
        assert_eq!(lat.num_definite_fix(), 0);
        assert_eq!(lat.iterations, 0);
    }

    #[test]
    fn observability_stops_at_fixpoint_constants() {
        let nl = const_ladder();
        let idx = AnalysisIndex::build(&nl);
        let g1 = nl.find_node("g1").unwrap();
        let a = nl.find_node("a").unwrap();
        // g1 is live and observable (it is a D input) but constant; its
        // PI fanin `a` stays observable through g3's XOR path.
        assert!(idx.is_live(g1));
        assert!(idx.is_observable(g1));
        assert!(idx.is_observable(a));
        // q2's value is fixpoint-constant, so g3 still reads it — but a
        // gate feeding only g2 (behind the constant) would be dark. Add
        // one: rebuild with a NOT feeding nothing else.
        let mut b = NetlistBuilder::new("dark");
        let a = b.input("a");
        let one = b.constant("one", true);
        let q = b.dff("q");
        let live = b.dff("live");
        // dead = NOT(a) feeds forced = OR(dead, 1); forced is constant,
        // so `dead` is live but unobservable.
        let dead = b.gate("dead", GateKind::Not, [a]).unwrap();
        let forced = b.gate("forced", GateKind::Or, [dead, one]).unwrap();
        b.set_dff_input(q, forced).unwrap();
        let g3 = b.gate("g3", GateKind::Xor, [q, a]).unwrap();
        b.set_dff_input(live, g3).unwrap();
        b.mark_output(live);
        let nl = b.finish().unwrap();
        let idx = AnalysisIndex::build(&nl);
        let dead = nl.find_node("dead").unwrap();
        assert!(idx.is_live(dead));
        assert!(!idx.is_observable(dead));
    }

    #[test]
    fn seq_has_pi_is_transitive() {
        let nl = const_ladder();
        let idx = AnalysisIndex::build(&nl);
        // q1 ← OR(a, 1): PI in cone. q2 ← q1: PI only transitively.
        assert!(idx.cone_has_pi(0));
        assert!(!idx.cone_has_pi(1));
        assert!(idx.seq_has_pi(1));
        assert!(idx.seq_has_pi(2));
    }

    #[test]
    fn pi_free_counter_has_no_seq_pi() {
        let nl = mcp_gen::circuits::fig1();
        let idx = AnalysisIndex::build(&nl);
        // FF3/FF4 form a closed gray-code counter: no PI influence ever.
        assert!(!idx.seq_has_pi(2));
        assert!(!idx.seq_has_pi(3));
        // FF1 loads IN: PI-driven directly.
        assert!(idx.cone_has_pi(0));
        assert!(idx.seq_has_pi(1), "FF2 captures FF1, hence PI transitively");
    }

    #[test]
    fn domains_of_the_fig1_datapath() {
        let nl = mcp_gen::circuits::fig1();
        let idx = AnalysisIndex::build(&nl);
        // FF1 holds unless the counter selects a load: an enable domain.
        let d1 = idx.domain(0);
        assert!(d1.enable.is_some(), "FF1 is load-enabled: {d1:?}");
        // The counter FFs have no hold path: no enable.
        assert!(idx.domain(2).enable.is_none());
        assert!(idx.domain(3).enable.is_none());
        // Same-domain grouping: FF1 and FF2 are gated differently.
        assert!(!idx.domain(0).same_domain(idx.domain(1)));
        assert_eq!(idx.domain(0).clock, 0);
    }

    #[test]
    fn sync_reset_is_inferred() {
        // q.D = AND(data, NOT rst): rst=1 forces D=0. With one FF a
        // controlling data pin is indistinguishable from a sync reset
        // (pinning data=0 also forces D=0), so the first controlling
        // source in id order wins — declare rst first.
        let mut b = NetlistBuilder::new("rst");
        let rst = b.input("rst");
        let data = b.input("data");
        let q = b.dff("q");
        let n = b.gate("n", GateKind::Not, [rst]).unwrap();
        let g = b.gate("g", GateKind::And, [data, n]).unwrap();
        b.set_dff_input(q, g).unwrap();
        b.mark_output(q);
        let nl = b.finish().unwrap();
        let idx = AnalysisIndex::build(&nl);
        let rst_id = nl.find_node("rst").unwrap();
        assert_eq!(idx.domain(0).reset, Some((rst_id, true, false)));
        assert!(idx.domain(0).enable.is_none());
    }

    #[test]
    fn index_survives_corrupt_netlists() {
        // A combinational cycle plus an unconnected DFF.
        let mut b = NetlistBuilder::new("corrupt");
        let a = b.input("a");
        let q = b.dff("q"); // never connected
        let g1 = b.gate("g1", GateKind::And, [a, a]).unwrap();
        let g2 = b.gate("g2", GateKind::Buf, [g1]).unwrap();
        b.rewire_fanin(g1, 1, g2).unwrap();
        b.mark_output(q);
        let nl = b.finish_unchecked();
        let idx = AnalysisIndex::build(&nl);
        assert_eq!(idx.cyclic_sccs().len(), 1);
        assert_eq!(idx.base_value(g1), V3::X);
        assert!(idx.cone_ffs(0).is_empty());
        assert!(idx.nodes_visited() > 0);
    }
}
