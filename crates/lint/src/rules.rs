//! The built-in lint rules.
//!
//! | id | severity | finding |
//! |----|----------|---------|
//! | `comb-cycle` | Error | combinational cycle (SCC over the gate graph) |
//! | `zero-width-gate` | Error | gate with an empty fanin list |
//! | `unconnected-dff` | Error | DFF whose D input was never connected |
//! | `multi-driven-dff` | Error | DFF with more than one D driver |
//! | `duplicate-name` | Error | two nodes sharing one name |
//! | `floating-net` | Warn | gate that nothing reads and no output marks |
//! | `unreachable-logic` | Warn | gates with no path to any FF or output |
//! | `constant-dff` | Warn | DFF fed by a provably constant D input |
//! | `dangling-ff` | Warn | DFF that nothing reads and no output marks |
//! | `unobservable-logic` | Warn | live gates hidden behind fixpoint constants |
//! | `const-implied-net` | Warn | nets constant only through the sequential fixpoint |
//! | `const-foldable` | Info | gates computing a provable constant |
//! | `self-loop-dff` | Info | FF structurally feeding its own D input |
//! | `x-prop-to-dff` | Info | FF forever dependent on its power-up X |
//! | `domain-mixing` | Info | FF pair crossing different inferred enable domains |
//!
//! The Error rules are exactly the defects `NetlistBuilder::finish`
//! rejects: they can only occur in netlists from `finish_unchecked` or
//! external deserializers, and they make analysis results meaningless.
//! The Warn rules flag hygiene problems that a [`sweep`] would remove or
//! that the dataflow analysis proves semantically dead. The Info rules
//! mark structure the multi-cycle analysis treats specially (constant
//! cones shrink, self-loops become `(i, i)` pairs in the frame
//! expansion, enable-domain crossings are where multi-cycle transfers
//! live).
//!
//! Every rule reads its facts from the shared [`AnalysisIndex`] the
//! registry computes once per run (see [`crate::dataflow`]); none of
//! them traverses the netlist graph beyond a linear node scan.
//!
//! [`sweep`]: mod@mcp_netlist::sweep

use crate::{AnalysisIndex, Diagnostic, LintRule, Severity};
use mcp_netlist::{Netlist, NodeId};
use std::collections::HashMap;

/// All built-in rules, Error rules first.
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(CombCycle),
        Box::new(ZeroWidthGate),
        Box::new(UnconnectedDff),
        Box::new(MultiDrivenDff),
        Box::new(DuplicateName),
        Box::new(FloatingNet),
        Box::new(UnreachableLogic),
        Box::new(ConstantDff),
        Box::new(DanglingFf),
        Box::new(UnobservableLogic),
        Box::new(ConstImpliedNet),
        Box::new(ConstFoldable),
        Box::new(SelfLoopDff),
        Box::new(XPropToDff),
        Box::new(DomainMixing),
    ]
}

/// Formats up to `cap` node names for a message, eliding the rest.
fn name_list(netlist: &Netlist, nodes: &[NodeId], cap: usize) -> String {
    let mut names: Vec<&str> = nodes
        .iter()
        .take(cap)
        .map(|&id| netlist.node(id).name())
        .collect();
    if nodes.len() > cap {
        names.push("...");
    }
    names.join(", ")
}

// ---------------------------------------------------------------------
// Error rules
// ---------------------------------------------------------------------

/// `comb-cycle`: a cycle through combinational gates only.
///
/// The 2-frame expansion and every engine assume the combinational part
/// is a DAG; a gate loop makes "the value of the cone" ill-defined.
/// Reads the Tarjan SCC condensation from the shared index.
pub struct CombCycle;

impl LintRule for CombCycle {
    fn id(&self) -> &'static str {
        "comb-cycle"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "combinational cycle in the gate graph"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for scc in index.cyclic_sccs() {
            let msg = format!(
                "combinational cycle through {} gate(s): {}",
                scc.len(),
                name_list(netlist, scc, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                scc.iter().copied(),
                msg,
            ));
        }
    }
}

/// `zero-width-gate`: a combinational gate with no fanins computes
/// nothing; every evaluator in the workspace would panic or guess.
pub struct ZeroWidthGate;

impl LintRule for ZeroWidthGate {
    fn id(&self) -> &'static str {
        "zero-width-gate"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "gate with an empty fanin list"
    }
    fn check(&self, netlist: &Netlist, _index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_gate() && node.fanins().is_empty() {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("gate `{}` has no fanins", node.name()),
                ));
            }
        }
    }
}

/// `unconnected-dff`: a DFF whose D input was never connected has no
/// next-state function — `Netlist::ff_d_input` would panic on it.
pub struct UnconnectedDff;

impl LintRule for UnconnectedDff {
    fn id(&self) -> &'static str {
        "unconnected-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "DFF whose D input was never connected"
    }
    fn check(&self, netlist: &Netlist, _index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_dff() && node.fanins().is_empty() {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("DFF `{}` has no D input", node.name()),
                ));
            }
        }
    }
}

/// `multi-driven-dff`: a DFF with more than one fanin is multiply
/// driven; the model defines exactly one D driver per FF.
pub struct MultiDrivenDff;

impl LintRule for MultiDrivenDff {
    fn id(&self) -> &'static str {
        "multi-driven-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "DFF with more than one D driver"
    }
    fn check(&self, netlist: &Netlist, _index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_dff() && node.fanins().len() > 1 {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!(
                        "DFF `{}` has {} D drivers",
                        node.name(),
                        node.fanins().len()
                    ),
                ));
            }
        }
    }
}

/// `duplicate-name`: two nodes with one name make name-based lookups
/// (`find_node`, SDC `-from`/`-to` cells) ambiguous.
pub struct DuplicateName;

impl LintRule for DuplicateName {
    fn id(&self) -> &'static str {
        "duplicate-name"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "two nodes sharing one name"
    }
    fn check(&self, netlist: &Netlist, _index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
        for (id, node) in netlist.nodes() {
            by_name.entry(node.name()).or_default().push(id);
        }
        let mut dups: Vec<(&str, Vec<NodeId>)> = by_name
            .into_iter()
            .filter(|(_, ids)| ids.len() > 1)
            .collect();
        dups.sort_unstable_by_key(|(_, ids)| ids[0]);
        for (name, ids) in dups {
            let msg = format!("{} nodes named `{}`", ids.len(), name);
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                ids,
                msg,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Warn rules
// ---------------------------------------------------------------------

/// `floating-net`: a gate nothing reads and no output marks drives
/// nothing observable — usually a netlist extraction bug.
pub struct FloatingNet;

impl LintRule for FloatingNet {
    fn id(&self) -> &'static str {
        "floating-net"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "gate with no readers that is not a primary output"
    }
    fn check(&self, netlist: &Netlist, _index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_gate()
                && netlist.fanouts(id).is_empty()
                && !netlist.outputs().contains(&id)
            {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("gate `{}` drives nothing", node.name()),
                ));
            }
        }
    }
}

/// `unreachable-logic`: gates outside every observable cone (backward
/// from primary outputs and FF D inputs). They cost analysis time and
/// usually indicate an incomplete extraction; `sweep` would drop them.
pub struct UnreachableLogic;

impl LintRule for UnreachableLogic {
    fn id(&self) -> &'static str {
        "unreachable-logic"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "gates with no path to any output or FF"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        let dead: Vec<NodeId> = netlist
            .nodes()
            .filter(|(id, node)| node.kind().is_gate() && !index.is_live(*id))
            .map(|(id, _)| id)
            .collect();
        if !dead.is_empty() {
            let msg = format!(
                "{} gate(s) unreachable from any output or FF: {}",
                dead.len(),
                name_list(netlist, &dead, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                dead,
                msg,
            ));
        }
    }
}

/// `constant-dff`: a DFF fed a provably constant D value settles after
/// one clock and never transitions again — its FF pairs are trivially
/// multi-cycle for the wrong reason (dead source), which usually means a
/// tied-off mode pin rather than a real register.
pub struct ConstantDff;

impl LintRule for ConstantDff {
    fn id(&self) -> &'static str {
        "constant-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "DFF whose D input is a provable constant"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if !node.kind().is_dff() || node.fanins().len() != 1 {
                continue;
            }
            let d = node.fanins()[0];
            if let Some(v) = index.base_value(d).to_bool() {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!(
                        "DFF `{}` is fed constant {} by `{}`",
                        node.name(),
                        u8::from(v),
                        netlist.node(d).name()
                    ),
                ));
            }
        }
    }
}

/// `dangling-ff`: a DFF nothing reads and no output marks; its state is
/// unobservable, so every pair ending in it is wasted analysis work.
pub struct DanglingFf;

impl LintRule for DanglingFf {
    fn id(&self) -> &'static str {
        "dangling-ff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "DFF with no readers that is not a primary output"
    }
    fn check(&self, netlist: &Netlist, _index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_dff()
                && netlist.fanouts(id).is_empty()
                && !netlist.outputs().contains(&id)
            {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("DFF `{}` is never read", node.name()),
                ));
            }
        }
    }
}

/// `unobservable-logic`: gates that *structurally* reach an output or FF
/// but whose every path runs through a fixpoint-constant gate — they can
/// never influence anything observable. Strictly stronger than
/// `unreachable-logic` (which these gates pass) and disjoint from the
/// constant rules (the gates themselves are not constant).
pub struct UnobservableLogic;

impl LintRule for UnobservableLogic {
    fn id(&self) -> &'static str {
        "unobservable-logic"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "live gates that only feed fixpoint-constant logic"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        let dark: Vec<NodeId> = netlist
            .nodes()
            .filter(|(id, node)| {
                node.kind().is_gate()
                    && index.is_live(*id)
                    && !index.is_observable(*id)
                    && !index.fix_value(*id).is_definite()
            })
            .map(|(id, _)| id)
            .collect();
        if !dark.is_empty() {
            let msg = format!(
                "{} live gate(s) shadowed by constants, unable to influence any output or FF: {}",
                dark.len(),
                name_list(netlist, &dark, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                dark,
                msg,
            ));
        }
    }
}

/// `const-implied-net`: nets that are **not** combinationally constant
/// but settle to a constant once the sequential fixpoint is reached —
/// e.g. a register ladder seeded by a tied-off pin. The first frames
/// after power-up may still differ, which is exactly why these are
/// surfaced separately from `const-foldable`.
pub struct ConstImpliedNet;

impl LintRule for ConstImpliedNet {
    fn id(&self) -> &'static str {
        "const-implied-net"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "nets constant only through the sequential fixpoint"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        let implied: Vec<NodeId> = netlist
            .nodes()
            .filter(|(id, node)| {
                (node.kind().is_gate() || node.kind().is_dff())
                    && index.fix_value(*id).is_definite()
                    && !index.base_value(*id).is_definite()
            })
            .map(|(id, _)| id)
            .collect();
        if !implied.is_empty() {
            let msg = format!(
                "{} net(s) become constant after {} clock edge(s): {}",
                implied.len(),
                index.lattice().iterations,
                name_list(netlist, &implied, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                implied,
                msg,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Info rules
// ---------------------------------------------------------------------

/// `const-foldable`: gates whose output is a provable constant under
/// ternary propagation from `CONST` drivers. One aggregate finding —
/// cross-checked against `sweep`'s `folded_constant` in tests.
pub struct ConstFoldable;

impl LintRule for ConstFoldable {
    fn id(&self) -> &'static str {
        "const-foldable"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "gates computing a provable constant"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        let foldable: Vec<NodeId> = netlist
            .nodes()
            .filter(|(id, node)| node.kind().is_gate() && index.base_value(*id).is_definite())
            .map(|(id, _)| id)
            .collect();
        if !foldable.is_empty() {
            let msg = format!(
                "{} gate(s) fold to constants: {}",
                foldable.len(),
                name_list(netlist, &foldable, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                foldable,
                msg,
            ));
        }
    }
}

/// `self-loop-dff`: an FF in its own D cone becomes a self pair `(i, i)`
/// in the frame expansion — legitimate for hold multiplexers, but worth
/// surfacing because such pairs dominate `include_self_pairs` runs.
pub struct SelfLoopDff;

impl LintRule for SelfLoopDff {
    fn id(&self) -> &'static str {
        "self-loop-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "FF structurally feeding its own D input"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        for (j, &ff) in netlist.dffs().iter().enumerate() {
            if netlist.node(ff).fanins().len() != 1 {
                continue; // unconnected/multi-driven: their own Error rules
            }
            if index.cone_ffs(j).binary_search(&j).is_ok() {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [ff],
                    format!("DFF `{}` feeds its own D input", netlist.node(ff).name()),
                ));
            }
        }
    }
}

/// `x-prop-to-dff`: FFs that no primary input can ever influence, even
/// transitively, and that the fixpoint cannot prove constant — their
/// power-up X persists for the life of the machine. Free-running
/// counters and ring state machines are the legitimate shape; an X-fed
/// datapath register is the bug this surfaces.
pub struct XPropToDff;

impl LintRule for XPropToDff {
    fn id(&self) -> &'static str {
        "x-prop-to-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "FF whose power-up X can persist forever"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        let stuck: Vec<NodeId> = netlist
            .dffs()
            .iter()
            .enumerate()
            .filter(|&(j, &ff)| {
                !netlist.node(ff).fanins().is_empty()
                    && !index.seq_has_pi(j)
                    && !index.fix_value(ff).is_definite()
            })
            .map(|(_, &ff)| ff)
            .collect();
        if !stuck.is_empty() {
            let msg = format!(
                "{} FF(s) unreachable from any primary input; power-up X persists: {}",
                stuck.len(),
                name_list(netlist, &stuck, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                stuck,
                msg,
            ));
        }
    }
}

/// `domain-mixing`: FF pairs whose source and sink carry *different*
/// inferred load-enable domains. On a single-clock netlist this marks
/// the enable-domain crossings where multi-cycle transfers live; once
/// the model grows real multiple clocks the same rule will flag clock
/// domain crossings, hence Info for now.
pub struct DomainMixing;

impl LintRule for DomainMixing {
    fn id(&self) -> &'static str {
        "domain-mixing"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "FF pair crossing different inferred enable domains"
    }
    fn check(&self, netlist: &Netlist, index: &AnalysisIndex, out: &mut Vec<Diagnostic>) {
        let mut crossings = 0usize;
        let mut involved: Vec<NodeId> = Vec::new();
        let mut samples: Vec<String> = Vec::new();
        for j in 0..netlist.num_ffs() {
            for &i in index.cone_ffs(j) {
                if i == j {
                    continue;
                }
                let (src, dst) = (index.domain(i), index.domain(j));
                // Only a crossing when both ends are provably gated —
                // "ungated feeds gated" is ordinary datapath structure.
                let gated = src.enable.is_some() && dst.enable.is_some();
                if gated && !src.same_domain(dst) {
                    crossings += 1;
                    involved.push(netlist.dffs()[i]);
                    involved.push(netlist.dffs()[j]);
                    if samples.len() < 4 {
                        samples.push(format!(
                            "{} -> {}",
                            netlist.node(netlist.dffs()[i]).name(),
                            netlist.node(netlist.dffs()[j]).name()
                        ));
                    }
                }
            }
        }
        if crossings > 0 {
            involved.sort_unstable();
            involved.dedup();
            let mut msg = format!(
                "{crossings} FF pair(s) cross different enable domains: {}",
                samples.join(", ")
            );
            if crossings > samples.len() {
                msg.push_str(", ...");
            }
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                involved,
                msg,
            ));
        }
    }
}
