//! The built-in lint rules.
//!
//! | id | severity | finding |
//! |----|----------|---------|
//! | `comb-cycle` | Error | combinational cycle (SCC over the gate graph) |
//! | `zero-width-gate` | Error | gate with an empty fanin list |
//! | `unconnected-dff` | Error | DFF whose D input was never connected |
//! | `multi-driven-dff` | Error | DFF with more than one D driver |
//! | `duplicate-name` | Error | two nodes sharing one name |
//! | `floating-net` | Warn | gate that nothing reads and no output marks |
//! | `unreachable-logic` | Warn | gates with no path to any FF or output |
//! | `constant-dff` | Warn | DFF fed by a provably constant D input |
//! | `dangling-ff` | Warn | DFF that nothing reads and no output marks |
//! | `const-foldable` | Info | gates computing a provable constant |
//! | `self-loop-dff` | Info | FF structurally feeding its own D input |
//!
//! The Error rules are exactly the defects `NetlistBuilder::finish`
//! rejects: they can only occur in netlists from `finish_unchecked` or
//! external deserializers, and they make analysis results meaningless.
//! The Warn rules flag hygiene problems that a [`sweep`] would remove.
//! The Info rules mark structure the multi-cycle analysis treats
//! specially (constant cones shrink, self-loops become `(i, i)` pairs in
//! the frame expansion).
//!
//! [`sweep`]: mod@mcp_netlist::sweep

use crate::{Diagnostic, LintRule, Severity};
use mcp_logic::V3;
use mcp_netlist::{Netlist, NodeId, NodeKind};
use std::collections::HashMap;

/// All built-in rules, Error rules first.
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(CombCycle),
        Box::new(ZeroWidthGate),
        Box::new(UnconnectedDff),
        Box::new(MultiDrivenDff),
        Box::new(DuplicateName),
        Box::new(FloatingNet),
        Box::new(UnreachableLogic),
        Box::new(ConstantDff),
        Box::new(DanglingFf),
        Box::new(ConstFoldable),
        Box::new(SelfLoopDff),
    ]
}

/// Formats up to `cap` node names for a message, eliding the rest.
fn name_list(netlist: &Netlist, nodes: &[NodeId], cap: usize) -> String {
    let mut names: Vec<&str> = nodes
        .iter()
        .take(cap)
        .map(|&id| netlist.node(id).name())
        .collect();
    if nodes.len() > cap {
        names.push("...");
    }
    names.join(", ")
}

// ---------------------------------------------------------------------
// Error rules
// ---------------------------------------------------------------------

/// `comb-cycle`: a cycle through combinational gates only.
///
/// The 2-frame expansion and every engine assume the combinational part
/// is a DAG; a gate loop makes "the value of the cone" ill-defined.
/// Detected as strongly connected components of the gate-to-gate fanin
/// graph (Tarjan, iterative); each cyclic SCC yields one diagnostic.
pub struct CombCycle;

impl LintRule for CombCycle {
    fn id(&self) -> &'static str {
        "comb-cycle"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "combinational cycle in the gate graph"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for mut scc in cyclic_gate_sccs(netlist) {
            scc.sort_unstable();
            let msg = format!(
                "combinational cycle through {} gate(s): {}",
                scc.len(),
                name_list(netlist, &scc, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                scc,
                msg,
            ));
        }
    }
}

/// Tarjan's SCC algorithm (iterative) over the gate-only subgraph, with
/// edges gate → gate-fanin. Returns the components that actually contain
/// a cycle: more than one node, or a single gate reading itself.
fn cyclic_gate_sccs(netlist: &Netlist) -> Vec<Vec<NodeId>> {
    const UNVISITED: u32 = u32::MAX;
    let n = netlist.num_nodes();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS state: (node, next fanin position to visit).
    let mut work: Vec<(usize, usize)> = Vec::new();

    for (root, node) in netlist.nodes() {
        if !node.kind().is_gate() || index[root.index()] != UNVISITED {
            continue;
        }
        work.push((root.index(), 0));
        while let Some(&mut (v, ref mut fi)) = work.last_mut() {
            if *fi == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let fanins = netlist.node(NodeId::from_index(v)).fanins();
            let mut descended = false;
            while *fi < fanins.len() {
                let w = fanins[*fi].index();
                *fi += 1;
                if !netlist.node(NodeId::from_index(w)).kind().is_gate() {
                    continue;
                }
                if index[w] == UNVISITED {
                    work.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v is finished: pop, close its SCC if it is a root, and
            // propagate its lowlink to the parent.
            work.pop();
            if lowlink[v] == index[v] {
                let mut comp: Vec<NodeId> = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack non-empty");
                    on_stack[w] = false;
                    comp.push(NodeId::from_index(w));
                    if w == v {
                        break;
                    }
                }
                let self_loop = comp.len() == 1 && {
                    let id = comp[0];
                    netlist.node(id).fanins().contains(&id)
                };
                if comp.len() > 1 || self_loop {
                    sccs.push(comp);
                }
            }
            if let Some(&mut (p, _)) = work.last_mut() {
                lowlink[p] = lowlink[p].min(lowlink[v]);
            }
        }
    }
    sccs
}

/// `zero-width-gate`: a combinational gate with no fanins computes
/// nothing; every evaluator in the workspace would panic or guess.
pub struct ZeroWidthGate;

impl LintRule for ZeroWidthGate {
    fn id(&self) -> &'static str {
        "zero-width-gate"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "gate with an empty fanin list"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_gate() && node.fanins().is_empty() {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("gate `{}` has no fanins", node.name()),
                ));
            }
        }
    }
}

/// `unconnected-dff`: a DFF whose D input was never connected has no
/// next-state function — `Netlist::ff_d_input` would panic on it.
pub struct UnconnectedDff;

impl LintRule for UnconnectedDff {
    fn id(&self) -> &'static str {
        "unconnected-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "DFF whose D input was never connected"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_dff() && node.fanins().is_empty() {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("DFF `{}` has no D input", node.name()),
                ));
            }
        }
    }
}

/// `multi-driven-dff`: a DFF with more than one fanin is multiply
/// driven; the model defines exactly one D driver per FF.
pub struct MultiDrivenDff;

impl LintRule for MultiDrivenDff {
    fn id(&self) -> &'static str {
        "multi-driven-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "DFF with more than one D driver"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_dff() && node.fanins().len() > 1 {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!(
                        "DFF `{}` has {} D drivers",
                        node.name(),
                        node.fanins().len()
                    ),
                ));
            }
        }
    }
}

/// `duplicate-name`: two nodes with one name make name-based lookups
/// (`find_node`, SDC `-from`/`-to` cells) ambiguous.
pub struct DuplicateName;

impl LintRule for DuplicateName {
    fn id(&self) -> &'static str {
        "duplicate-name"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "two nodes sharing one name"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
        for (id, node) in netlist.nodes() {
            by_name.entry(node.name()).or_default().push(id);
        }
        let mut dups: Vec<(&str, Vec<NodeId>)> = by_name
            .into_iter()
            .filter(|(_, ids)| ids.len() > 1)
            .collect();
        dups.sort_unstable_by_key(|(_, ids)| ids[0]);
        for (name, ids) in dups {
            let msg = format!("{} nodes named `{}`", ids.len(), name);
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                ids,
                msg,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Warn rules
// ---------------------------------------------------------------------

/// `floating-net`: a gate nothing reads and no output marks drives
/// nothing observable — usually a netlist extraction bug.
pub struct FloatingNet;

impl LintRule for FloatingNet {
    fn id(&self) -> &'static str {
        "floating-net"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "gate with no readers that is not a primary output"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_gate()
                && netlist.fanouts(id).is_empty()
                && !netlist.outputs().contains(&id)
            {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("gate `{}` drives nothing", node.name()),
                ));
            }
        }
    }
}

/// `unreachable-logic`: gates outside every observable cone (backward
/// from primary outputs and FF D inputs). They cost analysis time and
/// usually indicate an incomplete extraction; `sweep` would drop them.
pub struct UnreachableLogic;

impl LintRule for UnreachableLogic {
    fn id(&self) -> &'static str {
        "unreachable-logic"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "gates with no path to any output or FF"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let mut live = vec![false; netlist.num_nodes()];
        let mut stack: Vec<NodeId> = Vec::new();
        let mark = |id: NodeId, live: &mut Vec<bool>, stack: &mut Vec<NodeId>| {
            if !live[id.index()] {
                live[id.index()] = true;
                stack.push(id);
            }
        };
        for &po in netlist.outputs() {
            mark(po, &mut live, &mut stack);
        }
        for &ff in netlist.dffs() {
            // Unconnected DFFs (their own Error) simply seed nothing.
            for &d in netlist.node(ff).fanins() {
                mark(d, &mut live, &mut stack);
            }
        }
        while let Some(n) = stack.pop() {
            if netlist.node(n).kind().is_gate() {
                for &f in netlist.node(n).fanins() {
                    mark(f, &mut live, &mut stack);
                }
            }
        }
        let dead: Vec<NodeId> = netlist
            .nodes()
            .filter(|(id, node)| node.kind().is_gate() && !live[id.index()])
            .map(|(id, _)| id)
            .collect();
        if !dead.is_empty() {
            let msg = format!(
                "{} gate(s) unreachable from any output or FF: {}",
                dead.len(),
                name_list(netlist, &dead, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                dead,
                msg,
            ));
        }
    }
}

/// `constant-dff`: a DFF fed a provably constant D value settles after
/// one clock and never transitions again — its FF pairs are trivially
/// multi-cycle for the wrong reason (dead source), which usually means a
/// tied-off mode pin rather than a real register.
pub struct ConstantDff;

impl LintRule for ConstantDff {
    fn id(&self) -> &'static str {
        "constant-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "DFF whose D input is a provable constant"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let values = const_values(netlist);
        for (id, node) in netlist.nodes() {
            if !node.kind().is_dff() || node.fanins().len() != 1 {
                continue;
            }
            let d = node.fanins()[0];
            if let Some(v) = values[d.index()].to_bool() {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!(
                        "DFF `{}` is fed constant {} by `{}`",
                        node.name(),
                        u8::from(v),
                        netlist.node(d).name()
                    ),
                ));
            }
        }
    }
}

/// `dangling-ff`: a DFF nothing reads and no output marks; its state is
/// unobservable, so every pair ending in it is wasted analysis work.
pub struct DanglingFf;

impl LintRule for DanglingFf {
    fn id(&self) -> &'static str {
        "dangling-ff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "DFF with no readers that is not a primary output"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for (id, node) in netlist.nodes() {
            if node.kind().is_dff()
                && netlist.fanouts(id).is_empty()
                && !netlist.outputs().contains(&id)
            {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [id],
                    format!("DFF `{}` is never read", node.name()),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Info rules
// ---------------------------------------------------------------------

/// `const-foldable`: gates whose output is a provable constant under
/// ternary propagation from `CONST` drivers. One aggregate finding —
/// cross-checked against `sweep`'s `folded_constant` in tests.
pub struct ConstFoldable;

impl LintRule for ConstFoldable {
    fn id(&self) -> &'static str {
        "const-foldable"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "gates computing a provable constant"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let values = const_values(netlist);
        let foldable: Vec<NodeId> = netlist
            .nodes()
            .filter(|(id, node)| node.kind().is_gate() && values[id.index()].is_definite())
            .map(|(id, _)| id)
            .collect();
        if !foldable.is_empty() {
            let msg = format!(
                "{} gate(s) fold to constants: {}",
                foldable.len(),
                name_list(netlist, &foldable, 8)
            );
            out.push(Diagnostic::new(
                self.id(),
                self.default_severity(),
                foldable,
                msg,
            ));
        }
    }
}

/// `self-loop-dff`: an FF in its own D cone becomes a self pair `(i, i)`
/// in the frame expansion — legitimate for hold multiplexers, but worth
/// surfacing because such pairs dominate `include_self_pairs` runs.
pub struct SelfLoopDff;

impl LintRule for SelfLoopDff {
    fn id(&self) -> &'static str {
        "self-loop-dff"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "FF structurally feeding its own D input"
    }
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for (j, &ff) in netlist.dffs().iter().enumerate() {
            if netlist.node(ff).fanins().len() != 1 {
                continue; // unconnected/multi-driven: their own Error rules
            }
            let (ff_sources, _) = netlist.cone_sources(netlist.node(ff).fanins()[0]);
            if ff_sources.contains(&j) {
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    [ff],
                    format!("DFF `{}` feeds its own D input", netlist.node(ff).name()),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// Ternary value of every node under constant propagation: `CONST`
/// drivers are definite, inputs and FF outputs are `X`, gates evaluate
/// over their fanins in topological order. Gates outside the topological
/// order (only possible in cyclic, unchecked netlists) stay `X`.
fn const_values(netlist: &Netlist) -> Vec<V3> {
    let mut values = vec![V3::X; netlist.num_nodes()];
    for (id, node) in netlist.nodes() {
        if let NodeKind::Const(v) = node.kind() {
            values[id.index()] = if v { V3::One } else { V3::Zero };
        }
    }
    for &g in netlist.topo_gates() {
        let node = netlist.node(g);
        if node.fanins().is_empty() {
            continue; // zero-width-gate's Error; value stays X
        }
        let kind = node.kind().gate_kind().expect("topo holds gates");
        values[g.index()] = kind.eval_v3(node.fanins().iter().map(|f| values[f.index()]));
    }
    values
}
