//! Validation of emitted `set_multicycle_path` constraints.
//!
//! `core::sdc::to_sdc` renders the analysis result as SDC text; this
//! module closes the loop by parsing that text back and cross-checking it
//! against the netlist and the verified pair list. The check catches an
//! entire class of pipeline bugs — stale reports applied to a different
//! netlist, renamed FFs, report/emitter index mismatches — before the
//! constraints reach a timing tool that would silently mis-apply them.
//!
//! Rules (all findings carry the 1-based line number):
//!
//! | id | severity | finding |
//! |----|----------|---------|
//! | `sdc-syntax` | Error | line is not a well-formed multicycle command |
//! | `sdc-unknown-cell` | Error | `-from`/`-to` names no FF in the netlist |
//! | `sdc-no-path` | Error | constrained pair has no combinational path |
//! | `sdc-unverified-pair` | Error | setup pair absent from the verified list |
//! | `sdc-hold-mismatch` | Warn | setup/hold companions disagree or miss |

use crate::{Diagnostic, Diagnostics, Severity};
use mcp_netlist::Netlist;
use std::collections::BTreeMap;

/// One parsed `set_multicycle_path` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdcConstraint {
    /// 1-based line number in the source text.
    pub line: usize,
    /// The path multiplier.
    pub cycles: u32,
    /// `true` for `-setup`, `false` for `-hold`.
    pub setup: bool,
    /// Cell name in the `-from [get_cells {...}]` clause.
    pub from: String,
    /// Cell name in the `-to [get_cells {...}]` clause.
    pub to: String,
}

/// Parses SDC text of the shape `to_sdc` emits.
///
/// Comment (`#`) and blank lines are skipped. Every other line must be a
/// `set_multicycle_path` command; malformed lines become `sdc-syntax`
/// diagnostics instead of constraints.
pub fn parse_sdc(text: &str) -> (Vec<SdcConstraint>, Vec<Diagnostic>) {
    let mut constraints = Vec::new();
    let mut diags = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_line(trimmed) {
            Ok((cycles, setup, from, to)) => constraints.push(SdcConstraint {
                line,
                cycles,
                setup,
                from,
                to,
            }),
            Err(why) => diags.push(Diagnostic::at_line(
                "sdc-syntax",
                Severity::Error,
                line,
                format!("{why}: `{trimmed}`"),
            )),
        }
    }
    (constraints, diags)
}

fn parse_line(line: &str) -> Result<(u32, bool, String, String), String> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some("set_multicycle_path") {
        return Err("expected `set_multicycle_path`".to_owned());
    }
    let cycles: u32 = toks
        .next()
        .ok_or_else(|| "missing path multiplier".to_owned())?
        .parse()
        .map_err(|_| "path multiplier is not a number".to_owned())?;
    let setup = match toks.next() {
        Some("-setup") => true,
        Some("-hold") => false,
        _ => return Err("expected `-setup` or `-hold`".to_owned()),
    };
    let from = parse_cell(&mut toks, "-from")?;
    let to = parse_cell(&mut toks, "-to")?;
    if let Some(extra) = toks.next() {
        return Err(format!("trailing token `{extra}`"));
    }
    Ok((cycles, setup, from, to))
}

/// Parses `<flag> [get_cells {NAME}]` from the token stream.
fn parse_cell<'a>(toks: &mut impl Iterator<Item = &'a str>, flag: &str) -> Result<String, String> {
    if toks.next() != Some(flag) {
        return Err(format!("expected `{flag}`"));
    }
    if toks.next() != Some("[get_cells") {
        return Err(format!("expected `[get_cells` after `{flag}`"));
    }
    let cell = toks
        .next()
        .ok_or_else(|| format!("missing cell after `{flag} [get_cells`"))?;
    cell.strip_prefix('{')
        .and_then(|c| c.strip_suffix("}]"))
        .filter(|c| !c.is_empty())
        .map(str::to_owned)
        .ok_or_else(|| format!("malformed cell `{cell}` (expected `{{name}}]`)"))
}

/// Validates SDC text against the netlist it constrains and the verified
/// multi-cycle pair list of the report that produced it.
///
/// `verified_pairs` holds `(src_ff_index, dst_ff_index)` pairs the
/// analysis proved multi-cycle (e.g. `McReport::multi_cycle_pairs()`, or
/// a hazard-robust subset — any superset of the emitted pairs is valid).
pub fn validate_sdc(
    netlist: &Netlist,
    verified_pairs: &[(usize, usize)],
    text: &str,
) -> Diagnostics {
    let (constraints, syntax) = parse_sdc(text);
    let mut report = Diagnostics {
        diagnostics: syntax,
    };

    // Resolve each constraint to FF indices; report unknown cells once
    // per offending line.
    let mut resolved: Vec<(usize, (usize, usize), u32, bool)> = Vec::new();
    for c in &constraints {
        let src = resolve_ff(netlist, &c.from, c.line, "-from", &mut report);
        let dst = resolve_ff(netlist, &c.to, c.line, "-to", &mut report);
        if let (Some(i), Some(j)) = (src, dst) {
            resolved.push((c.line, (i, j), c.cycles, c.setup));
        }
    }

    for &(line, (i, j), _, setup) in &resolved {
        if !netlist.ffs_connected(i, j) {
            report.push(Diagnostic::at_line(
                "sdc-no-path",
                Severity::Error,
                line,
                format!(
                    "no combinational path from `{}` to `{}`",
                    netlist.node(netlist.dffs()[i]).name(),
                    netlist.node(netlist.dffs()[j]).name()
                ),
            ));
        }
        if setup && !verified_pairs.contains(&(i, j)) {
            report.push(Diagnostic::at_line(
                "sdc-unverified-pair",
                Severity::Error,
                line,
                format!(
                    "pair `{}` -> `{}` is not in the verified multi-cycle set",
                    netlist.node(netlist.dffs()[i]).name(),
                    netlist.node(netlist.dffs()[j]).name()
                ),
            ));
        }
    }

    // Setup/hold companionship: every setup k should have a hold k-1 on
    // the same pair, and no hold should appear alone.
    let mut setups: BTreeMap<(usize, usize), (usize, u32)> = BTreeMap::new();
    let mut holds: BTreeMap<(usize, usize), (usize, u32)> = BTreeMap::new();
    for &(line, pair, cycles, setup) in &resolved {
        let slot = if setup { &mut setups } else { &mut holds };
        if let Some(&(first_line, _)) = slot.get(&pair) {
            report.push(Diagnostic::at_line(
                "sdc-hold-mismatch",
                Severity::Warn,
                line,
                format!(
                    "duplicate {} constraint for this pair (first at line {first_line})",
                    if setup { "-setup" } else { "-hold" }
                ),
            ));
        } else {
            slot.insert(pair, (line, cycles));
        }
    }
    for (pair, &(line, k)) in &setups {
        match holds.get(pair) {
            None => report.push(Diagnostic::at_line(
                "sdc-hold-mismatch",
                Severity::Warn,
                line,
                format!("-setup {k} has no companion -hold {}", k.saturating_sub(1)),
            )),
            Some(&(hold_line, h)) if h + 1 != k => report.push(Diagnostic::at_line(
                "sdc-hold-mismatch",
                Severity::Warn,
                hold_line,
                format!("-hold {h} does not match -setup {k} (expected {})", k - 1),
            )),
            Some(_) => {}
        }
    }
    for (pair, &(line, h)) in &holds {
        if !setups.contains_key(pair) {
            report.push(Diagnostic::at_line(
                "sdc-hold-mismatch",
                Severity::Warn,
                line,
                format!("-hold {h} has no companion -setup"),
            ));
        }
    }

    report
}

/// Looks a cell name up as a DFF; pushes `sdc-unknown-cell` on failure.
fn resolve_ff(
    netlist: &Netlist,
    name: &str,
    line: usize,
    flag: &str,
    report: &mut Diagnostics,
) -> Option<usize> {
    match netlist.find_node(name).and_then(|id| netlist.ff_index(id)) {
        Some(k) => Some(k),
        None => {
            report.push(Diagnostic::at_line(
                "sdc-unknown-cell",
                Severity::Error,
                line,
                format!(
                    "{flag} cell `{name}` is not a flip-flop of `{}`",
                    netlist.name()
                ),
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;

    /// FF1 -> (XOR) -> FF2, FF3 isolated; pairs: (0,1) connected.
    fn tri() -> Netlist {
        let mut b = NetlistBuilder::new("tri");
        let a = b.input("a");
        let ff1 = b.dff("FF1");
        let ff2 = b.dff("FF2");
        let ff3 = b.dff("FF3");
        let g = b.gate("g", GateKind::Xor, [ff1, a]).unwrap();
        b.set_dff_input(ff1, a).unwrap();
        b.set_dff_input(ff2, g).unwrap();
        b.set_dff_input(ff3, a).unwrap();
        b.mark_output(ff2);
        b.mark_output(ff3);
        b.finish().unwrap()
    }

    fn pair_text(k: u32, from: &str, to: &str) -> String {
        format!(
            "set_multicycle_path {k} -setup -from [get_cells {{{from}}}] -to [get_cells {{{to}}}]\n\
             set_multicycle_path {} -hold  -from [get_cells {{{from}}}] -to [get_cells {{{to}}}]\n",
            k - 1
        )
    }

    #[test]
    fn well_formed_text_validates_cleanly() {
        let nl = tri();
        let text = format!("# header comment\n\n{}", pair_text(2, "FF1", "FF2"));
        let report = validate_sdc(&nl, &[(0, 1)], &text);
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn parser_extracts_fields_and_line_numbers() {
        let (cs, diags) = parse_sdc(&format!("# c\n{}", pair_text(3, "FF1", "FF2")));
        assert!(diags.is_empty());
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[0],
            SdcConstraint {
                line: 2,
                cycles: 3,
                setup: true,
                from: "FF1".to_owned(),
                to: "FF2".to_owned(),
            }
        );
        assert!(!cs[1].setup);
        assert_eq!(cs[1].cycles, 2);
    }

    #[test]
    fn garbage_lines_are_syntax_errors() {
        let nl = tri();
        for bad in [
            "set_multicycle_path two -setup -from [get_cells {FF1}] -to [get_cells {FF2}]",
            "set_multicycle_path 2 -both -from [get_cells {FF1}] -to [get_cells {FF2}]",
            "set_multicycle_path 2 -setup -from [get_cells FF1] -to [get_cells {FF2}]",
            "set_multicycle_path 2 -setup -from [get_cells {FF1}]",
            "set_multicycle_path 2 -setup -from [get_cells {FF1}] -to [get_cells {FF2}] extra",
            "create_clock -period 10",
        ] {
            let report = validate_sdc(&nl, &[(0, 1)], bad);
            assert_eq!(report.len(), 1, "{bad}: {report:?}");
            let d = report.iter().next().unwrap();
            assert_eq!(d.rule, "sdc-syntax", "{bad}");
            assert_eq!(d.line, Some(1));
            assert_eq!(d.severity, Severity::Error);
        }
    }

    #[test]
    fn unknown_cells_are_reported_per_clause() {
        let nl = tri();
        // `a` exists but is not an FF; `nope` does not exist at all.
        let text = pair_text(2, "a", "nope");
        let report = validate_sdc(&nl, &[(0, 1)], &text);
        let unknown: Vec<_> = report
            .iter()
            .filter(|d| d.rule == "sdc-unknown-cell")
            .collect();
        assert_eq!(unknown.len(), 4); // 2 clauses x setup+hold lines
        assert!(unknown[0].message.contains("`a`"));
    }

    #[test]
    fn pairs_without_a_path_are_errors() {
        let nl = tri();
        // FF3 has no combinational path to FF2.
        let text = pair_text(2, "FF3", "FF2");
        let report = validate_sdc(&nl, &[(2, 1)], &text);
        assert!(report.iter().any(|d| d.rule == "sdc-no-path"));
    }

    #[test]
    fn unverified_pairs_are_errors() {
        let nl = tri();
        let text = pair_text(2, "FF1", "FF2");
        let report = validate_sdc(&nl, &[], &text);
        let unverified: Vec<_> = report
            .iter()
            .filter(|d| d.rule == "sdc-unverified-pair")
            .collect();
        // Only the -setup line carries the verification obligation.
        assert_eq!(unverified.len(), 1);
        assert_eq!(unverified[0].line, Some(1));
    }

    #[test]
    fn hold_companions_are_cross_checked() {
        let nl = tri();
        let setup_only =
            "set_multicycle_path 2 -setup -from [get_cells {FF1}] -to [get_cells {FF2}]";
        let report = validate_sdc(&nl, &[(0, 1)], setup_only);
        assert!(report
            .iter()
            .any(|d| d.rule == "sdc-hold-mismatch" && d.severity == Severity::Warn));

        let hold_only = "set_multicycle_path 1 -hold -from [get_cells {FF1}] -to [get_cells {FF2}]";
        let report = validate_sdc(&nl, &[(0, 1)], hold_only);
        assert!(report.iter().any(|d| d.rule == "sdc-hold-mismatch"));

        let wrong_k =
            "set_multicycle_path 3 -setup -from [get_cells {FF1}] -to [get_cells {FF2}]\n\
             set_multicycle_path 1 -hold -from [get_cells {FF1}] -to [get_cells {FF2}]";
        let report = validate_sdc(&nl, &[(0, 1)], wrong_k);
        let d = report
            .iter()
            .find(|d| d.rule == "sdc-hold-mismatch")
            .expect("mismatch");
        assert!(d.message.contains("does not match"), "{d:?}");
        assert_eq!(d.line, Some(2));
    }

    #[test]
    fn duplicate_constraints_are_flagged() {
        let nl = tri();
        let text = format!(
            "{}{}",
            pair_text(2, "FF1", "FF2"),
            pair_text(2, "FF1", "FF2")
        );
        let report = validate_sdc(&nl, &[(0, 1)], &text);
        let dups: Vec<_> = report
            .iter()
            .filter(|d| d.message.contains("duplicate"))
            .collect();
        assert_eq!(dups.len(), 2); // one per repeated setup + repeated hold
    }
}
