//! Direct implication with trail-based backtracking.

use crate::learn::LearnedImplications;
use mcp_logic::{GateKind, V3};
use mcp_netlist::{Expanded, XId, XKind};
use std::collections::VecDeque;
use std::fmt;

/// A contradiction found during assignment or propagation.
///
/// The engine state after a conflict is a partially propagated trail; the
/// caller must [`backtrack`](ImpEngine::backtrack) to a checkpoint before
/// continuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The node at which inconsistent values met.
    pub node: XId,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conflicting implications at node {}", self.node)
    }
}

impl std::error::Error for Conflict {}

/// A snapshot of the engine's trail, returned by
/// [`ImpEngine::checkpoint`] and consumed by [`ImpEngine::backtrack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

/// The implication engine: a ternary value store over an expanded model
/// with exhaustive direct implications and cheap backtracking.
///
/// Direct implications at a gate `g = OP(f1 .. fk)`:
///
/// * **forward** — if the fanin values determine the output under the
///   ternary evaluation, the output is implied;
/// * **backward** — if the output is assigned:
///   * a *non-controlled* output (e.g. AND = 1) forces every input to the
///     non-controlling value;
///   * a *controlled* output (e.g. AND = 0) with exactly one unassigned
///     input and all other inputs non-controlling forces that input to the
///     controlling value (unique justification);
///   * NOT/BUF force their single input; XOR/XNOR with one unassigned
///     input force it to the required parity.
///
/// A [`LearnedImplications`] store can be attached with
/// [`with_learned`](Self::with_learned) to additionally replay global
/// implications on every assignment.
#[derive(Debug)]
pub struct ImpEngine<'a> {
    x: &'a Expanded,
    val: Vec<V3>,
    trail: Vec<XId>,
    queue: VecDeque<XId>,
    in_queue: Vec<bool>,
    learned: Option<&'a LearnedImplications>,
    /// Total direct-implication gate examinations (instrumentation).
    examinations: u64,
    /// Definite values placed on the trail so far (instrumentation).
    implications: u64,
    /// Conflicts discovered so far (instrumentation).
    contradictions: u64,
}

impl<'a> ImpEngine<'a> {
    /// Creates an engine over `x` with every variable and gate unassigned
    /// (constants are pre-assigned and never appear on the trail).
    pub fn new(x: &'a Expanded) -> Self {
        let mut val = vec![V3::X; x.num_nodes()];
        for (id, node) in x.nodes() {
            if let XKind::Const(b) = node.kind() {
                val[id.index()] = V3::from(b);
            }
        }
        ImpEngine {
            x,
            val,
            trail: Vec::new(),
            queue: VecDeque::new(),
            in_queue: vec![false; x.num_nodes()],
            learned: None,
            examinations: 0,
            implications: 0,
            contradictions: 0,
        }
    }

    /// Attaches a static-learning store; its implications are replayed on
    /// every assignment from now on.
    pub fn with_learned(mut self, learned: &'a LearnedImplications) -> Self {
        self.learned = Some(learned);
        self
    }

    /// The expanded model this engine works on.
    #[inline]
    pub fn expanded(&self) -> &'a Expanded {
        self.x
    }

    /// Current value of a node.
    #[inline]
    pub fn value(&self, id: XId) -> V3 {
        self.val[id.index()]
    }

    /// Number of assigned (non-`X`) nodes currently on the trail.
    #[inline]
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Gate examinations performed so far (instrumentation for benches).
    #[inline]
    pub fn examinations(&self) -> u64 {
        self.examinations
    }

    /// Definite values placed on the trail so far, counting both asserted
    /// objectives and derived implications (instrumentation).
    #[inline]
    pub fn implications(&self) -> u64 {
        self.implications
    }

    /// Conflicts discovered so far by [`assign`](Self::assign) or
    /// [`propagate`](Self::propagate) (instrumentation).
    #[inline]
    pub fn contradictions(&self) -> u64 {
        self.contradictions
    }

    /// The node assigned at trail position `k` (`k < trail_len()`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn trail_at(&self, k: usize) -> XId {
        self.trail[k]
    }

    /// Takes a checkpoint of the current trail.
    #[inline]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.trail.len())
    }

    /// Undoes every assignment made after `cp` and clears pending work.
    pub fn backtrack(&mut self, cp: Checkpoint) {
        while self.trail.len() > cp.0 {
            let id = self.trail.pop().expect("trail non-empty");
            self.val[id.index()] = V3::X;
        }
        while let Some(g) = self.queue.pop_front() {
            self.in_queue[g.index()] = false;
        }
    }

    fn schedule(&mut self, g: XId) {
        if !self.in_queue[g.index()] {
            self.in_queue[g.index()] = true;
            self.queue.push_back(g);
        }
    }

    /// Schedules the gates whose pins involve `id`: its fanouts, and itself
    /// when it is a gate (for backward implications).
    fn schedule_around(&mut self, id: XId) {
        if matches!(self.x.node(id).kind(), XKind::Gate(_)) {
            self.schedule(id);
        }
        let n_fanouts = self.x.fanouts(id).len();
        for k in 0..n_fanouts {
            let out = self.x.fanouts(id)[k];
            self.schedule(out);
        }
    }

    /// Assigns `id := v`, scheduling implications (run
    /// [`propagate`](Self::propagate) to perform them).
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] if `id` already holds the opposite value. An
    /// assignment equal to the current value is a no-op.
    pub fn assign(&mut self, id: XId, v: bool) -> Result<(), Conflict> {
        match self.val[id.index()] {
            V3::X => {
                self.val[id.index()] = V3::from(v);
                self.trail.push(id);
                self.implications += 1;
                self.schedule_around(id);
                if let Some(learned) = self.learned {
                    // Replay learned binary implications for this literal.
                    for &(m, w) in learned.implied_by(id, v) {
                        self.assign(m, w)?;
                    }
                }
                Ok(())
            }
            cur if cur == V3::from(v) => Ok(()),
            _ => {
                self.contradictions += 1;
                Err(Conflict { node: id })
            }
        }
    }

    /// Runs direct implications to fixpoint.
    ///
    /// # Errors
    ///
    /// Returns the first [`Conflict`] discovered. The engine then holds a
    /// partially propagated state; backtrack before reuse.
    pub fn propagate(&mut self) -> Result<(), Conflict> {
        while let Some(g) = self.queue.pop_front() {
            self.in_queue[g.index()] = false;
            self.examine(g)?;
        }
        Ok(())
    }

    /// Performs all direct implications available at gate `g`.
    fn examine(&mut self, g: XId) -> Result<(), Conflict> {
        self.examinations += 1;
        let node = self.x.node(g);
        let kind = match node.kind() {
            XKind::Gate(k) => k,
            _ => return Ok(()),
        };
        // Forward: does the fanin picture determine the output?
        let fanins = node.fanins();
        let fwd = kind.eval_v3(fanins.iter().map(|f| self.val[f.index()]));
        let out = self.val[g.index()];
        match (out, fwd) {
            (V3::X, V3::X) => return Ok(()), // nothing known yet
            (V3::X, _) => {
                let v = fwd.to_bool().expect("definite");
                return self.assign(g, v);
            }
            (_, V3::X) => {} // fall through to backward rules
            (o, f) if o == f => {
                // Output already justified; for gates with controlling
                // values a *controlled* output may still imply the last
                // free input when all assigned inputs are non-controlling —
                // but if forward eval is definite the inputs are all
                // assigned, so nothing remains.
                return Ok(());
            }
            _ => {
                self.contradictions += 1;
                return Err(Conflict { node: g });
            }
        }

        // Backward: output definite, inputs not yet determining it.
        let out_v = out.to_bool().expect("checked definite");
        match kind {
            GateKind::Not | GateKind::Buf => {
                let want = out_v ^ kind.output_inversion();
                let f0 = fanins[0];
                self.assign(f0, want)
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let c = kind.controlling_value().expect("and/or family");
                let controlled = kind.controlled_output().expect("and/or family");
                if out_v != controlled {
                    // Non-controlled output: every input non-controlling.
                    for k in 0..fanins.len() {
                        let f = self.x.node(g).fanins()[k];
                        self.assign(f, !c)?;
                    }
                    Ok(())
                } else {
                    // Controlled output: if some input already carries the
                    // controlling value we are justified; otherwise, if
                    // exactly one input is unassigned it must carry it.
                    let mut unassigned = None;
                    let mut count_x = 0usize;
                    for &f in fanins {
                        match self.val[f.index()].to_bool() {
                            Some(v) if v == c => return Ok(()), // justified
                            Some(_) => {}
                            None => {
                                count_x += 1;
                                unassigned = Some(f);
                            }
                        }
                    }
                    match count_x {
                        0 => {
                            // All inputs non-controlling but controlled out.
                            self.contradictions += 1;
                            Err(Conflict { node: g })
                        }
                        1 => self.assign(unassigned.expect("one unassigned"), c),
                        _ => Ok(()), // undetermined: an unjustified gate (J-frontier)
                    }
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                // Parity: with exactly one unassigned input, it is implied.
                let mut unassigned = None;
                let mut count_x = 0usize;
                let mut parity = out_v ^ kind.output_inversion();
                for &f in fanins {
                    match self.val[f.index()].to_bool() {
                        Some(v) => parity ^= v,
                        None => {
                            count_x += 1;
                            unassigned = Some(f);
                        }
                    }
                }
                match count_x {
                    0 => {
                        // Fully assigned; forward eval would have caught a
                        // mismatch, but be safe.
                        if parity {
                            self.contradictions += 1;
                            Err(Conflict { node: g })
                        } else {
                            Ok(())
                        }
                    }
                    1 => self.assign(unassigned.expect("one unassigned"), parity),
                    _ => Ok(()),
                }
            }
        }
    }

    /// Returns the gates whose output is assigned a *controlled* value that
    /// no input justifies yet — the classic **J-frontier** the ATPG search
    /// branches on.
    ///
    /// XOR/XNOR gates count as unjustified when their output is assigned
    /// and at least two inputs are unassigned.
    pub fn unjustified_gates(&self) -> Vec<XId> {
        let mut res = Vec::new();
        for &g in self.x.topo_gates() {
            if self.is_unjustified(g) {
                res.push(g);
            }
        }
        res
    }

    /// Whether gate `g` is currently unjustified (see
    /// [`unjustified_gates`](Self::unjustified_gates)).
    pub fn is_unjustified(&self, g: XId) -> bool {
        let node = self.x.node(g);
        let kind = match node.kind() {
            XKind::Gate(k) => k,
            _ => return false,
        };
        let out = match self.val[g.index()].to_bool() {
            Some(v) => v,
            None => return false,
        };
        match kind {
            GateKind::Not | GateKind::Buf => false, // always implied through
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let c = kind.controlling_value().expect("and/or family");
                let controlled = kind.controlled_output().expect("and/or family");
                if out != controlled {
                    return false; // backward rule assigns all inputs
                }
                let mut count_x = 0usize;
                for &f in node.fanins() {
                    match self.val[f.index()].to_bool() {
                        Some(v) if v == c => return false, // justified
                        Some(_) => {}
                        None => count_x += 1,
                    }
                }
                count_x >= 2 // 0 → conflict, 1 → implied; both handled in examine
            }
            GateKind::Xor | GateKind::Xnor => {
                node.fanins()
                    .iter()
                    .filter(|f| self.val[f.index()] == V3::X)
                    .count()
                    >= 2
            }
        }
    }

    /// Finds one unjustified gate, or `None` when the current assignment is
    /// fully justified.
    ///
    /// Scans the trail oldest-first: every unjustified gate has a definite
    /// output, so it must be on the trail, and the oldest entries are the
    /// caller's asserted objectives — branching near them keeps the search
    /// goal-directed. This is O(trail) rather than O(model).
    pub fn find_unjustified(&self) -> Option<XId> {
        self.trail
            .iter()
            .copied()
            .find(|&id| self.is_unjustified(id))
    }

    /// Extracts the current assignment of the model's free variables.
    ///
    /// Unassigned variables are reported as `X`; the caller decides how to
    /// complete them (any completion is consistent once propagation has
    /// settled and no gate is unjustified).
    pub fn var_assignment(&self) -> Vec<(XId, V3)> {
        self.x
            .vars()
            .iter()
            .map(|&v| (v, self.val[v.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_netlist::{bench, NetlistBuilder};

    fn expand(src: &str) -> (mcp_netlist::Netlist, Expanded) {
        let nl = bench::parse("t", src).expect("parse");
        let x = Expanded::build(&nl, 1);
        (nl, x)
    }

    #[test]
    fn forward_implication_through_chain() {
        let (nl, x) = expand("INPUT(a)\nq = DFF(y)\ny = NOT(b)\nb = NOT(a)");
        let a = x.pi_at(0, 0);
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut eng = ImpEngine::new(&x);
        eng.assign(a, true).unwrap();
        eng.propagate().unwrap();
        assert_eq!(eng.value(y), V3::One);
    }

    #[test]
    fn backward_noncontrolled_output_forces_all_inputs() {
        let (nl, x) = expand("INPUT(a)\nINPUT(b)\nq = DFF(y)\ny = NOR(a, b)");
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut eng = ImpEngine::new(&x);
        eng.assign(y, true).unwrap(); // NOR=1 -> both inputs 0
        eng.propagate().unwrap();
        assert_eq!(eng.value(x.pi_at(0, 0)), V3::Zero);
        assert_eq!(eng.value(x.pi_at(1, 0)), V3::Zero);
    }

    #[test]
    fn backward_unique_justification() {
        let (nl, x) = expand("INPUT(a)\nINPUT(b)\nq = DFF(y)\ny = AND(a, b)");
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let a = x.pi_at(0, 0);
        let b = x.pi_at(1, 0);
        let mut eng = ImpEngine::new(&x);
        eng.assign(y, false).unwrap();
        eng.assign(a, true).unwrap(); // a non-controlling -> b must justify
        eng.propagate().unwrap();
        assert_eq!(eng.value(b), V3::Zero);
    }

    #[test]
    fn xor_parity_implication() {
        let (nl, x) = expand("INPUT(a)\nINPUT(b)\nINPUT(c)\nq = DFF(y)\ny = XOR(a, b, c)");
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut eng = ImpEngine::new(&x);
        eng.assign(y, true).unwrap();
        eng.assign(x.pi_at(0, 0), true).unwrap();
        eng.assign(x.pi_at(1, 0), false).unwrap();
        eng.propagate().unwrap();
        assert_eq!(eng.value(x.pi_at(2, 0)), V3::Zero); // 1^0^c = 1 -> c=0
    }

    #[test]
    fn conflict_on_inconsistent_structure() {
        // y = AND(a, na); na = NOT(a). y=1 is impossible.
        let (nl, x) = expand("INPUT(a)\nq = DFF(y)\nna = NOT(a)\ny = AND(a, na)");
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut eng = ImpEngine::new(&x);
        let cp = eng.checkpoint();
        let r = eng.assign(y, true).and_then(|()| eng.propagate());
        assert!(r.is_err());
        eng.backtrack(cp);
        assert_eq!(eng.value(y), V3::X);
        // After backtracking, the consistent branch works.
        eng.assign(y, false).unwrap();
        eng.propagate().unwrap();
    }

    #[test]
    fn checkpoints_nest() {
        let (_, x) = expand("INPUT(a)\nINPUT(b)\nq = DFF(y)\ny = AND(a, b)");
        let a = x.pi_at(0, 0);
        let b = x.pi_at(1, 0);
        let mut eng = ImpEngine::new(&x);
        let cp0 = eng.checkpoint();
        eng.assign(a, true).unwrap();
        let cp1 = eng.checkpoint();
        eng.assign(b, true).unwrap();
        eng.propagate().unwrap();
        assert_eq!(eng.trail_len(), 3); // a, b, y
        eng.backtrack(cp1);
        assert_eq!(eng.value(b), V3::X);
        assert_eq!(eng.value(a), V3::One);
        eng.backtrack(cp0);
        assert_eq!(eng.value(a), V3::X);
    }

    #[test]
    fn unjustified_gates_form_j_frontier() {
        let (nl, x) = expand("INPUT(a)\nINPUT(b)\nq = DFF(y)\ny = AND(a, b)");
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut eng = ImpEngine::new(&x);
        eng.assign(y, false).unwrap();
        eng.propagate().unwrap();
        assert_eq!(eng.unjustified_gates(), vec![y]);
        // Justify it: a = 0.
        eng.assign(x.pi_at(0, 0), false).unwrap();
        eng.propagate().unwrap();
        assert!(eng.unjustified_gates().is_empty());
    }

    #[test]
    fn cross_frame_implication_through_aliases() {
        // q' = NOT(q). In a 2-frame expansion, asserting q(t+1)=1 implies
        // q(t)=0 (backward through frame 0) and q(t+2)=0 (forward through
        // frame 1) — the paper's Fig.2-style flow.
        let mut b = NetlistBuilder::new("toggle");
        let q = b.dff("Q");
        let n = b.gate("N", mcp_logic::GateKind::Not, [q]).unwrap();
        b.set_dff_input(q, n).unwrap();
        let nl = b.finish().unwrap();
        let x = Expanded::build(&nl, 2);
        let mut eng = ImpEngine::new(&x);
        eng.assign(x.ff_at(0, 1), true).unwrap();
        eng.propagate().unwrap();
        assert_eq!(eng.value(x.ff_at(0, 0)), V3::Zero);
        assert_eq!(eng.value(x.ff_at(0, 2)), V3::Zero);
    }

    #[test]
    fn assigning_same_value_twice_is_noop() {
        let (_, x) = expand("INPUT(a)\nq = DFF(y)\ny = BUFF(a)");
        let a = x.pi_at(0, 0);
        let mut eng = ImpEngine::new(&x);
        eng.assign(a, true).unwrap();
        let len = eng.trail_len();
        eng.assign(a, true).unwrap();
        assert_eq!(eng.trail_len(), len);
        assert!(eng.assign(a, false).is_err());
    }

    #[test]
    fn constants_are_preassigned_and_survive_backtrack() {
        let (nl, x) = expand("OUTPUT(y)\nc1 = CONST(1)\nq = DFF(y)\ny = BUFF(c1)");
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut eng = ImpEngine::new(&x);
        let cp = eng.checkpoint();
        eng.propagate().unwrap();
        eng.backtrack(cp);
        // The constant itself is still known even after backtracking.
        let c1 = x.value_of(0, nl.find_node("c1").unwrap());
        assert_eq!(eng.value(c1), V3::One);
        // And asserting y=0 now conflicts.
        let r = eng.assign(y, false).and_then(|()| eng.propagate());
        assert!(r.is_err());
    }
}
