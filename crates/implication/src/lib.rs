//! The implication engine — the paper's core machinery.
//!
//! The multi-cycle condition is "nothing but an implication relation"
//! (paper, Section 4): assert the source transition on the time-frame
//! expanded model, propagate *mandatory* value assignments in both
//! directions through the gates, and read off whether the sink flip-flop is
//! forced to hold its value.
//!
//! * [`ImpEngine`] — a ternary assignment store over an
//!   [`Expanded`](mcp_netlist::Expanded) model with a trail and
//!   checkpoints, performing exhaustive **direct implications** (forward
//!   evaluation + backward justification at every gate) until fixpoint, and
//!   detecting contradictions. Backtracking undoes assignments in O(#undone),
//!   which is what makes the ATPG search on top of it cheap.
//! * [`learn()`] / [`LearnedImplications`] — SOCRATES-style **static
//!   learning**: trial-assign each node to each phase, propagate, and
//!   record the contrapositives of everything implied. The learned binary
//!   implications are then replayed during normal propagation, catching
//!   non-local implications that direct rules miss. The paper enables this
//!   for the hardest ISCAS89 circuits (s9234, s13207, prolog, ...).
//!
//! # Example
//!
//! ```
//! use mcp_implication::ImpEngine;
//! use mcp_logic::V3;
//! use mcp_netlist::{bench, Expanded};
//!
//! // y = AND(a, b): asserting y=1 implies both inputs.
//! let nl = bench::parse("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(y)\ny = AND(a, b)")?;
//! let x = Expanded::build(&nl, 1);
//! let y = x.value_of(0, nl.find_node("y").unwrap());
//! let a = x.pi_at(0, 0);
//!
//! let mut eng = ImpEngine::new(&x);
//! eng.assign(y, true).expect("consistent");
//! eng.propagate().expect("no conflict");
//! assert_eq!(eng.value(a), V3::One);
//! # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod learn;

pub use engine::{Checkpoint, Conflict, ImpEngine};
pub use learn::{learn, LearnConfig, LearnedImplications};
