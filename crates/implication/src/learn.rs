//! SOCRATES-style static learning of global implications.

use crate::engine::ImpEngine;
use mcp_netlist::{Expanded, XId, XKind};

/// Configuration for [`learn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnConfig {
    /// Upper bound on stored implications (safety valve for very large
    /// expansions; `usize::MAX` = unlimited). Learning stops recording once
    /// the budget is exhausted but the already-recorded store stays valid —
    /// learned implications are sound individually.
    pub max_implications: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            max_implications: 8_000_000,
        }
    }
}

/// A store of learned binary implications `lit → lit` over an expanded
/// model, plus globally forced literals.
///
/// Produced by [`learn`]; attach to an engine with
/// [`ImpEngine::with_learned`](crate::ImpEngine::with_learned).
#[derive(Debug, Clone)]
pub struct LearnedImplications {
    /// `by_lit[2*node + bit]` lists the consequences of `node = bit`.
    by_lit: Vec<Vec<(XId, bool)>>,
    /// Literals true in every consistent assignment (discovered when a
    /// trial assignment conflicts immediately).
    forced: Vec<(XId, bool)>,
    total: usize,
}

impl LearnedImplications {
    fn new(num_nodes: usize) -> Self {
        LearnedImplications {
            by_lit: vec![Vec::new(); 2 * num_nodes],
            forced: Vec::new(),
            total: 0,
        }
    }

    #[inline]
    fn slot(id: XId, v: bool) -> usize {
        2 * id.index() + usize::from(v)
    }

    /// The literals implied by `id = v`.
    #[inline]
    pub fn implied_by(&self, id: XId, v: bool) -> &[(XId, bool)] {
        &self.by_lit[Self::slot(id, v)]
    }

    /// Literals that hold in every consistent assignment of the model.
    ///
    /// Callers should assert these up front (the analysis pipeline does).
    #[inline]
    pub fn forced(&self) -> &[(XId, bool)] {
        &self.forced
    }

    /// Total number of stored implication edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0 && self.forced.is_empty()
    }

    fn record(&mut self, from: (XId, bool), to: (XId, bool), budget: usize) {
        if self.total < budget {
            self.by_lit[Self::slot(from.0, from.1)].push(to);
            self.total += 1;
        }
    }
}

/// Performs static learning over an expanded model.
///
/// For every gate node `n` and phase `v ∈ {0, 1}`, the value is
/// trial-assigned and propagated with direct implications. Every implied
/// assignment `m = w` yields the **contrapositive** implication
/// `(m = !w) → (n = !v)`, which direct implication alone cannot derive in
/// general (it is a non-local consequence). A trial that conflicts
/// immediately proves `n = !v` globally (a *forced* literal).
///
/// This is the learning criterion of SOCRATES \[Schulz et al., ITC'87\],
/// the technique the paper enables for its hardest benchmark circuits.
/// The cost is one propagation per node per phase — quadratic-ish in
/// circuit size but embarrassingly effective on reconvergent logic.
pub fn learn(x: &Expanded, cfg: &LearnConfig) -> LearnedImplications {
    let mut store = LearnedImplications::new(x.num_nodes());
    let mut eng = ImpEngine::new(x);
    let budget = cfg.max_implications;

    for (id, node) in x.nodes() {
        // Trial-assign gates and free variables; constants are fixed.
        if matches!(node.kind(), XKind::Const(_)) {
            continue;
        }
        for v in [false, true] {
            let cp = eng.checkpoint();
            let trail_before = eng.trail_len();
            let ok = eng.assign(id, v).and_then(|()| eng.propagate()).is_ok();
            if ok {
                // Contrapositive of each implied literal. Skip the first
                // trail entry (the trial assignment itself).
                for k in trail_before + 1..eng.trail_len() {
                    let m = eng.trail_at(k);
                    let w = eng.value(m).to_bool().expect("trail entries are definite");
                    store.record((m, !w), (id, !v), budget);
                }
            } else {
                store.forced.push((id, !v));
            }
            eng.backtrack(cp);
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImpEngine;
    use mcp_logic::V3;
    use mcp_netlist::bench;

    fn expand(src: &str) -> (mcp_netlist::Netlist, Expanded) {
        let nl = bench::parse("t", src).expect("parse");
        let x = Expanded::build(&nl, 1);
        (nl, x)
    }

    #[test]
    fn learns_nonlocal_implication_through_reconvergence() {
        // Classic example: y = AND(a, b); z = OR(y, c).
        // Direct implication cannot derive z=0 → y=0... it can (backward
        // OR=0 forces all inputs). Use the converse direction instead:
        // setting a=1 implies nothing directly about z, but setting y=1
        // implies z=1, so learning records (z=0) → (y=0) — derivable — and
        // crucially (y=0) gives nothing, while a=1,b=1 → y=1 → z=1 records
        // (z=0) → (a=0 is NOT sound)... sound learning only records
        // contrapositives of *implied* literals: from trial a=1 nothing
        // nontrivial is implied. From trial y=1: implied a=1, b=1, z=1 →
        // records (a=0)→(y=0), (b=0)→(y=0), (z=0)→(y=0). All sound.
        let (nl, x) =
            expand("INPUT(a)\nINPUT(b)\nINPUT(c)\nq = DFF(z)\ny = AND(a, b)\nz = OR(y, c)");
        let store = learn(&x, &LearnConfig::default());
        assert!(!store.is_empty());
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let a = x.pi_at(0, 0);
        // (a=0) → (y=0) must be among the learned implications.
        assert!(store.implied_by(a, false).contains(&(y, false)));
    }

    #[test]
    fn forced_literals_from_tautologies() {
        // y = OR(a, na) with na = NOT(a) is constant 1: trial y=0 conflicts,
        // so y=1 is forced.
        let (nl, x) = expand("INPUT(a)\nq = DFF(y)\nna = NOT(a)\ny = OR(a, na)");
        let store = learn(&x, &LearnConfig::default());
        let y = x.value_of(0, nl.find_node("y").unwrap());
        assert!(store.forced().contains(&(y, true)));
    }

    #[test]
    fn learned_store_strengthens_engine() {
        // g = AND(a, b); h = AND(a, nb); z = OR(g, h).  Setting z=1 does not
        // directly imply a=1 (two OR branches), but learning from trials
        // a=0 (→ g=0, h=0, z=0) records (z=1) → (a=1).
        let (nl, x) = expand(
            "INPUT(a)\nINPUT(b)\nq = DFF(z)\nnb = NOT(b)\ng = AND(a, b)\nh = AND(a, nb)\nz = OR(g, h)",
        );
        let z = x.value_of(0, nl.find_node("z").unwrap());
        let a = x.pi_at(0, 0);

        let mut plain = ImpEngine::new(&x);
        plain.assign(z, true).unwrap();
        plain.propagate().unwrap();
        assert_eq!(plain.value(a), V3::X, "direct implication misses this");

        let store = learn(&x, &LearnConfig::default());
        let mut smart = ImpEngine::new(&x).with_learned(&store);
        smart.assign(z, true).unwrap();
        smart.propagate().unwrap();
        assert_eq!(smart.value(a), V3::One, "static learning catches it");
    }

    #[test]
    fn budget_caps_store_size() {
        let (_, x) =
            expand("INPUT(a)\nINPUT(b)\nINPUT(c)\nq = DFF(z)\ny = AND(a, b)\nz = OR(y, c)");
        let store = learn(
            &x,
            &LearnConfig {
                max_implications: 2,
            },
        );
        assert!(store.len() <= 2);
    }

    #[test]
    fn learned_implications_are_sound() {
        // Every learned implication must hold in every total assignment:
        // verify by exhaustive enumeration on a small model.
        let (_, x) = expand(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nq = DFF(z)\nnb = NOT(b)\ng = AND(a, b)\nh = AND(a, nb)\nz = OR(g, h)\n",
        );
        let store = learn(&x, &LearnConfig::default());
        let vars = x.vars();
        for bits in 0..(1u32 << vars.len()) {
            let assign: Vec<(mcp_netlist::XId, V3)> = vars
                .iter()
                .enumerate()
                .map(|(k, &v)| (v, V3::from(bits >> k & 1 == 1)))
                .collect();
            let vals = x.eval_v3(&assign);
            for (id, _) in x.nodes() {
                for phase in [false, true] {
                    if vals[id.index()] == V3::from(phase) {
                        for &(m, w) in store.implied_by(id, phase) {
                            assert_eq!(
                                vals[m.index()],
                                V3::from(w),
                                "unsound: ({id}={phase}) -> ({m}={w}) at bits {bits:b}"
                            );
                        }
                    }
                }
            }
        }
    }
}
