//! Property-based soundness of the implication engine.
//!
//! Whatever the engine *implies* must hold in every total assignment of
//! the free variables consistent with the asserted constraints — checked
//! against exhaustive enumeration on small random circuits.

use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_implication::{learn, ImpEngine, LearnConfig};
use mcp_logic::V3;
use mcp_netlist::{Expanded, XId};
use proptest::prelude::*;

fn small_cfg() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..50_000, 1usize..4, 0usize..3, 1usize..20).prop_map(|(seed, ffs, pis, gates)| {
        (
            seed,
            RandomCircuitConfig {
                ffs,
                pis,
                gates,
                max_arity: 3,
            },
        )
    })
}

/// Enumerates all assignments to the free variables, keeping those where
/// every `(node, value)` constraint holds; returns the surviving
/// evaluations.
fn consistent_evals(x: &Expanded, constraints: &[(XId, bool)]) -> Vec<Vec<V3>> {
    let vars = x.vars();
    assert!(vars.len() <= 16, "enumeration budget");
    let mut res = Vec::new();
    for bits in 0..(1u32 << vars.len()) {
        let assign: Vec<(XId, V3)> = vars
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, V3::from(bits >> k & 1 == 1)))
            .collect();
        let vals = x.eval_v3(&assign);
        if constraints
            .iter()
            .all(|&(n, b)| vals[n.index()] == V3::from(b))
        {
            res.push(vals);
        }
    }
    res
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn implications_are_sound(
        (seed, cfg) in small_cfg(),
        frames in 1u32..3,
        pick in any::<u64>(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, frames);
        prop_assume!(x.vars().len() <= 14);

        // Pick up to three constraint nodes pseudo-randomly.
        let n = x.num_nodes() as u64;
        let constraints: Vec<(XId, bool)> = (0..3)
            .map(|k| {
                let h = pick.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17 * (k + 1));
                let (idx, val) = ((h % n) as usize, h >> 63 == 1);
                let id = x.nodes().nth(idx).expect("in range").0;
                (id, val)
            })
            .collect();

        let mut eng = ImpEngine::new(&x);
        let mut ok = true;
        for &(id, v) in &constraints {
            if eng.assign(id, v).is_err() {
                ok = false;
                break;
            }
        }
        let ok = ok && eng.propagate().is_ok();
        let witnesses = consistent_evals(&x, &constraints);

        if ok {
            // Soundness: every implied definite value holds in every
            // consistent total assignment.
            for vals in &witnesses {
                for (id, _) in x.nodes() {
                    if let Some(b) = eng.value(id).to_bool() {
                        prop_assert_eq!(
                            vals[id.index()],
                            V3::from(b),
                            "implied {}={} refuted",
                            id,
                            b
                        );
                    }
                }
            }
        } else {
            // A conflict must mean the constraints are unsatisfiable.
            prop_assert!(
                witnesses.is_empty(),
                "engine reported conflict but {} witnesses exist",
                witnesses.len()
            );
        }
    }

    #[test]
    fn backtracking_restores_exactly(
        (seed, cfg) in small_cfg(),
        pick in any::<u64>(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, 2);
        let mut eng = ImpEngine::new(&x);

        // Snapshot, perturb, backtrack, compare.
        let before: Vec<V3> = x.nodes().map(|(id, _)| eng.value(id)).collect();
        let cp = eng.checkpoint();
        let n = x.num_nodes() as u64;
        let id = x.nodes().nth((pick % n) as usize).expect("in range").0;
        let _ = eng.assign(id, pick >> 63 == 1).and_then(|()| eng.propagate());
        eng.backtrack(cp);
        for (k, (id, _)) in x.nodes().enumerate() {
            prop_assert_eq!(eng.value(id), before[k], "{} not restored", id);
        }
    }

    #[test]
    fn learned_implications_are_sound(
        (seed, cfg) in small_cfg(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, 1);
        prop_assume!(x.vars().len() <= 12);
        let store = learn(&x, &LearnConfig::default());

        // Check every learned edge and forced literal against enumeration.
        let all = consistent_evals(&x, &[]);
        for (id, _) in x.nodes() {
            for phase in [false, true] {
                for &(m, w) in store.implied_by(id, phase) {
                    for vals in &all {
                        if vals[id.index()] == V3::from(phase) {
                            prop_assert_eq!(
                                vals[m.index()],
                                V3::from(w),
                                "learned ({}={}) -> ({}={}) unsound",
                                id, phase, m, w
                            );
                        }
                    }
                }
            }
        }
        for &(m, w) in store.forced() {
            for vals in &all {
                prop_assert_eq!(vals[m.index()], V3::from(w), "forced {}={} unsound", m, w);
            }
        }
    }
}
