//! Property-based validation of the CNF encoding and solver against
//! circuit evaluation.

use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_logic::V3;
use mcp_netlist::{Expanded, XId};
use mcp_sat::{CircuitCnf, SolveResult};
use proptest::prelude::*;

fn small_cfg() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..50_000, 1usize..4, 0usize..3, 1usize..25).prop_map(|(seed, ffs, pis, gates)| {
        (
            seed,
            RandomCircuitConfig {
                ffs,
                pis,
                gates,
                max_arity: 4,
            },
        )
    })
}

fn brute_force_sat(x: &Expanded, constraints: &[(XId, bool)]) -> bool {
    let vars = x.vars();
    for bits in 0..(1u32 << vars.len()) {
        let assign: Vec<(XId, V3)> = vars
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, V3::from(bits >> k & 1 == 1)))
            .collect();
        let vals = x.eval_v3(&assign);
        if constraints
            .iter()
            .all(|&(n, b)| vals[n.index()] == V3::from(b))
        {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoding_matches_brute_force(
        (seed, cfg) in small_cfg(),
        frames in 1u32..3,
        pick in any::<u64>(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, frames);
        prop_assume!(x.vars().len() <= 14);

        let n = x.num_nodes() as u64;
        let constraints: Vec<(XId, bool)> = (0..3)
            .map(|k| {
                let h = pick.wrapping_mul(0xA0761D6478BD642F).rotate_left(13 * (k + 1));
                let id = x.nodes().nth((h % n) as usize).expect("in range").0;
                (id, h >> 63 == 1)
            })
            .collect();

        let mut cnf = CircuitCnf::new(&x);
        let res = cnf.solve_with(&constraints);
        let expect = brute_force_sat(&x, &constraints);
        prop_assert_eq!(res == SolveResult::Sat, expect);

        if res == SolveResult::Sat {
            // The model must re-evaluate consistently through the circuit
            // semantics.
            let assign: Vec<(XId, V3)> = x
                .vars()
                .iter()
                .map(|&v| (v, V3::from(cnf.model_value(v))))
                .collect();
            let vals = x.eval_v3(&assign);
            for &(node, b) in &constraints {
                prop_assert_eq!(vals[node.index()], V3::from(b));
            }
            // Every circuit node's model value matches its evaluation.
            for (id, _) in x.nodes() {
                prop_assert_eq!(
                    vals[id.index()],
                    V3::from(cnf.model_value(id)),
                    "node {}",
                    id
                );
            }
        }
    }

    #[test]
    fn incremental_queries_are_independent(
        (seed, cfg) in small_cfg(),
    ) {
        // Repeated solves under different assumptions on one instance must
        // match fresh-instance answers (learnt clauses must not leak
        // unsoundness).
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, 2);
        prop_assume!(!x.topo_gates().is_empty());
        let probe = x.topo_gates()[x.topo_gates().len() / 2];

        let mut shared = CircuitCnf::new(&x);
        for v in [true, false, true, false] {
            let a = shared.solve_with(&[(probe, v)]);
            let mut fresh = CircuitCnf::new(&x);
            let b = fresh.solve_with(&[(probe, v)]);
            prop_assert_eq!(a, b, "probe={} v={}", probe, v);
        }
    }
}
