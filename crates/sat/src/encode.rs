//! Tseitin encoding of an expanded circuit model.

use crate::solver::{Lit, SolveResult, Solver, Var};
use mcp_logic::GateKind;
use mcp_netlist::{Expanded, XId, XKind};
use std::collections::HashMap;

/// A CNF encoding of an [`Expanded`] circuit inside a [`Solver`], with one
/// variable per circuit node and cached XOR "difference" literals.
///
/// This is the substrate of the SAT-based baseline \[9\]: build the
/// encoding once per circuit, then answer each FF-pair query with one
/// incremental [`solve`](Solver::solve) under two assumption literals
/// (`FFi(t) ⊕ FFi(t+1)` and `FFj(t+1) ⊕ FFj(t+2)`). Learnt clauses carry
/// over between queries.
///
/// # Example
///
/// ```
/// use mcp_netlist::{bench, Expanded};
/// use mcp_sat::{CircuitCnf, SolveResult};
///
/// let nl = bench::parse("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)")?;
/// let x = Expanded::build(&nl, 2);
/// let mut cnf = CircuitCnf::new(&x);
///
/// // A toggle FF changes every cycle: "Q(t) != Q(t+1)" is satisfiable,
/// // "Q(t) == Q(t+1)" is not.
/// let diff = cnf.diff_lit(x.ff_at(0, 0), x.ff_at(0, 1));
/// assert_eq!(cnf.solver_mut().solve(&[diff]), SolveResult::Sat);
/// assert_eq!(cnf.solver_mut().solve(&[!diff]), SolveResult::Unsat);
/// # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
/// ```
/// `Clone` duplicates the entire encoding and solver state. The pipeline
/// uses this for deterministic parallel classification: one *template*
/// `CircuitCnf` is built with every pair's difference literals created in
/// a canonical order, then each query runs on a fresh clone — so variable
/// numbering, decisions and learnt clauses per pair are identical no
/// matter which worker handles the pair or in what order.
#[derive(Debug, Clone)]
pub struct CircuitCnf {
    solver: Solver,
    var_of: Vec<Var>,
    diff_cache: HashMap<(XId, XId), Lit>,
}

impl CircuitCnf {
    /// Encodes `x` into a fresh solver.
    pub fn new(x: &Expanded) -> Self {
        let mut solver = Solver::new();
        let var_of: Vec<Var> = (0..x.num_nodes()).map(|_| solver.new_var()).collect();
        for (id, node) in x.nodes() {
            let out = var_of[id.index()];
            match node.kind() {
                XKind::Var(_) => {}
                XKind::Const(b) => {
                    solver.add_clause(&[out.lit(b)]);
                }
                XKind::Gate(kind) => {
                    let ins: Vec<Var> = node.fanins().iter().map(|f| var_of[f.index()]).collect();
                    encode_gate(&mut solver, kind, out, &ins);
                }
            }
        }
        CircuitCnf {
            solver,
            var_of,
            diff_cache: HashMap::new(),
        }
    }

    /// The positive literal of the variable encoding node `id`.
    #[inline]
    pub fn lit(&self, id: XId) -> Lit {
        self.var_of[id.index()].positive()
    }

    /// A literal that is true iff nodes `a` and `b` differ (`a ⊕ b`),
    /// creating and caching the XOR definition on first use.
    pub fn diff_lit(&mut self, a: XId, b: XId) -> Lit {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&l) = self.diff_cache.get(&key) {
            return l;
        }
        let d = self.solver.new_var();
        let (va, vb) = (self.var_of[key.0.index()], self.var_of[key.1.index()]);
        encode_xor2(&mut self.solver, d, va, vb);
        let l = d.positive();
        self.diff_cache.insert(key, l);
        l
    }

    /// Mutable access to the underlying solver (for `solve` calls).
    #[inline]
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Shared access to the underlying solver (for statistics).
    #[inline]
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Convenience: solve under assumptions phrased as node/value pairs.
    pub fn solve_with(&mut self, assumptions: &[(XId, bool)]) -> SolveResult {
        let lits: Vec<Lit> = assumptions
            .iter()
            .map(|&(id, v)| self.var_of[id.index()].lit(v))
            .collect();
        self.solver.solve(&lits)
    }

    /// Model value of a node after a `Sat` result.
    ///
    /// # Panics
    ///
    /// Panics if the last solve was not `Sat`.
    #[inline]
    pub fn model_value(&self, id: XId) -> bool {
        self.solver.model_value(self.var_of[id.index()])
    }
}

/// Encodes `out ↔ kind(ins)`.
fn encode_gate(solver: &mut Solver, kind: GateKind, out: Var, ins: &[Var]) {
    // The inverting gates are their base function with a negated output
    // literal.
    let out_lit = |phase: bool| out.lit(phase ^ kind.output_inversion());
    match kind {
        GateKind::Buf | GateKind::Not => {
            let a = ins[0];
            solver.add_clause(&[!out_lit(true), a.positive()]);
            solver.add_clause(&[out_lit(true), a.negative()]);
        }
        GateKind::And | GateKind::Nand => {
            // out=1 → every in=1; (∧ins) → out.
            let mut big: Vec<Lit> = vec![out_lit(true)];
            for &a in ins {
                solver.add_clause(&[!out_lit(true), a.positive()]);
                big.push(a.negative());
            }
            solver.add_clause(&big);
        }
        GateKind::Or | GateKind::Nor => {
            // out=0 → every in=0; in=1 → out=1.
            let mut big: Vec<Lit> = vec![!out_lit(true)];
            for &a in ins {
                solver.add_clause(&[out_lit(true), a.negative()]);
                big.push(a.positive());
            }
            solver.add_clause(&big);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain pairwise with auxiliary variables; final equivalence to
            // the (possibly inverted) output.
            let mut acc = ins[0];
            for &a in &ins[1..] {
                let t = solver.new_var();
                encode_xor2(solver, t, acc, a);
                acc = t;
            }
            // out_lit(true) ↔ acc
            solver.add_clause(&[!out_lit(true), acc.positive()]);
            solver.add_clause(&[out_lit(true), acc.negative()]);
        }
    }
}

/// Encodes `d ↔ a ⊕ b`.
fn encode_xor2(solver: &mut Solver, d: Var, a: Var, b: Var) {
    solver.add_clause(&[d.negative(), a.positive(), b.positive()]);
    solver.add_clause(&[d.negative(), a.negative(), b.negative()]);
    solver.add_clause(&[d.positive(), a.negative(), b.positive()]);
    solver.add_clause(&[d.positive(), a.positive(), b.negative()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::V3;
    use mcp_netlist::bench;

    fn setup(src: &str, frames: u32) -> (mcp_netlist::Netlist, Expanded) {
        let nl = bench::parse("t", src).expect("parse");
        let x = Expanded::build(&nl, frames);
        (nl, x)
    }

    #[test]
    fn models_agree_with_circuit_evaluation() {
        // For every gate kind, random constraints must produce models that
        // re-evaluate consistently.
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nq = DFF(z)\n\
                   g1 = NAND(a, b)\ng2 = NOR(b, c)\ng3 = XOR(g1, g2, a)\n\
                   g4 = XNOR(g3, c)\ng5 = BUFF(g4)\nz = NOT(g5)";
        let (nl, x) = setup(src, 1);
        let z = x.value_of(0, nl.find_node("z").unwrap());
        let mut cnf = CircuitCnf::new(&x);
        for v in [false, true] {
            let res = cnf.solve_with(&[(z, v)]);
            assert_eq!(res, SolveResult::Sat);
            // Extract the model on the free variables and re-evaluate.
            let assign: Vec<(XId, V3)> = x
                .vars()
                .iter()
                .map(|&var| (var, V3::from(cnf.model_value(var))))
                .collect();
            let vals = x.eval_v3(&assign);
            assert_eq!(vals[z.index()], V3::from(v));
        }
    }

    #[test]
    fn unsat_for_structural_tautologies() {
        let (nl, x) = setup(
            "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\nna = NOT(a)\ny = AND(a, na)",
            1,
        );
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut cnf = CircuitCnf::new(&x);
        assert_eq!(cnf.solve_with(&[(y, true)]), SolveResult::Unsat);
        assert_eq!(cnf.solve_with(&[(y, false)]), SolveResult::Sat);
    }

    #[test]
    fn diff_lit_is_cached_and_symmetric() {
        let (_, x) = setup("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)", 2);
        let mut cnf = CircuitCnf::new(&x);
        let n_before = cnf.solver().num_vars();
        let l1 = cnf.diff_lit(x.ff_at(0, 0), x.ff_at(0, 1));
        let l2 = cnf.diff_lit(x.ff_at(0, 1), x.ff_at(0, 0));
        assert_eq!(l1, l2);
        assert_eq!(cnf.solver().num_vars(), n_before + 1);
    }

    #[test]
    fn two_frame_toggle_semantics() {
        // Toggle FF: Q(t+1) = !Q(t) always; Q(t+2) = Q(t) always.
        let (_, x) = setup("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)", 2);
        let mut cnf = CircuitCnf::new(&x);
        let same02 = cnf.diff_lit(x.ff_at(0, 0), x.ff_at(0, 2));
        assert_eq!(cnf.solver_mut().solve(&[same02]), SolveResult::Unsat);
        assert_eq!(cnf.solver_mut().solve(&[!same02]), SolveResult::Sat);
    }

    #[test]
    fn constants_are_fixed() {
        let (nl, x) = setup("OUTPUT(y)\nc = CONST(1)\nq = DFF(y)\ny = NOT(c)", 1);
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut cnf = CircuitCnf::new(&x);
        assert_eq!(cnf.solve_with(&[(y, true)]), SolveResult::Unsat);
    }
}
