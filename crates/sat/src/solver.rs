//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! Architecture follows MiniSat: two-watched-literal propagation, first-UIP
//! learning with backjumping, exponential VSIDS activities with an indexed
//! max-heap, phase saving and Luby restarts. Clause deletion is not
//! implemented — the circuit instances this workspace produces are small
//! enough that the learnt database stays manageable, and determinism is
//! more valuable here than peak throughput.

use std::fmt;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given sign (`true` →
    /// positive).
    #[inline]
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    #[inline]
    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Verdict of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; read the model with [`Solver::model_value`].
    Sat,
    /// Unsatisfiable under the given assumptions.
    Unsat,
}

/// Ternary assignment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

type ClauseRef = u32;
const REASON_NONE: ClauseRef = u32::MAX;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Indexed max-heap over variable activities (the VSIDS order).
#[derive(Debug, Default, Clone)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<i32>, // -1 when absent
}

impl VarHeap {
    fn ensure(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(-1);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] >= 0
    }

    fn push(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        if let Ok(i) = usize::try_from(self.pos[v.index()]) {
            self.sift_up(i, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i as i32;
        self.pos[self.heap[j].index()] = j as i32;
    }
}

/// Solver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literal propagations performed.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt: u64,
}

/// A CDCL SAT solver (see [module docs](self)).
///
/// `Clone` duplicates the complete solver state — clauses (including
/// learnt ones), assignments, activities, saved phases and statistics.
/// Cloning a freshly encoded instance per query is how callers that need
/// *history-independent* per-query behavior (identical decisions,
/// conflicts and learnt clauses no matter what was solved before) get it
/// without rebuilding the encoding.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>, // indexed by literal code
    assign: Vec<LBool>,
    phase: Vec<bool>,
    reason: Vec<ClauseRef>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    ok: bool,
    stats: SolverStats,
    seen: Vec<bool>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::default(),
            ok: true,
            stats: SolverStats::default(),
            seen: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.reason.push(REASON_NONE);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.ensure(self.assign.len());
        self.order.push(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Solver statistics so far.
    #[inline]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_positive()),
            LBool::False => LBool::from_bool(!l.is_positive()),
        }
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause, or conflicting units at level 0).
    ///
    /// Adding a clause cancels any in-progress assignment back to decision
    /// level 0, invalidating the model of a previous `solve`.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        // Simplify: dedupe, drop false lits, detect tautology/satisfied.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var().index() < self.num_vars(), "unknown variable");
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => continue,
                LBool::Undef => {
                    if c.contains(&!l) {
                        return true; // tautology
                    }
                    if !c.contains(&l) {
                        c.push(l);
                    }
                }
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(c[0], REASON_NONE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(c);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        let w0 = lits[0];
        let w1 = lits[1];
        self.watches[(!w0).code()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).code()].push(Watcher { cref, blocker: w0 });
        self.clauses.push(Clause { lits });
        cref
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var();
        self.assign[v.index()] = LBool::from_bool(l.is_positive());
        self.phase[v.index()] = l.is_positive();
        self.reason[v.index()] = reason;
        self.level[v.index()] = self.trail_lim.len() as u32;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut conflict = None;
            while i < ws.len() {
                let Watcher { cref, blocker } = ws[i];
                if self.value_lit(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                // Normalize: make lits[1] the false literal (!p).
                {
                    let lits = &mut self.clauses[cref as usize].lits;
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], !p);
                }
                let first = self.clauses[cref as usize].lits[0];
                if self.value_lit(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut new_watch_idx = None;
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        new_watch_idx = Some(k);
                        break;
                    }
                }
                if let Some(k) = new_watch_idx {
                    self.clauses[cref as usize].lits.swap(1, k);
                    let nw = self.clauses[cref as usize].lits[1];
                    self.watches[(!nw).code()].push(Watcher {
                        cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, cref);
                i += 1;
            }
            self.watches[p.code()].append(&mut ws);
            // Note: watchers moved to other lists were swap-removed above.
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis; returns the learnt clause (UIP first)
    /// and the backjump level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = confl;
        let mut idx = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;

        loop {
            let lits_len = self.clauses[cref as usize].lits.len();
            let start = usize::from(p.is_some());
            for k in start..lits_len {
                let q = self.clauses[cref as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("found");
                break;
            }
            cref = self.reason[pv.index()];
            debug_assert_ne!(cref, REASON_NONE, "UIP literal must have a reason");
        }

        // Clear seen flags for the learnt clause.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Backjump level: highest level among learnt[1..].
        let bt = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Move a literal of level bt to position 1 (watch invariant).
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == bt)
                .expect("max exists")
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, bt)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.trail_lim.len() as u32 > lvl {
            let lim = self.trail_lim.pop().expect("non-empty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty");
                let v = l.var();
                self.assign[v.index()] = LBool::Undef;
                self.reason[v.index()] = REASON_NONE;
                self.order.push(v, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v.lit(self.phase[v.index()]));
            }
        }
        None
    }

    /// Solves under the given assumptions.
    ///
    /// Returns [`SolveResult::Sat`] with a complete model (readable via
    /// [`model_value`](Self::model_value) until the next mutating call) or
    /// [`SolveResult::Unsat`]. The solver is reusable afterwards; learnt
    /// clauses persist across calls, which makes per-FF-pair queries over a
    /// shared circuit encoding progressively cheaper.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);

        let mut conflicts_budget = luby(1) * 100;
        let mut restart_idx = 1u64;

        loop {
            let confl = self.propagate();
            match confl {
                Some(cref) => {
                    self.stats.conflicts += 1;
                    if self.trail_lim.is_empty() {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    // Conflicts inside the assumption prefix mean UNSAT
                    // under assumptions (not globally): handled below by
                    // re-checking assumptions after backjump.
                    let (learnt, bt) = self.analyze(cref);
                    self.cancel_until(bt);
                    if learnt.len() == 1 {
                        self.unchecked_enqueue(learnt[0], REASON_NONE);
                    } else {
                        let cref = self.attach_clause(learnt);
                        let first = self.clauses[cref as usize].lits[0];
                        self.unchecked_enqueue(first, cref);
                        self.stats.learnt += 1;
                    }
                    self.decay_activities();
                    conflicts_budget = conflicts_budget.saturating_sub(1);
                }
                None => {
                    if conflicts_budget == 0 && self.trail_lim.len() > assumptions.len() {
                        // Restart (keep the assumption prefix intact by
                        // cancelling to level 0; assumptions re-apply below).
                        self.stats.restarts += 1;
                        restart_idx += 1;
                        conflicts_budget = luby(restart_idx) * 100;
                        self.cancel_until(0);
                        continue;
                    }
                    // Re-establish assumptions, one decision level each.
                    let mut next_decision = None;
                    for (k, &a) in assumptions.iter().enumerate() {
                        if self.trail_lim.len() > k {
                            continue;
                        }
                        match self.value_lit(a) {
                            LBool::True => {
                                // Already implied: open an empty level to
                                // keep the prefix aligned.
                                self.trail_lim.push(self.trail.len());
                            }
                            LBool::False => return SolveResult::Unsat,
                            LBool::Undef => {
                                next_decision = Some(a);
                                break;
                            }
                        }
                    }
                    if let Some(a) = next_decision {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(a, REASON_NONE);
                        continue;
                    }
                    match self.pick_branch() {
                        None => return SolveResult::Sat,
                        Some(l) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(l, REASON_NONE);
                        }
                    }
                }
            }
        }
    }

    /// Value of `v` in the most recent satisfying model.
    ///
    /// # Panics
    ///
    /// Panics if the last [`solve`](Self::solve) did not return `Sat` (the
    /// variable would be unassigned).
    pub fn model_value(&self, v: Var) -> bool {
        match self.assign[v.index()] {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => panic!("model_value called without a model"),
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(mut i: u64) -> u64 {
    loop {
        // find k with 2^(k-1) <= i < 2^k
        let k = 64 - i.leading_zeros() as u64;
        if i == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        i -= (1 << (k - 1)) - 1;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the CNF math
mod tests {
    use super::*;

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive()]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(a));
        assert!(!s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn three_coloring_of_a_triangle_is_sat() {
        // Vars x[v][c] for v in 0..3, c in 0..3.
        let mut s = Solver::new();
        let x: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..3).map(|_| s.new_var()).collect())
            .collect();
        for v in 0..3 {
            let clause: Vec<Lit> = (0..3).map(|c| x[v][c].positive()).collect();
            s.add_clause(&clause);
            for c1 in 0..3 {
                for c2 in c1 + 1..3 {
                    s.add_clause(&[x[v][c1].negative(), x[v][c2].negative()]);
                }
            }
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            for c in 0..3 {
                s.add_clause(&[x[u][c].negative(), x[v][c].negative()]);
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for i in 0..3 {
            s.add_clause(&[p[i][0].positive(), p[i][1].positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_incremental() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[b.negative(), c.positive()]);
        // a=1 forces c=1.
        assert_eq!(s.solve(&[a.positive(), c.negative()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[a.positive()]), SolveResult::Sat);
        assert!(s.model_value(c));
        // The instance is still usable with other assumptions.
        assert_eq!(s.solve(&[c.negative()]), SolveResult::Sat);
        assert!(!s.model_value(a));
    }

    #[test]
    fn model_satisfies_all_clauses_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Random 3-SAT near the easy region; verify models, and verify
        // UNSAT answers by brute force.
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 8;
            let m = rng.random_range(10..40);
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = vars[rng.random_range(0..n)];
                    cl.push(v.lit(rng.random()));
                }
                clauses.push(cl.clone());
                s.add_clause(&cl);
            }
            let res = s.solve(&[]);
            // Brute force ground truth.
            let mut any = false;
            'outer: for bits in 0..(1u32 << n) {
                for cl in &clauses {
                    let sat = cl.iter().any(|l| {
                        let val = bits >> l.var().index() & 1 == 1;
                        val == l.is_positive()
                    });
                    if !sat {
                        continue 'outer;
                    }
                }
                any = true;
                break;
            }
            assert_eq!(res == SolveResult::Sat, any, "seed {seed}");
            if res == SolveResult::Sat {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|l| s.model_value(l.var()) == l.is_positive()),
                        "model violates a clause (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.positive(), b.positive()]));
        assert!(s.add_clause(&[a.positive(), a.negative()])); // tautology
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }
}
