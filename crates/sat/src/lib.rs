//! A self-contained CDCL SAT solver and circuit-to-CNF encoder.
//!
//! This crate implements the **conventional SAT-based baseline** the paper
//! compares against (Nakamura et al. \[9\]): the multi-cycle condition for
//! an FF pair is checked by deciding satisfiability of
//!
//! ```text
//! FFi(t) != FFi(t+1)  ∧  FFj(t+1) != FFj(t+2)
//! ```
//!
//! over the Tseitin encoding of the 2-frame time-frame expansion — `UNSAT`
//! means every path between the pair is multi-cycle.
//!
//! Contents:
//!
//! * [`solver`] — a modern clause-learning solver: two-watched-literal
//!   propagation, first-UIP conflict analysis with clause learning and
//!   backjumping, VSIDS-style activity decisions, phase saving, Luby
//!   restarts and incremental solving under assumptions.
//! * [`encode`] — Tseitin encoding of an
//!   [`Expanded`](mcp_netlist::Expanded) model, one variable per node,
//!   plus cached XOR "difference" literals for the transition constraints,
//!   so one solver instance answers every pair query incrementally.
//!
//! # Example
//!
//! ```
//! use mcp_sat::solver::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.positive(), b.positive()]);
//! s.add_clause(&[a.negative(), b.negative()]);
//! match s.solve(&[]) {
//!     SolveResult::Sat => {
//!         // exactly one of a, b is true
//!         assert_ne!(s.model_value(a), s.model_value(b));
//!     }
//!     SolveResult::Unsat => unreachable!(),
//! }
//! // The same instance can be re-solved under assumptions:
//! assert_eq!(s.solve(&[a.positive(), b.positive()]), SolveResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod solver;

pub use encode::CircuitCnf;
pub use solver::{Lit, SolveResult, Solver, Var};
