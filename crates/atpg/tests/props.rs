//! Property-based completeness/soundness of the backtrack search against
//! brute-force enumeration.

use mcp_atpg::{search, SearchConfig, SearchOutcome};
use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_implication::ImpEngine;
use mcp_logic::V3;
use mcp_netlist::{Expanded, XId};
use proptest::prelude::*;

fn small_cfg() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..50_000, 1usize..4, 0usize..3, 2usize..25).prop_map(|(seed, ffs, pis, gates)| {
        (
            seed,
            RandomCircuitConfig {
                ffs,
                pis,
                gates,
                max_arity: 3,
            },
        )
    })
}

fn brute_force_sat(x: &Expanded, constraints: &[(XId, bool)]) -> bool {
    let vars = x.vars();
    for bits in 0..(1u32 << vars.len()) {
        let assign: Vec<(XId, V3)> = vars
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, V3::from(bits >> k & 1 == 1)))
            .collect();
        let vals = x.eval_v3(&assign);
        if constraints
            .iter()
            .all(|&(n, b)| vals[n.index()] == V3::from(b))
        {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn search_matches_brute_force(
        (seed, cfg) in small_cfg(),
        frames in 1u32..3,
        pick in any::<u64>(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, frames);
        prop_assume!(x.vars().len() <= 14);

        let n = x.num_nodes() as u64;
        let constraints: Vec<(XId, bool)> = (0..3)
            .map(|k| {
                let h = pick.wrapping_mul(0xD1B54A32D192ED03).rotate_left(11 * (k + 1));
                let id = x.nodes().nth((h % n) as usize).expect("in range").0;
                (id, h >> 63 == 1)
            })
            .collect();

        let mut eng = ImpEngine::new(&x);
        let asserted = constraints
            .iter()
            .try_for_each(|&(id, v)| eng.assign(id, v))
            .and_then(|()| eng.propagate())
            .is_ok();

        let expect = brute_force_sat(&x, &constraints);
        if !asserted {
            // Implication conflicts are only allowed on unsatisfiable
            // constraint sets.
            prop_assert!(!expect, "conflict on satisfiable constraints");
            return Ok(());
        }

        let (outcome, _) = search(&mut eng, &SearchConfig { backtrack_limit: 1_000_000 });
        match outcome {
            SearchOutcome::Sat(witness) => {
                prop_assert!(expect, "search found a witness where none exists");
                // Verify the witness end-to-end.
                let assign: Vec<(XId, V3)> =
                    witness.iter().map(|&(v, b)| (v, V3::from(b))).collect();
                let vals = x.eval_v3(&assign);
                for &(n, b) in &constraints {
                    prop_assert_eq!(vals[n.index()], V3::from(b), "witness violates {}", n);
                }
            }
            SearchOutcome::Unsat => prop_assert!(!expect, "search missed a witness"),
            SearchOutcome::Aborted => {
                prop_assert!(false, "unbounded search must not abort");
            }
        }
    }

    #[test]
    fn search_is_idempotent_on_the_engine(
        (seed, cfg) in small_cfg(),
    ) {
        // Running the search twice from the same state gives the same
        // verdict and leaves the trail unchanged.
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, 1);
        let mut eng = ImpEngine::new(&x);
        let goal = x.ff_at(0, 1);
        prop_assume!(eng.assign(goal, true).and_then(|()| eng.propagate()).is_ok());
        let trail = eng.trail_len();
        let (a, _) = search(&mut eng, &SearchConfig::default());
        prop_assert_eq!(eng.trail_len(), trail);
        let (b, _) = search(&mut eng, &SearchConfig::default());
        prop_assert_eq!(eng.trail_len(), trail);
        prop_assert_eq!(a.is_sat(), b.is_sat());
    }
}
