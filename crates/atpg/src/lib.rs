//! Bounded D-algorithm-style backtrack search.
//!
//! The paper uses ATPG as the *completeness* layer behind the implication
//! procedure: when direct implications neither prove the multi-cycle
//! condition nor exhibit a violation, a backtrack search either finds an
//! input/state pattern satisfying the asserted constraints (the pair is
//! single-cycle) or proves none exists (the condition holds for this
//! scenario).
//!
//! The search is D-algorithm-flavoured rather than PODEM-flavoured, for the
//! reason the paper gives: the targets are *likely redundant* (most
//! surviving pairs really are multi-cycle), and a search that assigns
//! values to **internal nodes** detects the resulting contradictions much
//! faster than one that only enumerates primary-input assignments.
//! Concretely, decisions are made on the **J-frontier** — gates whose
//! assigned (controlled) output value no input justifies yet — choosing an
//! unassigned input and trying its controlling value first.
//!
//! When the J-frontier is empty at an implication fixpoint without
//! conflict, every completion of the remaining free variables satisfies the
//! constraints (each assigned gate is justified independently of the
//! unassigned inputs), so the search stops with a witness.
//!
//! # Example
//!
//! ```
//! use mcp_atpg::{search, SearchConfig, SearchOutcome};
//! use mcp_implication::ImpEngine;
//! use mcp_netlist::{bench, Expanded};
//!
//! // y = AND(a, NOT(a)) is constant 0: y=1 has no witness.
//! let nl = bench::parse("t", "INPUT(a)\nq = DFF(y)\nna = NOT(a)\ny = AND(a, na)")?;
//! let x = Expanded::build(&nl, 1);
//! let y = x.value_of(0, nl.find_node("y").unwrap());
//!
//! let mut eng = ImpEngine::new(&x);
//! let outcome = match eng.assign(y, true).and_then(|()| eng.propagate()) {
//!     Ok(()) => search(&mut eng, &SearchConfig::default()).0,
//!     Err(_) => SearchOutcome::Unsat, // implication alone refuted it
//! };
//! assert!(matches!(outcome, SearchOutcome::Unsat));
//! # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mcp_implication::{Checkpoint, ImpEngine};
use mcp_logic::{GateKind, V3};
use mcp_netlist::{XId, XKind};

/// Configuration of the backtrack search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Abort after this many backtracks (the paper uses 50 for most
    /// circuits and raises it for the hard ones).
    pub backtrack_limit: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            backtrack_limit: 50,
        }
    }
}

/// Result of a [`search`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A satisfying assignment of the model's free variables exists; the
    /// witness lists **every** free variable (unconstrained ones default to
    /// 0).
    Sat(Vec<(XId, bool)>),
    /// No assignment satisfies the asserted constraints.
    Unsat,
    /// The backtrack limit was hit; satisfiability is unknown.
    Aborted,
}

impl SearchOutcome {
    /// Whether the outcome is [`SearchOutcome::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SearchOutcome::Sat(_))
    }
}

/// Search statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of backtracks performed.
    pub backtracks: u64,
}

#[derive(Debug)]
struct Decision {
    cp: Checkpoint,
    node: XId,
    value: bool,
    flipped: bool,
}

/// Runs the bounded backtrack search on an engine whose constraints are
/// already asserted and propagated without conflict.
///
/// On [`SearchOutcome::Sat`] and [`SearchOutcome::Unsat`] the engine is
/// restored to the state it was passed in (all decisions undone); on
/// [`SearchOutcome::Aborted`] it is likewise restored.
///
/// # Panics
///
/// Panics (in debug builds) if called with pending unpropagated work.
pub fn search(eng: &mut ImpEngine<'_>, cfg: &SearchConfig) -> (SearchOutcome, SearchStats) {
    let mut stats = SearchStats::default();
    let mut stack: Vec<Decision> = Vec::new();
    let base = eng.checkpoint();

    loop {
        match eng.find_unjustified() {
            None => {
                // Fully justified: any completion works. Extract a witness
                // with unassigned variables defaulted to 0, then restore.
                let witness: Vec<(XId, bool)> = eng
                    .var_assignment()
                    .into_iter()
                    .map(|(v, val)| (v, val.to_bool().unwrap_or(false)))
                    .collect();
                eng.backtrack(base);
                return (SearchOutcome::Sat(witness), stats);
            }
            Some(g) => {
                let (pin, value) = pick_objective(eng, g);
                stats.decisions += 1;
                let cp = eng.checkpoint();
                let ok = eng
                    .assign(pin, value)
                    .and_then(|()| eng.propagate())
                    .is_ok();
                if ok {
                    stack.push(Decision {
                        cp,
                        node: pin,
                        value,
                        flipped: false,
                    });
                    continue;
                }
                // Conflict: backtrack.
                eng.backtrack(cp);
                stats.backtracks += 1;
                if stats.backtracks > cfg.backtrack_limit {
                    eng.backtrack(base);
                    return (SearchOutcome::Aborted, stats);
                }
                // Try the opposite phase here, or pop flipped decisions.
                let mut pending = Some(Decision {
                    cp,
                    node: pin,
                    value,
                    flipped: false,
                });
                loop {
                    let d = match pending.take() {
                        Some(d) => d,
                        None => match stack.pop() {
                            Some(d) => d,
                            None => {
                                eng.backtrack(base);
                                return (SearchOutcome::Unsat, stats);
                            }
                        },
                    };
                    if d.flipped {
                        // Both phases failed below this point; keep popping.
                        eng.backtrack(d.cp);
                        stats.backtracks += 1;
                        if stats.backtracks > cfg.backtrack_limit {
                            eng.backtrack(base);
                            return (SearchOutcome::Aborted, stats);
                        }
                        continue;
                    }
                    eng.backtrack(d.cp);
                    let ok = eng
                        .assign(d.node, !d.value)
                        .and_then(|()| eng.propagate())
                        .is_ok();
                    if ok {
                        stack.push(Decision {
                            cp: d.cp,
                            node: d.node,
                            value: !d.value,
                            flipped: true,
                        });
                        break;
                    }
                    stats.backtracks += 1;
                    if stats.backtracks > cfg.backtrack_limit {
                        eng.backtrack(base);
                        return (SearchOutcome::Aborted, stats);
                    }
                    // Both phases of d failed; continue popping.
                }
            }
        }
    }
}

/// Chooses the next decision at unjustified gate `g`: an unassigned input
/// pin and the phase to try first.
///
/// For AND/OR-family gates the controlling value justifies the gate
/// immediately, so it is tried first, on the unassigned input with the
/// lowest structural level (cheapest to justify transitively). For parity
/// gates any input works; 0 is tried first.
fn pick_objective(eng: &ImpEngine<'_>, g: XId) -> (XId, bool) {
    let x = eng.expanded();
    let node = x.node(g);
    let kind = match node.kind() {
        XKind::Gate(k) => k,
        _ => unreachable!("J-frontier contains gates only"),
    };
    let mut best: Option<XId> = None;
    for &f in node.fanins() {
        if eng.value(f) == V3::X {
            let better = match best {
                None => true,
                Some(b) => x.level(f) < x.level(b),
            };
            if better {
                best = Some(f);
            }
        }
    }
    let pin = best.expect("unjustified gate has an unassigned input");
    let value = match kind {
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            kind.controlling_value().expect("and/or family")
        }
        _ => false,
    };
    (pin, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::V3;
    use mcp_netlist::{bench, Expanded, Netlist};

    fn setup(src: &str) -> (Netlist, Expanded) {
        let nl = bench::parse("t", src).expect("parse");
        let x = Expanded::build(&nl, 1);
        (nl, x)
    }

    /// Asserts constraints, searches, and checks any witness by evaluation.
    fn run(
        nl: &Netlist,
        x: &Expanded,
        constraints: &[(&str, bool)],
        cfg: &SearchConfig,
    ) -> SearchOutcome {
        let mut eng = ImpEngine::new(x);
        for &(name, v) in constraints {
            let id = x.value_of(0, nl.find_node(name).expect("node"));
            if eng.assign(id, v).is_err() {
                return SearchOutcome::Unsat;
            }
        }
        if eng.propagate().is_err() {
            return SearchOutcome::Unsat;
        }
        let (outcome, _) = search(&mut eng, cfg);
        if let SearchOutcome::Sat(witness) = &outcome {
            // Verify the witness end-to-end.
            let assign: Vec<(XId, V3)> = witness.iter().map(|&(v, b)| (v, V3::from(b))).collect();
            let vals = x.eval_v3(&assign);
            for &(name, v) in constraints {
                let id = x.value_of(0, nl.find_node(name).expect("node"));
                assert_eq!(vals[id.index()], V3::from(v), "witness violates {name}");
            }
        }
        outcome
    }

    #[test]
    fn finds_witness_for_satisfiable_objective() {
        let (nl, x) =
            setup("INPUT(a)\nINPUT(b)\nINPUT(c)\nq = DFF(z)\ny = AND(a, b)\nz = OR(y, c)");
        let out = run(
            &nl,
            &x,
            &[("z", true), ("c", false)],
            &SearchConfig::default(),
        );
        assert!(out.is_sat());
    }

    #[test]
    fn proves_redundant_objective_unsat() {
        // z = AND(y, ny) with ny = NOT(y): z=1 impossible, and the conflict
        // needs one decision level to expose (y's value is free).
        let (nl, x) =
            setup("INPUT(a)\nINPUT(b)\nq = DFF(z)\ny = AND(a, b)\nny = NAND(a, b)\nz = AND(y, ny)");
        let out = run(&nl, &x, &[("z", true)], &SearchConfig::default());
        assert_eq!(out, SearchOutcome::Unsat);
    }

    #[test]
    fn respects_backtrack_limit() {
        // An 8-input parity tree constrained two inconsistent ways... use a
        // pigeonhole-ish AND/OR structure that needs several backtracks:
        // force z=1 where z = AND of two XOR trees sharing inputs such that
        // z is unsatisfiable.
        let (nl, x) = setup(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nq = DFF(z)\n\
             x1 = XOR(a, b)\nx2 = XOR(b, c)\nx3 = XOR(a, c)\n\
             p = AND(x1, x2)\nz = AND(p, x3)",
        );
        // x1 ^ x2 ^ x3 over pairs: x1&x2&x3 = 1 requires a!=b, b!=c, a!=c —
        // impossible for Booleans.
        let out = run(
            &nl,
            &x,
            &[("z", true)],
            &SearchConfig {
                backtrack_limit: 1000,
            },
        );
        assert_eq!(out, SearchOutcome::Unsat);
        let out = run(
            &nl,
            &x,
            &[("z", true)],
            &SearchConfig { backtrack_limit: 0 },
        );
        assert!(matches!(out, SearchOutcome::Aborted | SearchOutcome::Unsat));
    }

    #[test]
    fn engine_is_restored_after_search() {
        let (nl, x) = setup("INPUT(a)\nINPUT(b)\nq = DFF(y)\ny = AND(a, b)");
        let y = x.value_of(0, nl.find_node("y").unwrap());
        let mut eng = ImpEngine::new(&x);
        eng.assign(y, false).unwrap();
        eng.propagate().unwrap();
        let trail = eng.trail_len();
        let (out, _) = search(&mut eng, &SearchConfig::default());
        assert!(out.is_sat());
        assert_eq!(eng.trail_len(), trail, "decisions must be undone");
        assert_eq!(eng.value(y), V3::Zero, "constraints must survive");
    }

    #[test]
    fn trivially_satisfied_engine_returns_sat_immediately() {
        let (_, x) = setup("INPUT(a)\nq = DFF(y)\ny = BUFF(a)");
        let mut eng = ImpEngine::new(&x);
        let (out, stats) = search(&mut eng, &SearchConfig::default());
        assert!(out.is_sat());
        assert_eq!(stats.decisions, 0);
    }

    #[test]
    fn xor_objectives_are_searchable() {
        let (nl, x) = setup(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nq = DFF(z)\n\
             x1 = XOR(a, b)\nx2 = XOR(c, d)\nz = XNOR(x1, x2)",
        );
        for v in [false, true] {
            let out = run(&nl, &x, &[("z", v)], &SearchConfig::default());
            assert!(out.is_sat(), "z={v} should be satisfiable");
        }
    }

    #[test]
    fn exhaustive_cross_check_against_enumeration() {
        // For a handful of small circuits and objectives, compare the
        // search verdict against brute-force enumeration of all variable
        // assignments.
        let sources = [
            "INPUT(a)\nINPUT(b)\nq = DFF(z)\nn = NOT(a)\ng = AND(a, b)\nh = OR(n, b)\nz = AND(g, h)",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nq = DFF(z)\ng = NAND(a, b)\nh = NOR(b, c)\nz = XOR(g, h)",
            "INPUT(a)\nINPUT(b)\nq = DFF(z)\nn = NOT(b)\ng = XNOR(a, b)\nh = AND(a, n)\nz = OR(g, h)",
        ];
        for src in sources {
            let (nl, x) = setup(src);
            let z = x.value_of(0, nl.find_node("z").unwrap());
            for v in [false, true] {
                // Brute force over free variables.
                let vars = x.vars();
                let mut any = false;
                for bits in 0..(1u32 << vars.len()) {
                    let assign: Vec<(XId, V3)> = vars
                        .iter()
                        .enumerate()
                        .map(|(k, &id)| (id, V3::from(bits >> k & 1 == 1)))
                        .collect();
                    if x.eval_v3(&assign)[z.index()] == V3::from(v) {
                        any = true;
                        break;
                    }
                }
                let mut eng = ImpEngine::new(&x);
                let verdict = match eng.assign(z, v).and_then(|()| eng.propagate()) {
                    Ok(()) => search(&mut eng, &SearchConfig::default()).0,
                    Err(_) => SearchOutcome::Unsat,
                };
                assert_eq!(verdict.is_sat(), any, "src={src} z={v}");
            }
        }
    }
}
