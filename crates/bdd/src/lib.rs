//! Binary decision diagrams and symbolic FSM analysis.
//!
//! This crate implements the **symbolic-traversal baseline** the paper
//! cites as \[8\] (Nakamura et al., ICCAD'98): multi-cycle FF-pair
//! detection by BDD-based state-space traversal. Unlike the implication
//! and SAT engines, the symbolic analyzer can restrict the check to the
//! **reachable** states of the machine, which is why it may detect *more*
//! multi-cycle pairs — and also why it does not scale to the large
//! circuits, a behaviour reproduced here with an explicit node budget.
//!
//! * [`Bdd`] — a reduced ordered BDD manager: hash-consed nodes, memoized
//!   `ite`, quantification, variable renaming, model counting. No
//!   complement edges (simplicity over constant factors), explicit
//!   [`node limit`](Bdd::new) surfaced as [`OverflowError`].
//! * [`SymbolicFsm`] — next-state functions and the monolithic transition
//!   relation of a [`Netlist`](mcp_netlist::Netlist), reachability
//!   fixpoint, and the 2-frame multi-cycle pair check.
//!
//! # Example
//!
//! ```
//! use mcp_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(4, 1 << 20);
//! let a = bdd.var(0)?;
//! let b = bdd.var(1)?;
//! let f = bdd.and(a, b)?;
//! let g = bdd.not(f)?;
//! // de Morgan
//! let na = bdd.not(a)?;
//! let nb = bdd.not(b)?;
//! let h = bdd.or(na, nb)?;
//! assert_eq!(g, h);
//! # Ok::<(), mcp_bdd::OverflowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod symbolic;

pub use manager::{Bdd, OverflowError, Ref};
pub use symbolic::{InitStates, SymbolicFsm};
