//! The BDD manager: hash-consed nodes and memoized operations.

use std::collections::HashMap;
use std::fmt;

/// A reference to a BDD node within its [`Bdd`] manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant FALSE function.
    pub const FALSE: Ref = Ref(0);
    /// The constant TRUE function.
    pub const TRUE: Ref = Ref(1);

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the two terminal nodes.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "⊥"),
            Ref::TRUE => write!(f, "⊤"),
            other => write!(f, "b{}", other.0),
        }
    }
}

/// Error returned when an operation would exceed the manager's node limit.
///
/// The paper's point about the symbolic baseline is precisely that it blows
/// up on large circuits; this error is how the analyzer reports "did not
/// complete" instead of consuming the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowError {
    /// The configured node limit that was hit.
    pub node_limit: usize,
}

impl fmt::Display for OverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BDD node limit of {} exceeded", self.node_limit)
    }
}

impl std::error::Error for OverflowError {}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// A reduced ordered BDD manager with a fixed variable order `0 < 1 < …`.
///
/// All operations are memoized; all functions live in one shared DAG, so
/// equality of [`Ref`]s is semantic equality of functions (canonicity).
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    exists_cache: HashMap<(Ref, Ref), Ref>,
    rename_cache: HashMap<Ref, Ref>,
    num_vars: u32,
    node_limit: usize,
    /// Memo-cache probes on the non-terminal paths of `ite`/`exists`
    /// (instrumentation).
    cache_lookups: u64,
    /// Probes answered from a memo cache (instrumentation).
    cache_hits: u64,
}

impl Bdd {
    /// Creates a manager for `num_vars` variables with the given node
    /// budget.
    pub fn new(num_vars: u32, node_limit: usize) -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: Ref::FALSE,
                hi: Ref::FALSE,
            },
            Node {
                var: TERMINAL_VAR,
                lo: Ref::TRUE,
                hi: Ref::TRUE,
            },
        ];
        Bdd {
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            exists_cache: HashMap::new(),
            rename_cache: HashMap::new(),
            num_vars,
            node_limit,
            cache_lookups: 0,
            cache_hits: 0,
        }
    }

    /// Number of live nodes (including the two terminals).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of variables this manager was created with.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Memo-cache probes performed by `ite`/`exists` so far
    /// (instrumentation).
    #[inline]
    pub fn cache_lookups(&self) -> u64 {
        self.cache_lookups
    }

    /// Memo-cache probes answered without recursion so far
    /// (instrumentation).
    #[inline]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    #[inline]
    fn var_of(&self, f: Ref) -> u32 {
        self.nodes[f.index()].var
    }

    #[inline]
    fn lo(&self, f: Ref) -> Ref {
        self.nodes[f.index()].lo
    }

    #[inline]
    fn hi(&self, f: Ref) -> Ref {
        self.nodes[f.index()].hi
    }

    /// Hash-consing constructor.
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Result<Ref, OverflowError> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return Ok(r);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(OverflowError {
                node_limit: self.node_limit,
            });
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        Ok(r)
    }

    /// The projection function of variable `v`.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: u32) -> Result<Ref, OverflowError> {
        assert!(v < self.num_vars, "variable out of range");
        self.mk(v, Ref::FALSE, Ref::TRUE)
    }

    /// A constant function.
    #[inline]
    pub fn constant(&self, b: bool) -> Ref {
        if b {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + f̄·h` — the universal ternary
    /// connective all binary operations are built from.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, OverflowError> {
        // Terminal cases.
        if f == Ref::TRUE {
            return Ok(g);
        }
        if f == Ref::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return Ok(f);
        }
        self.cache_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.cache_hits += 1;
            return Ok(r);
        }
        let top = [f, g, h]
            .iter()
            .map(|&x| self.var_of(x))
            .min()
            .expect("non-empty");
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(top, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    #[inline]
    fn cofactors(&self, f: Ref, var: u32) -> (Ref, Ref) {
        if self.var_of(f) == var {
            (self.lo(f), self.hi(f))
        } else {
            (f, f)
        }
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn not(&mut self, f: Ref) -> Result<Ref, OverflowError> {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn and(&mut self, f: Ref, g: Ref) -> Result<Ref, OverflowError> {
        self.ite(f, g, Ref::FALSE)
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn or(&mut self, f: Ref, g: Ref) -> Result<Ref, OverflowError> {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Result<Ref, OverflowError> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Equivalence (`XNOR`).
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Result<Ref, OverflowError> {
        let ng = self.not(g)?;
        self.ite(f, g, ng)
    }

    /// Conjunction over an iterator (TRUE for an empty one).
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Result<Ref, OverflowError> {
        let mut acc = Ref::TRUE;
        for f in fs {
            acc = self.and(acc, f)?;
        }
        Ok(acc)
    }

    /// A positive cube (conjunction) over the given variables, used as the
    /// quantification set of [`exists`](Self::exists).
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn cube<I: IntoIterator<Item = u32>>(&mut self, vars: I) -> Result<Ref, OverflowError> {
        let mut sorted: Vec<u32> = vars.into_iter().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a)); // build bottom-up
        let mut acc = Ref::TRUE;
        for v in sorted {
            acc = self.mk(v, Ref::FALSE, acc)?;
        }
        Ok(acc)
    }

    /// Existential quantification of every variable in `cube` from `f`.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn exists(&mut self, f: Ref, cube: Ref) -> Result<Ref, OverflowError> {
        if f.is_terminal() || cube == Ref::TRUE {
            return Ok(f);
        }
        self.cache_lookups += 1;
        if let Some(&r) = self.exists_cache.get(&(f, cube)) {
            self.cache_hits += 1;
            return Ok(r);
        }
        // Skip cube variables above f's top variable: f does not depend on
        // them.
        let mut c = cube;
        while !c.is_terminal() && self.var_of(c) < self.var_of(f) {
            c = self.hi(c);
        }
        if c == Ref::TRUE {
            return Ok(f);
        }
        let fv = self.var_of(f);
        let r = if self.var_of(c) == fv {
            let lo = self.exists(self.lo(f), self.hi(c))?;
            let hi = self.exists(self.hi(f), self.hi(c))?;
            self.or(lo, hi)?
        } else {
            let lo = self.exists(self.lo(f), c)?;
            let hi = self.exists(self.hi(f), c)?;
            self.mk(fv, lo, hi)?
        };
        self.exists_cache.insert((f, cube), r);
        Ok(r)
    }

    /// Renames variables by an order-preserving map: every variable `v`
    /// becomes `map(v)`. The map **must** be strictly monotone on the
    /// support of `f` (this is guaranteed by the interleaved current/next
    /// orders the symbolic analyzer uses); monotonicity is what lets the
    /// rename be a single linear rebuild.
    ///
    /// The rename cache is scoped to one call (different maps must not
    /// share memo entries).
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the node budget is exhausted.
    pub fn rename<F: Fn(u32) -> u32 + Copy>(
        &mut self,
        f: Ref,
        map: F,
    ) -> Result<Ref, OverflowError> {
        self.rename_cache.clear();
        self.rename_rec(f, map)
    }

    fn rename_rec<F: Fn(u32) -> u32 + Copy>(
        &mut self,
        f: Ref,
        map: F,
    ) -> Result<Ref, OverflowError> {
        if f.is_terminal() {
            return Ok(f);
        }
        if let Some(&r) = self.rename_cache.get(&f) {
            return Ok(r);
        }
        let lo = self.rename_rec(self.lo(f), map)?;
        let hi = self.rename_rec(self.hi(f), map)?;
        let r = self.mk(map(self.var_of(f)), lo, hi)?;
        self.rename_cache.insert(f, r);
        Ok(r)
    }

    /// Evaluates `f` under a total assignment (indexed by variable).
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.var_of(cur) as usize;
            cur = if assignment[v] {
                self.hi(cur)
            } else {
                self.lo(cur)
            };
        }
        cur == Ref::TRUE
    }

    /// Number of satisfying assignments of `f` over all `num_vars`
    /// variables (as `f64`; exact for counts below 2^53).
    pub fn sat_count(&self, f: Ref) -> f64 {
        fn rec(bdd: &Bdd, f: Ref, memo: &mut HashMap<Ref, f64>) -> f64 {
            if f == Ref::FALSE {
                return 0.0;
            }
            if f == Ref::TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let vf = bdd.var_of(f);
            let scale = |child: Ref| {
                let vc = if child.is_terminal() {
                    bdd.num_vars
                } else {
                    bdd.var_of(child)
                };
                f64::powi(2.0, (vc - vf - 1) as i32)
            };
            let c = scale(bdd.lo(f)) * rec(bdd, bdd.lo(f), memo)
                + scale(bdd.hi(f)) * rec(bdd, bdd.hi(f), memo);
            memo.insert(f, c);
            c
        }
        let mut memo = HashMap::new();
        let top_scale = if f.is_terminal() {
            f64::powi(2.0, self.num_vars as i32)
        } else {
            f64::powi(2.0, self.var_of(f) as i32)
        };
        top_scale * rec(self, f, &mut memo)
    }

    /// One satisfying assignment of `f`, or `None` when `f` is FALSE.
    /// Unconstrained variables default to `false`.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<bool>> {
        if f == Ref::FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.var_of(cur) as usize;
            if self.lo(cur) != Ref::FALSE {
                cur = self.lo(cur);
            } else {
                assignment[v] = true;
                cur = self.hi(cur);
            }
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> Bdd {
        Bdd::new(8, 1 << 20)
    }

    #[test]
    fn canonical_constants_and_vars() {
        let mut b = mgr();
        assert_eq!(b.constant(true), Ref::TRUE);
        let x = b.var(0).unwrap();
        let x2 = b.var(0).unwrap();
        assert_eq!(x, x2, "hash consing");
    }

    #[test]
    fn boolean_algebra_identities() {
        let mut b = mgr();
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let nx = b.not(x).unwrap();

        let xy = b.and(x, y).unwrap();
        let yx = b.and(y, x).unwrap();
        assert_eq!(xy, yx, "commutativity");

        let t = b.or(x, nx).unwrap();
        assert_eq!(t, Ref::TRUE, "excluded middle");
        let f = b.and(x, nx).unwrap();
        assert_eq!(f, Ref::FALSE, "contradiction");

        // de Morgan
        let a = b.not(xy).unwrap();
        let ny = b.not(y).unwrap();
        let c = b.or(nx, ny).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn semantics_match_truth_tables_exhaustively() {
        let mut b = mgr();
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let z = b.var(2).unwrap();
        let xy = b.and(x, y).unwrap();
        let f = b.xor(xy, z).unwrap(); // (x & y) ^ z
        for bits in 0..8u32 {
            let assignment: Vec<bool> = (0..8).map(|k| bits >> k & 1 == 1).collect();
            let expect = (assignment[0] && assignment[1]) ^ assignment[2];
            assert_eq!(b.eval(f, &assignment), expect, "bits {bits:03b}");
        }
    }

    #[test]
    fn exists_quantifies() {
        let mut b = mgr();
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let f = b.and(x, y).unwrap();
        let cx = b.cube([0u32]).unwrap();
        let g = b.exists(f, cx).unwrap();
        assert_eq!(g, y, "∃x. x∧y = y");
        let cxy = b.cube([0u32, 1]).unwrap();
        let h = b.exists(f, cxy).unwrap();
        assert_eq!(h, Ref::TRUE);
        let ff = b.and(x, y).unwrap();
        let nf = b.not(ff).unwrap();
        let k = b.exists(nf, cxy).unwrap();
        assert_eq!(k, Ref::TRUE);
    }

    #[test]
    fn exists_on_false_is_false() {
        let mut b = mgr();
        let c = b.cube([0u32, 1, 2]).unwrap();
        assert_eq!(b.exists(Ref::FALSE, c).unwrap(), Ref::FALSE);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut b = mgr();
        let x1 = b.var(1).unwrap();
        let x3 = b.var(3).unwrap();
        let f = b.and(x1, x3).unwrap();
        // monotone map 1->0, 3->2
        let g = b.rename(f, |v| v - 1).unwrap();
        let x0 = b.var(0).unwrap();
        let x2 = b.var(2).unwrap();
        let expect = b.and(x0, x2).unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn sat_count_is_exact() {
        let mut b = Bdd::new(3, 1 << 20);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let f = b.or(x, y).unwrap(); // 6 of 8 assignments
        assert_eq!(b.sat_count(f), 6.0);
        assert_eq!(b.sat_count(Ref::TRUE), 8.0);
        assert_eq!(b.sat_count(Ref::FALSE), 0.0);
    }

    #[test]
    fn any_sat_produces_a_model() {
        let mut b = mgr();
        let x = b.var(0).unwrap();
        let ny = {
            let y = b.var(1).unwrap();
            b.not(y).unwrap()
        };
        let f = b.and(x, ny).unwrap();
        let m = b.any_sat(f).expect("satisfiable");
        assert!(b.eval(f, &m));
        assert!(m[0] && !m[1]);
        assert_eq!(b.any_sat(Ref::FALSE), None);
    }

    #[test]
    fn node_limit_is_enforced() {
        let mut b = Bdd::new(8, 8); // absurdly small budget
        let mut acc = b.constant(true);
        let mut failed = false;
        for v in 0..8 {
            match b.var(v).and_then(|x| b.xor(acc, x)) {
                Ok(r) => acc = r,
                Err(OverflowError { node_limit }) => {
                    assert_eq!(node_limit, 8);
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "a parity chain must overflow 8 nodes");
    }

    #[test]
    fn ite_is_shannon_expansion() {
        let mut b = mgr();
        let f = b.var(0).unwrap();
        let g = b.var(1).unwrap();
        let h = b.var(2).unwrap();
        let r = b.ite(f, g, h).unwrap();
        for bits in 0..8u32 {
            let assignment: Vec<bool> = (0..8).map(|k| bits >> k & 1 == 1).collect();
            let expect = if assignment[0] {
                assignment[1]
            } else {
                assignment[2]
            };
            assert_eq!(b.eval(r, &assignment), expect);
        }
    }
}
