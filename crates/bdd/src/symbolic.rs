//! Symbolic FSM analysis: reachability and the multi-cycle pair check.

use crate::manager::{Bdd, OverflowError, Ref};
use mcp_netlist::{Netlist, NodeKind};

/// Initial-state set for the reachability fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStates {
    /// Every state is initial — reachability degenerates to TRUE, making
    /// the symbolic check answer exactly the same question as the
    /// implication/SAT engines (useful for cross-validation).
    #[default]
    All,
    /// The all-zero state (the ISCAS89 convention for a global reset).
    Zero,
}

/// A symbolic model of a sequential netlist.
///
/// Variable order (interleaved, the standard choice for transition
/// relations): `s_0 < s'_0 < s_1 < s'_1 < … < x0_0 < … < x1_0 < …`, where
/// `s`/`s'` are current/next state, `x0` the first-cycle inputs and `x1`
/// the second-cycle inputs.
///
/// # Example
///
/// ```
/// use mcp_bdd::{InitStates, SymbolicFsm};
/// use mcp_netlist::bench;
///
/// // A toggle flip-flop reaches both of its states from 0.
/// let nl = bench::parse("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)")?;
/// let mut fsm = SymbolicFsm::build(&nl, 1 << 20).expect("fits budget");
/// let reached = fsm.reachable(InitStates::Zero).expect("fits budget");
/// assert_eq!(fsm.bdd().sat_count(reached), fsm.count_scale() * 2.0);
/// # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
/// ```
#[derive(Debug)]
pub struct SymbolicFsm {
    bdd: Bdd,
    n_ffs: usize,
    n_pis: usize,
    /// `f_k(s, x0)` — next-state function of FF `k` over current-state and
    /// first-cycle input variables.
    next_fn: Vec<Ref>,
    /// `g_k(s', x1)` — the same function over next-state and second-cycle
    /// input variables (for the second frame of the pair check).
    next_fn_primed: Vec<Ref>,
    /// Monolithic transition relation `∧_k (s'_k ↔ f_k)`, built lazily.
    trans: Option<Ref>,
}

impl SymbolicFsm {
    /// Variable index of current-state bit `k`.
    #[inline]
    fn s(&self, k: usize) -> u32 {
        2 * k as u32
    }

    /// Variable index of next-state bit `k`.
    #[inline]
    fn sp(&self, k: usize) -> u32 {
        2 * k as u32 + 1
    }

    /// Variable index of first-cycle input `i`.
    #[inline]
    fn x0(&self, i: usize) -> u32 {
        2 * self.n_ffs as u32 + i as u32
    }

    /// Variable index of second-cycle input `i`.
    #[inline]
    fn x1(&self, i: usize) -> u32 {
        2 * self.n_ffs as u32 + self.n_pis as u32 + i as u32
    }

    /// Builds the next-state functions of `netlist` under the given node
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] when the budget is exceeded — the
    /// "symbolic methods do not scale" outcome, which callers should
    /// report rather than treat as a bug.
    pub fn build(netlist: &Netlist, node_limit: usize) -> Result<Self, OverflowError> {
        let n_ffs = netlist.num_ffs();
        let n_pis = netlist.num_inputs();
        let num_vars = (2 * n_ffs + 2 * n_pis) as u32;
        let bdd = Bdd::new(num_vars, node_limit);
        let mut fsm = SymbolicFsm {
            bdd,
            n_ffs,
            n_pis,
            next_fn: Vec::new(),
            next_fn_primed: Vec::new(),
            trans: None,
        };
        fsm.next_fn = fsm.eval_netlist(netlist, false)?;
        fsm.next_fn_primed = fsm.eval_netlist(netlist, true)?;
        Ok(fsm)
    }

    /// Evaluates every FF's D-input cone over BDDs; `primed` selects the
    /// (s', x1) variable copy.
    fn eval_netlist(&mut self, netlist: &Netlist, primed: bool) -> Result<Vec<Ref>, OverflowError> {
        let mut val = vec![Ref::FALSE; netlist.num_nodes()];
        for (idx, &pi) in netlist.inputs().iter().enumerate() {
            let v = if primed { self.x1(idx) } else { self.x0(idx) };
            val[pi.index()] = self.bdd.var(v)?;
        }
        for (idx, &ff) in netlist.dffs().iter().enumerate() {
            let v = if primed { self.sp(idx) } else { self.s(idx) };
            val[ff.index()] = self.bdd.var(v)?;
        }
        for (id, node) in netlist.nodes() {
            if let NodeKind::Const(b) = node.kind() {
                val[id.index()] = self.bdd.constant(b);
            }
        }
        for &g in netlist.topo_gates() {
            let node = netlist.node(g);
            let kind = node.kind().gate_kind().expect("gate");
            let ins: Vec<Ref> = node.fanins().iter().map(|f| val[f.index()]).collect();
            let mut acc = ins[0];
            for &i in &ins[1..] {
                acc = match kind {
                    mcp_logic::GateKind::And | mcp_logic::GateKind::Nand => self.bdd.and(acc, i)?,
                    mcp_logic::GateKind::Or | mcp_logic::GateKind::Nor => self.bdd.or(acc, i)?,
                    mcp_logic::GateKind::Xor | mcp_logic::GateKind::Xnor => self.bdd.xor(acc, i)?,
                    mcp_logic::GateKind::Not | mcp_logic::GateKind::Buf => unreachable!(),
                };
            }
            if kind.output_inversion() {
                acc = self.bdd.not(acc)?;
            }
            val[g.index()] = acc;
        }
        Ok((0..netlist.num_ffs())
            .map(|k| val[netlist.ff_d_input(k).index()])
            .collect())
    }

    /// The underlying manager (for inspection).
    #[inline]
    pub fn bdd(&self) -> &Bdd {
        &self.bdd
    }

    /// Scale factor relating `sat_count` of a state predicate (over all
    /// manager variables) to the number of states it contains:
    /// `count = states * count_scale()`.
    pub fn count_scale(&self) -> f64 {
        // Free variables: s' copies, x0, x1.
        f64::powi(2.0, (self.n_ffs + 2 * self.n_pis) as i32)
    }

    /// The monolithic transition relation `T(s, x0, s') = ∧_k (s'_k ↔
    /// f_k(s, x0))`, cached after the first call.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] when the budget is exceeded.
    pub fn transition_relation(&mut self) -> Result<Ref, OverflowError> {
        if let Some(t) = self.trans {
            return Ok(t);
        }
        let mut t = Ref::TRUE;
        for k in 0..self.n_ffs {
            let spv = self.bdd.var(self.sp(k))?;
            let eq = self.bdd.iff(spv, self.next_fn[k])?;
            t = self.bdd.and(t, eq)?;
        }
        self.trans = Some(t);
        Ok(t)
    }

    /// Least fixpoint of the image operator from `init`: the reachable
    /// state set, as a predicate over the current-state variables.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] when the budget is exceeded.
    pub fn reachable(&mut self, init: InitStates) -> Result<Ref, OverflowError> {
        let mut reached = match init {
            InitStates::All => return Ok(Ref::TRUE),
            InitStates::Zero => {
                let mut r = Ref::TRUE;
                for k in 0..self.n_ffs {
                    let sv = self.bdd.var(self.s(k))?;
                    let nsv = self.bdd.not(sv)?;
                    r = self.bdd.and(r, nsv)?;
                }
                r
            }
        };
        let t = self.transition_relation()?;
        // Quantify current state and first-cycle inputs.
        let cube = {
            let vars: Vec<u32> = (0..self.n_ffs)
                .map(|k| self.s(k))
                .chain((0..self.n_pis).map(|i| self.x0(i)))
                .collect();
            self.bdd.cube(vars)?
        };
        loop {
            let conj = self.bdd.and(reached, t)?;
            let img_primed = self.bdd.exists(conj, cube)?;
            // Rename s' -> s (odd -> even: strictly monotone on support).
            let img = self.bdd.rename(img_primed, |v| v - 1)?;
            let next = self.bdd.or(reached, img)?;
            if next == reached {
                return Ok(reached);
            }
            reached = next;
        }
    }

    /// Decides whether `(i, j)` is a multi-cycle FF pair under the MC
    /// condition, restricted to `reached` (pass `Ref::TRUE` for the
    /// all-states assumption).
    ///
    /// The check is `UNSAT(R(s) ∧ T(s,x0,s') ∧ (s_i ⊕ s'_i) ∧ (s'_j ⊕
    /// g_j(s',x1)))`: a reachable state from which FF `i` transitions while
    /// FF `j` changes one cycle later.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] when the budget is exceeded.
    pub fn is_multicycle_pair(
        &mut self,
        i: usize,
        j: usize,
        reached: Ref,
    ) -> Result<bool, OverflowError> {
        let t = self.transition_relation()?;
        let si = self.bdd.var(self.s(i))?;
        let spi = self.bdd.var(self.sp(i))?;
        let src_toggles = self.bdd.xor(si, spi)?;
        let spj = self.bdd.var(self.sp(j))?;
        let sink_changes = self.bdd.xor(spj, self.next_fn_primed[j])?;

        let mut bad = self.bdd.and(reached, t)?;
        bad = self.bdd.and(bad, src_toggles)?;
        bad = self.bdd.and(bad, sink_changes)?;
        Ok(bad == Ref::FALSE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_netlist::bench;

    fn toggle() -> Netlist {
        bench::parse("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)").expect("parse")
    }

    /// 2-bit gray counter + enable-gated register (miniature Fig.1 motif):
    /// F captures IN only when (C1,C0) = (0,0), otherwise holds.
    fn gated() -> Netlist {
        bench::parse(
            "g",
            "INPUT(IN)\nOUTPUT(F)\n\
             C1 = DFF(C0)\n\
             C0 = DFF(NC1)\n\
             NC1 = NOT(C1)\n\
             F = DFF(FD)\n\
             EN = NOR(C1, C0)\n\
             NEN = NOT(EN)\n\
             A0 = AND(NEN, F)\n\
             A1 = AND(EN, IN)\n\
             FD = OR(A0, A1)",
        )
        .expect("parse")
    }

    #[test]
    fn toggle_reachability_covers_both_states() {
        let nl = toggle();
        let mut fsm = SymbolicFsm::build(&nl, 1 << 20).unwrap();
        let r = fsm.reachable(InitStates::Zero).unwrap();
        assert_eq!(fsm.bdd().sat_count(r) / fsm.count_scale(), 2.0);
    }

    #[test]
    fn toggle_self_pair_is_single_cycle() {
        // Q toggles every cycle: (Q,Q) violates the MC condition.
        let nl = toggle();
        let mut fsm = SymbolicFsm::build(&nl, 1 << 20).unwrap();
        assert!(!fsm.is_multicycle_pair(0, 0, Ref::TRUE).unwrap());
    }

    #[test]
    fn hold_register_self_pair_is_multi_cycle() {
        let nl = bench::parse("h", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = BUFF(q)").unwrap();
        let mut fsm = SymbolicFsm::build(&nl, 1 << 20).unwrap();
        assert!(fsm.is_multicycle_pair(0, 0, Ref::TRUE).unwrap());
    }

    #[test]
    fn gated_register_pairs() {
        let nl = gated();
        let mut fsm = SymbolicFsm::build(&nl, 1 << 20).unwrap();
        // FF order: C1=0, C0=1, F=2.
        // (F, F): F captures only when counter = 00; one cycle later the
        // counter is 01, so F holds: multi-cycle self pair.
        assert!(fsm.is_multicycle_pair(2, 2, Ref::TRUE).unwrap());
        // Counter transitions: (C1', C0') = (C0, !C1); EN(t+1)=1 requires
        // (C1(t+1), C0(t+1)) = (0,0), i.e. C0(t)=0 and C1(t)=1.
        // (C0, F): a C0 toggle forces C0(t) = !C0(t+1) = C1(t) = 1,
        // contradicting C0(t)=0 — F can never change right after: MC pair.
        assert!(fsm.is_multicycle_pair(1, 2, Ref::TRUE).unwrap());
        // (C1, F): C1 toggles from 1 to C0(t)=0 exactly when the capture
        // window opens, so F(t+2) = IN(t+1) may differ: single-cycle.
        assert!(!fsm.is_multicycle_pair(0, 2, Ref::TRUE).unwrap());
    }

    #[test]
    fn reachability_can_promote_pairs() {
        // A 1-hot ring counter of 3 FFs starting from 000 stays at 000
        // forever (no enable ever fires), so with Zero init every pair is
        // multi-cycle; with all-states assumed, the self pairs are not.
        let nl = bench::parse(
            "ring",
            "OUTPUT(R0)\nR0 = DFF(R2)\nR1 = DFF(R0)\nR2 = DFF(R1)",
        )
        .unwrap();
        let mut fsm = SymbolicFsm::build(&nl, 1 << 20).unwrap();
        let r_zero = fsm.reachable(InitStates::Zero).unwrap();
        // From 000 the ring stays 000: one reachable state.
        assert_eq!(fsm.bdd().sat_count(r_zero) / fsm.count_scale(), 1.0);
        // (R0, R1): under all-states, R0 can toggle and R1 follows it.
        assert!(!fsm.is_multicycle_pair(0, 1, Ref::TRUE).unwrap());
        // Restricted to the reachable set, nothing ever toggles.
        assert!(fsm.is_multicycle_pair(0, 1, r_zero).unwrap());
    }

    #[test]
    fn overflow_is_reported_not_hung() {
        let nl = gated();
        match SymbolicFsm::build(&nl, 16) {
            Err(OverflowError { node_limit: 16 }) => {}
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn transition_relation_counts_transitions() {
        // The toggle FF has exactly 2 (state, next) transition pairs, and
        // the input is a free variable.
        let nl = toggle();
        let mut fsm = SymbolicFsm::build(&nl, 1 << 20).unwrap();
        let t = fsm.transition_relation().unwrap();
        // Variables: s, s', x0, x1 → sat_count counts over 4 vars; T fixes
        // s' = !s (2 of 4 combos) with x0, x1 free: 2 * 4 = 8.
        assert_eq!(fsm.bdd().sat_count(t), 8.0);
    }
}
