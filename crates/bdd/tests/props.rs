//! Property-based validation of the BDD manager and symbolic FSM against
//! direct evaluation.

use mcp_bdd::{Bdd, InitStates, Ref, SymbolicFsm};
use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_netlist::Netlist;
use mcp_sim::ParallelSim;
use proptest::prelude::*;

/// A random Boolean expression over `n` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr_strategy(n_vars: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..n_vars).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(bdd: &mut Bdd, e: &Expr) -> Ref {
    match e {
        Expr::Var(v) => bdd.var(*v).expect("budget"),
        Expr::Not(a) => {
            let a = build(bdd, a);
            bdd.not(a).expect("budget")
        }
        Expr::And(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.and(a, b).expect("budget")
        }
        Expr::Or(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.or(a, b).expect("budget")
        }
        Expr::Xor(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.xor(a, b).expect("budget")
        }
    }
}

fn eval(e: &Expr, a: &[bool]) -> bool {
    match e {
        Expr::Var(v) => a[*v as usize],
        Expr::Not(x) => !eval(x, a),
        Expr::And(x, y) => eval(x, a) & eval(y, a),
        Expr::Or(x, y) => eval(x, a) | eval(y, a),
        Expr::Xor(x, y) => eval(x, a) ^ eval(y, a),
    }
}

const N_VARS: u32 = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_semantics_match_direct_evaluation(e in expr_strategy(N_VARS)) {
        let mut bdd = Bdd::new(N_VARS, 1 << 20);
        let f = build(&mut bdd, &e);
        let mut count = 0u32;
        for bits in 0..(1u32 << N_VARS) {
            let assignment: Vec<bool> = (0..N_VARS).map(|k| bits >> k & 1 == 1).collect();
            let expect = eval(&e, &assignment);
            prop_assert_eq!(bdd.eval(f, &assignment), expect);
            count += u32::from(expect);
        }
        // sat_count agrees with the truth table.
        prop_assert_eq!(bdd.sat_count(f), f64::from(count));
        // any_sat agrees with satisfiability.
        match bdd.any_sat(f) {
            Some(model) => prop_assert!(bdd.eval(f, &model)),
            None => prop_assert_eq!(count, 0),
        }
    }

    #[test]
    fn canonicity_detects_equivalence(e in expr_strategy(N_VARS)) {
        // f and its double negation are the same node; f XOR f is FALSE.
        let mut bdd = Bdd::new(N_VARS, 1 << 20);
        let f = build(&mut bdd, &e);
        let nf = bdd.not(f).expect("budget");
        let nnf = bdd.not(nf).expect("budget");
        prop_assert_eq!(f, nnf);
        let z = bdd.xor(f, f).expect("budget");
        prop_assert_eq!(z, Ref::FALSE);
    }

    #[test]
    fn exists_is_disjunction_of_cofactors(e in expr_strategy(N_VARS), v in 0..N_VARS) {
        let mut bdd = Bdd::new(N_VARS, 1 << 20);
        let f = build(&mut bdd, &e);
        let cube = bdd.cube([v]).expect("budget");
        let q = bdd.exists(f, cube).expect("budget");
        for bits in 0..(1u32 << N_VARS) {
            let mut a: Vec<bool> = (0..N_VARS).map(|k| bits >> k & 1 == 1).collect();
            a[v as usize] = false;
            let f0 = bdd.eval(f, &a);
            a[v as usize] = true;
            let f1 = bdd.eval(f, &a);
            prop_assert_eq!(bdd.eval(q, &a), f0 | f1);
        }
    }
}

/// Reachability cross-check: the symbolic fixpoint must equal explicit
/// state-graph search for small random machines.
#[test]
fn symbolic_reachability_matches_explicit_search() {
    for seed in 0..25u64 {
        let nl = random_netlist(
            seed,
            &RandomCircuitConfig {
                ffs: 4,
                pis: 2,
                gates: 18,
                max_arity: 3,
            },
        );
        let explicit = explicit_reachable(&nl);
        let mut fsm = SymbolicFsm::build(&nl, 1 << 22).expect("budget");
        let r = fsm.reachable(InitStates::Zero).expect("budget");
        let symbolic = fsm.bdd().sat_count(r) / fsm.count_scale();
        assert_eq!(symbolic, explicit.len() as f64, "seed {seed}");
        // And membership agrees state by state.
        for state in 0..(1u32 << nl.num_ffs()) {
            let mut assignment = vec![false; fsm.bdd().num_vars() as usize];
            for k in 0..nl.num_ffs() {
                assignment[2 * k] = state >> k & 1 == 1;
            }
            assert_eq!(
                fsm.bdd().eval(r, &assignment),
                explicit.contains(&state),
                "seed {seed} state {state:b}"
            );
        }
    }
}

fn explicit_reachable(nl: &Netlist) -> std::collections::HashSet<u32> {
    let mut sim = ParallelSim::new(nl);
    let mut reached = std::collections::HashSet::from([0u32]);
    let mut frontier = vec![0u32];
    while let Some(state) = frontier.pop() {
        // All input combinations, 64 at a time via lanes.
        let n_pis = nl.num_inputs();
        let combos = 1u32 << n_pis;
        let mut base = 0u32;
        while base < combos {
            for ff in 0..nl.num_ffs() {
                sim.set_state(ff, if state >> ff & 1 == 1 { u64::MAX } else { 0 });
            }
            for pi in 0..n_pis {
                let mut w = 0u64;
                for l in 0..64u32.min(combos - base) {
                    if (base + l) >> pi & 1 == 1 {
                        w |= 1 << l;
                    }
                }
                sim.set_input(pi, w);
            }
            sim.eval();
            for l in 0..64u32.min(combos - base) {
                let mut next = 0u32;
                for ff in 0..nl.num_ffs() {
                    if sim.next_state(ff) >> l & 1 == 1 {
                        next |= 1 << ff;
                    }
                }
                if reached.insert(next) {
                    frontier.push(next);
                }
            }
            base += 64;
        }
    }
    reached
}
