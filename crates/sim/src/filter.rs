//! Random-pattern filtering of single-cycle FF pairs (paper step 2).
//!
//! Two interchangeable execution paths compute the **same**
//! [`FilterOutcome`]:
//!
//! * the **reference path** — the original graph-walking
//!   [`ParallelSim`] loop, one 64-lane word per pass;
//! * the **tape path** (default) — the compiled [`Tape`]
//!   kernel evaluating `64 × W` lanes per pass
//!   ([`FilterConfig::lanes`] selects `W`), with alive pairs grouped by
//!   source FF so a word in which a source never toggles skips its whole
//!   group.
//!
//! ## Lane-width determinism contract
//!
//! The tape path draws the RNG stream in 64-bit words in exactly the
//! reference order (per word: FF states, first-cycle inputs,
//! second-cycle inputs), evaluates a `W`-word batch at once, then
//! *replays* the batch word by word under the reference stop condition.
//! Drops, witness word indices, survivor order, `words_simulated`, and
//! `ff_toggles` are therefore byte-identical to the 64-lane reference
//! for the same seed at every supported lane width — RNG words drawn
//! past the stop point are simply never observed. The differential suite
//! in `tests/tape_diff.rs` pins this contract on random netlists.

use crate::{ParallelSim, Tape, TapeSim};
use mcp_logic::V3;
use mcp_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lane widths the compiled kernel supports (one to eight 64-bit words).
pub const SUPPORTED_LANES: [u32; 4] = [64, 128, 256, 512];

/// Configuration of the random-pattern multi-cycle filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// PRNG seed; fixed seeds make runs reproducible.
    pub seed: u64,
    /// Stop after this many consecutive 64-pattern words dropped no pair.
    /// The paper stops after 32 idle words; the default here is 128, which
    /// reproduces the paper's Table 2 kill rate (~86% of single-cycle
    /// pairs dead in simulation) on the synthetic suite.
    pub idle_words: u32,
    /// Hard cap on simulated words, a safety net for degenerate circuits.
    pub max_words: u64,
    /// Simulation lanes per pass of the compiled kernel: one of
    /// [`SUPPORTED_LANES`] (64, 128, 256 or 512 — i.e. 1, 2, 4 or 8
    /// `u64` words). The outcome is identical at every width; wider
    /// lanes amortize per-instruction overhead over more patterns.
    /// Defaults to 256, overridable via the `MCPATH_SIM_LANES`
    /// environment variable. Invalid values are rejected by
    /// `analyze` with `AnalyzeError::InvalidSimLanes`.
    pub lanes: u32,
    /// Run on the compiled tape kernel (default) rather than the
    /// graph-walking reference simulator. Defaults to `true`, or `false`
    /// when the `MCPATH_NO_TAPE` environment variable is set; the CLI
    /// exposes it as `--no-tape`.
    pub tape: bool,
}

fn default_lanes() -> u32 {
    match std::env::var("MCPATH_SIM_LANES") {
        Err(_) => 256,
        // An unparseable override becomes 0, which `lane_words` maps to
        // `None` and `analyze` rejects with a clear error.
        Ok(s) => s.trim().parse().unwrap_or(0),
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            seed: 0x5eed_cafe,
            idle_words: 128,
            max_words: 1 << 16,
            lanes: default_lanes(),
            tape: std::env::var_os("MCPATH_NO_TAPE").is_none(),
        }
    }
}

impl FilterConfig {
    /// The number of `u64` words per pass for the configured lane width,
    /// or `None` if `lanes` is not one of [`SUPPORTED_LANES`].
    pub fn lane_words(&self) -> Option<usize> {
        match self.lanes {
            64 => Some(1),
            128 => Some(2),
            256 => Some(4),
            512 => Some(8),
            _ => None,
        }
    }
}

/// One pair disproven by simulation, with its drop cause: the 0-based
/// index of the 64-pattern word whose lane witnessed the violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDrop {
    /// Source FF index of the dropped pair.
    pub src: usize,
    /// Destination FF index of the dropped pair.
    pub dst: usize,
    /// 0-based index of the simulated word that killed the pair.
    pub word: u64,
}

/// Result of the random-pattern filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Pairs that survived (not yet disproven), in the input order.
    pub survivors: Vec<(usize, usize)>,
    /// Pairs dropped as proven single-cycle, in drop order, each with the
    /// word index that witnessed the violation.
    pub drops: Vec<PairDrop>,
    /// Number of 64-pattern words simulated (each word costs two clock
    /// cycles of evaluation).
    pub words_simulated: u64,
    /// Per-FF source activity: `ff_toggles[k]` counts the simulated lanes
    /// (across all words) in which FF `k` transitioned between `t` and
    /// `t+1`. A pair that survived despite a busy source resisted many
    /// concrete premise attempts — a cheap hardness signal the pipeline's
    /// scheduler uses to order the engine queue hardest-first.
    pub ff_toggles: Vec<u64>,
}

impl FilterOutcome {
    /// Number of pairs dropped as proven single-cycle.
    pub fn dropped(&self) -> usize {
        self.drops.len()
    }
}

/// Execution-cost counters of one filter run. Deliberately **not** part
/// of [`FilterOutcome`]: the outcome is pinned byte-identical across
/// lane widths, while these counters describe how the kernel got there
/// (they vary with `lanes` and are zero on the reference path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Wide evaluation passes of the tape kernel (each pass simulates up
    /// to `lanes / 64` words, two clock cycles each).
    pub passes: u64,
    /// Tape instructions executed (instructions per eval × evals).
    pub tape_ops: u64,
}

/// Runs the paper's step 2: 2-clock random parallel-pattern simulation.
///
/// Each 64-lane word draws a random initial state and random inputs for two
/// cycles, producing `FF(t)`, `FF(t+1)`, `FF(t+2)` per lane. A pair
/// `(i, j)` with a lane where
///
/// ```text
/// FFi(t) != FFi(t+1)  &&  FFj(t+1) != FFj(t+2)
/// ```
///
/// violates the multi-cycle condition and is dropped: it is a **proven**
/// single-cycle pair (the lane is a concrete witness — no delay model
/// involved). Simulation continues until `idle_words` consecutive words
/// drop nothing or `max_words` is reached.
///
/// The surviving pairs are only *candidates*: the implication/ATPG (or
/// SAT/BDD) engines must still prove them.
///
/// # Panics
///
/// Panics if a pair names an FF index out of range, or if `cfg.tape` is
/// set and `cfg.lanes` is not one of [`SUPPORTED_LANES`] (the pipeline
/// validates lanes up front and reports `AnalyzeError::InvalidSimLanes`
/// instead).
pub fn mc_filter(netlist: &Netlist, pairs: &[(usize, usize)], cfg: &FilterConfig) -> FilterOutcome {
    mc_filter_stats(netlist, pairs, cfg).0
}

/// [`mc_filter`] plus the kernel's [`FilterStats`].
///
/// # Panics
///
/// As [`mc_filter`].
pub fn mc_filter_stats(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
) -> (FilterOutcome, FilterStats) {
    mc_filter_stats_seeded(netlist, pairs, cfg, &[])
}

/// [`mc_filter_stats`] with externally proven per-node constants
/// (typically the base iterate of `mcp-lint`'s dataflow lattice) handed
/// to the tape compiler via [`Tape::compile_with_consts`]: definite
/// gates are pinned to compile-time constants, shrinking the
/// instruction stream the kernel executes per pass. The
/// [`FilterOutcome`] is identical to the unseeded run — a sound seed
/// holds under every stimulus, so no lane can observe a difference —
/// only [`FilterStats::tape_ops`] shrinks. The reference path ignores
/// the seed (it exists precisely to pin the tape's behavior). An empty
/// slice is the plain unseeded filter.
///
/// # Panics
///
/// As [`mc_filter`], plus a non-empty `consts` shorter than the node
/// count.
pub fn mc_filter_stats_seeded(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
    consts: &[V3],
) -> (FilterOutcome, FilterStats) {
    let nffs = netlist.num_ffs();
    for &(i, j) in pairs {
        assert!(i < nffs && j < nffs, "FF index out of range in pair list");
    }
    if !cfg.tape {
        return (
            mc_filter_reference(netlist, pairs, cfg),
            FilterStats::default(),
        );
    }
    match cfg.lane_words() {
        Some(1) => mc_filter_tape::<1>(netlist, pairs, cfg, consts),
        Some(2) => mc_filter_tape::<2>(netlist, pairs, cfg, consts),
        Some(4) => mc_filter_tape::<4>(netlist, pairs, cfg, consts),
        Some(8) => mc_filter_tape::<8>(netlist, pairs, cfg, consts),
        _ => panic!(
            "sim lanes {} out of range: supported widths are 64, 128, 256, 512",
            cfg.lanes
        ),
    }
}

/// The original graph-walking loop over [`ParallelSim`], one 64-lane
/// word per pass. Kept verbatim as the differential reference for the
/// tape kernel (and reachable via `--no-tape` / `MCPATH_NO_TAPE`).
fn mc_filter_reference(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
) -> FilterOutcome {
    let nffs = netlist.num_ffs();
    let mut alive: Vec<(usize, usize)> = pairs.to_vec();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sim = ParallelSim::new(netlist);

    let mut s0 = vec![0u64; nffs];
    let mut s1 = vec![0u64; nffs];
    let mut s2 = vec![0u64; nffs];

    let mut words = 0u64;
    let mut idle = 0u32;
    let mut drops: Vec<PairDrop> = Vec::new();
    let mut ff_toggles = vec![0u64; nffs];

    while !alive.is_empty() && idle < cfg.idle_words && words < cfg.max_words {
        sim.randomize_state(&mut rng);
        sim.randomize_inputs(&mut rng);
        for (k, s) in s0.iter_mut().enumerate() {
            *s = sim.state(k);
        }
        sim.eval();
        for (k, s) in s1.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        sim.clock();
        sim.randomize_inputs(&mut rng);
        sim.eval();
        for (k, s) in s2.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        words += 1;
        for k in 0..nffs {
            ff_toggles[k] += u64::from((s0[k] ^ s1[k]).count_ones());
        }

        let word = words - 1;
        let before = drops.len();
        alive.retain(|&(i, j)| {
            let violated = (s0[i] ^ s1[i]) & (s1[j] ^ s2[j]) != 0;
            if violated {
                drops.push(PairDrop {
                    src: i,
                    dst: j,
                    word,
                });
            }
            !violated
        });
        if drops.len() == before {
            idle += 1;
        } else {
            idle = 0;
        }
    }

    FilterOutcome {
        survivors: alive,
        drops,
        words_simulated: words,
        ff_toggles,
    }
}

/// Alive pairs sharing one source FF. A word in which the source never
/// toggled between `t` and `t+1` cannot violate any pair of the group —
/// the whole group is skipped with one word compare.
struct SourceGroup {
    src: usize,
    /// `(input position, destination FF)` of each alive pair, in input
    /// order (positions are strictly increasing within a group).
    pairs: Vec<(usize, usize)>,
}

/// The compiled-kernel path: simulate `W` words per pass on the tape,
/// then replay the batch word by word under the reference stop
/// condition. See the module docs for the determinism contract.
fn mc_filter_tape<const W: usize>(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
    consts: &[V3],
) -> (FilterOutcome, FilterStats) {
    let nffs = netlist.num_ffs();
    let npis = netlist.num_inputs();
    let tape = Tape::compile_with_consts(netlist, consts);
    let mut sim = TapeSim::<W>::new(&tape);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Group alive pairs by source FF, preserving input order both within
    // groups (positions ascend) and across the run (drops are re-sorted
    // by position per word, survivors by position at the end).
    let mut group_of: Vec<Option<usize>> = vec![None; nffs];
    let mut groups: Vec<SourceGroup> = Vec::new();
    for (pos, &(i, j)) in pairs.iter().enumerate() {
        let g = *group_of[i].get_or_insert_with(|| {
            groups.push(SourceGroup {
                src: i,
                pairs: Vec::new(),
            });
            groups.len() - 1
        });
        groups[g].pairs.push((pos, j));
    }
    let mut alive_count = pairs.len();

    // Per-word-slot random draws and captured FF trajectories, one
    // `[u64; W]` per FF / PI.
    let mut state = vec![[0u64; W]; nffs];
    let mut in0 = vec![[0u64; W]; npis];
    let mut in1 = vec![[0u64; W]; npis];
    let mut s1 = vec![[0u64; W]; nffs];
    let mut s2 = vec![[0u64; W]; nffs];

    let mut words = 0u64;
    let mut idle = 0u32;
    let mut drops: Vec<PairDrop> = Vec::new();
    let mut ff_toggles = vec![0u64; nffs];
    let mut stats = FilterStats::default();
    // Per-word drop candidates, re-sorted into input order before being
    // appended so drop order matches the reference exactly.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();

    'run: while alive_count > 0 && idle < cfg.idle_words && words < cfg.max_words {
        // Draw the RNG stream word-slot-major in the reference order:
        // per word, FF states, then cycle-1 inputs, then cycle-2 inputs.
        for w in 0..W {
            for s in state.iter_mut() {
                s[w] = rng.random();
            }
            for i in in0.iter_mut() {
                i[w] = rng.random();
            }
            for i in in1.iter_mut() {
                i[w] = rng.random();
            }
        }
        for (k, s) in state.iter().enumerate() {
            sim.set_state(k, *s);
        }
        for (p, i) in in0.iter().enumerate() {
            sim.set_input(p, *i);
        }
        sim.eval();
        for (k, s) in s1.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        sim.clock();
        for (p, i) in in1.iter().enumerate() {
            sim.set_input(p, *i);
        }
        sim.eval();
        for (k, s) in s2.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        stats.passes += 1;
        stats.tape_ops += 2 * tape.num_ops() as u64;

        // Replay the batch word by word under the reference stop
        // condition; words past the stop point are never observed.
        for w in 0..W {
            if !(alive_count > 0 && idle < cfg.idle_words && words < cfg.max_words) {
                break 'run;
            }
            words += 1;
            let word = words - 1;
            for k in 0..nffs {
                ff_toggles[k] += u64::from((state[k][w] ^ s1[k][w]).count_ones());
            }
            candidates.clear();
            for group in groups.iter_mut() {
                let src = group.src;
                let src_toggle = state[src][w] ^ s1[src][w];
                if src_toggle == 0 {
                    continue;
                }
                group.pairs.retain(|&(pos, dst)| {
                    let violated = src_toggle & (s1[dst][w] ^ s2[dst][w]) != 0;
                    if violated {
                        candidates.push((pos, src, dst));
                    }
                    !violated
                });
            }
            if candidates.is_empty() {
                idle += 1;
            } else {
                idle = 0;
                alive_count -= candidates.len();
                candidates.sort_unstable_by_key(|&(pos, _, _)| pos);
                drops.extend(
                    candidates
                        .iter()
                        .map(|&(_, src, dst)| PairDrop { src, dst, word }),
                );
            }
        }
    }

    let mut survivors: Vec<(usize, usize)> = Vec::with_capacity(alive_count);
    let mut positions: Vec<(usize, (usize, usize))> = groups
        .iter()
        .flat_map(|g| g.pairs.iter().map(|&(pos, dst)| (pos, (g.src, dst))))
        .collect();
    positions.sort_unstable_by_key(|&(pos, _)| pos);
    survivors.extend(positions.into_iter().map(|(_, pair)| pair));

    (
        FilterOutcome {
            survivors,
            drops,
            words_simulated: words,
            ff_toggles,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;

    /// B.D = A: a plain pipeline stage — obviously single-cycle.
    /// C.D = C (hold): a degenerate always-multi-cycle self pair.
    fn mixed() -> Netlist {
        let mut b = NetlistBuilder::new("mixed");
        let input = b.input("IN");
        let a = b.dff("A");
        let q = b.dff("B");
        let c = b.dff("C");
        b.set_dff_input(a, input).unwrap();
        let buf = b.gate("BUFA", GateKind::Buf, [a]).unwrap();
        b.set_dff_input(q, buf).unwrap();
        let hold = b.gate("HOLD", GateKind::Buf, [c]).unwrap();
        b.set_dff_input(c, hold).unwrap();
        b.mark_output(q);
        b.finish().unwrap()
    }

    fn cfg_with_lanes(lanes: u32) -> FilterConfig {
        FilterConfig {
            lanes,
            tape: true,
            ..FilterConfig::default()
        }
    }

    #[test]
    fn drops_obvious_single_cycle_pairs() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        assert!(pairs.contains(&(0, 1)));
        let out = mc_filter(&nl, &pairs, &FilterConfig::default());
        // (A,B) must be disproven: A toggles freely from IN and B follows.
        assert!(!out.survivors.contains(&(0, 1)));
        assert!(out.dropped() >= 1);
        // The drop record names the pair and a word that was simulated.
        let drop = out
            .drops
            .iter()
            .find(|d| (d.src, d.dst) == (0, 1))
            .expect("(A,B) has a drop record");
        assert!(drop.word < out.words_simulated);
        // (C,C) can never be dropped: C never changes, so the premise of
        // the violation (a transition at the source) never occurs.
        assert!(out.survivors.contains(&(2, 2)));
    }

    #[test]
    fn stops_after_idle_words() {
        let nl = mixed();
        // Only the undroppable pair: the run should end at idle_words.
        let cfg = FilterConfig {
            idle_words: 5,
            ..FilterConfig::default()
        };
        let out = mc_filter(&nl, &[(2, 2)], &cfg);
        assert_eq!(out.words_simulated, 5);
        assert_eq!(out.survivors, vec![(2, 2)]);
        assert_eq!(out.dropped(), 0);
    }

    #[test]
    fn empty_pair_list_short_circuits() {
        let nl = mixed();
        let out = mc_filter(&nl, &[], &FilterConfig::default());
        assert_eq!(out.words_simulated, 0);
        assert!(out.survivors.is_empty());
    }

    #[test]
    fn toggle_activity_separates_busy_from_held_ffs() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let out = mc_filter(&nl, &pairs, &FilterConfig::default());
        assert_eq!(out.ff_toggles.len(), nl.num_ffs());
        // A (fed by a free input) toggles in ~half the lanes; C (a hold
        // register) starts from a random state but never changes.
        assert!(out.ff_toggles[0] > 0, "A must show toggle activity");
        assert_eq!(out.ff_toggles[2], 0, "C never transitions");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let a = mc_filter(&nl, &pairs, &FilterConfig::default());
        let b = mc_filter(&nl, &pairs, &FilterConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn tape_outcome_is_byte_identical_to_reference_at_every_width() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let reference = mc_filter_reference(&nl, &pairs, &FilterConfig::default());
        for lanes in SUPPORTED_LANES {
            let out = mc_filter(&nl, &pairs, &cfg_with_lanes(lanes));
            assert_eq!(out, reference, "lane width {lanes}");
        }
    }

    #[test]
    fn tape_stats_count_passes_and_ops() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let (out, stats) = mc_filter_stats(&nl, &pairs, &cfg_with_lanes(256));
        assert!(stats.passes > 0);
        // 4 words per pass: the word count never exceeds 4 × passes.
        assert!(out.words_simulated <= 4 * stats.passes);
        assert!(out.words_simulated > 4 * (stats.passes - 1));
        // mixed() compiles to zero tape instructions (all BUFs alias), so
        // tape_ops stays zero here; the invariant is ops = 2·passes·num_ops.
        assert_eq!(stats.tape_ops % 2, 0);
        // The reference path reports zero kernel stats.
        let no_tape = FilterConfig {
            tape: false,
            ..FilterConfig::default()
        };
        let (ref_out, ref_stats) = mc_filter_stats(&nl, &pairs, &no_tape);
        assert_eq!(ref_stats, FilterStats::default());
        assert_eq!(ref_out, out);
    }

    #[test]
    fn lane_words_maps_supported_widths() {
        for (lanes, words) in [(64u32, 1usize), (128, 2), (256, 4), (512, 8)] {
            let cfg = cfg_with_lanes(lanes);
            assert_eq!(cfg.lane_words(), Some(words));
        }
        assert_eq!(cfg_with_lanes(0).lane_words(), None);
        assert_eq!(cfg_with_lanes(96).lane_words(), None);
        assert_eq!(cfg_with_lanes(1024).lane_words(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unsupported_lane_width() {
        let nl = mixed();
        mc_filter(&nl, &[(0, 1)], &cfg_with_lanes(96));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_pairs() {
        let nl = mixed();
        mc_filter(&nl, &[(0, 99)], &FilterConfig::default());
    }
}
