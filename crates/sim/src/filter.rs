//! Random-pattern filtering of single-cycle FF pairs (paper step 2).

use crate::ParallelSim;
use mcp_netlist::Netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the random-pattern multi-cycle filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// PRNG seed; fixed seeds make runs reproducible.
    pub seed: u64,
    /// Stop after this many consecutive 64-pattern words dropped no pair.
    /// The paper stops after 32 idle words; the default here is 128, which
    /// reproduces the paper's Table 2 kill rate (~86% of single-cycle
    /// pairs dead in simulation) on the synthetic suite.
    pub idle_words: u32,
    /// Hard cap on simulated words, a safety net for degenerate circuits.
    pub max_words: u64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            seed: 0x5eed_cafe,
            idle_words: 128,
            max_words: 1 << 16,
        }
    }
}

/// One pair disproven by simulation, with its drop cause: the 0-based
/// index of the 64-pattern word whose lane witnessed the violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDrop {
    /// Source FF index of the dropped pair.
    pub src: usize,
    /// Destination FF index of the dropped pair.
    pub dst: usize,
    /// 0-based index of the simulated word that killed the pair.
    pub word: u64,
}

/// Result of the random-pattern filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Pairs that survived (not yet disproven), in the input order.
    pub survivors: Vec<(usize, usize)>,
    /// Pairs dropped as proven single-cycle, in drop order, each with the
    /// word index that witnessed the violation.
    pub drops: Vec<PairDrop>,
    /// Number of 64-pattern words simulated (each word costs two clock
    /// cycles of evaluation).
    pub words_simulated: u64,
    /// Per-FF source activity: `ff_toggles[k]` counts the simulated lanes
    /// (across all words) in which FF `k` transitioned between `t` and
    /// `t+1`. A pair that survived despite a busy source resisted many
    /// concrete premise attempts — a cheap hardness signal the pipeline's
    /// scheduler uses to order the engine queue hardest-first.
    pub ff_toggles: Vec<u64>,
}

impl FilterOutcome {
    /// Number of pairs dropped as proven single-cycle.
    pub fn dropped(&self) -> usize {
        self.drops.len()
    }
}

/// Runs the paper's step 2: 2-clock random parallel-pattern simulation.
///
/// Each 64-lane word draws a random initial state and random inputs for two
/// cycles, producing `FF(t)`, `FF(t+1)`, `FF(t+2)` per lane. A pair
/// `(i, j)` with a lane where
///
/// ```text
/// FFi(t) != FFi(t+1)  &&  FFj(t+1) != FFj(t+2)
/// ```
///
/// violates the multi-cycle condition and is dropped: it is a **proven**
/// single-cycle pair (the lane is a concrete witness — no delay model
/// involved). Simulation continues until `idle_words` consecutive words
/// drop nothing or `max_words` is reached.
///
/// The surviving pairs are only *candidates*: the implication/ATPG (or
/// SAT/BDD) engines must still prove them.
pub fn mc_filter(netlist: &Netlist, pairs: &[(usize, usize)], cfg: &FilterConfig) -> FilterOutcome {
    let nffs = netlist.num_ffs();
    let mut alive: Vec<(usize, usize)> = pairs.to_vec();
    for &(i, j) in pairs {
        assert!(i < nffs && j < nffs, "FF index out of range in pair list");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sim = ParallelSim::new(netlist);

    let mut s0 = vec![0u64; nffs];
    let mut s1 = vec![0u64; nffs];
    let mut s2 = vec![0u64; nffs];

    let mut words = 0u64;
    let mut idle = 0u32;
    let mut drops: Vec<PairDrop> = Vec::new();
    let mut ff_toggles = vec![0u64; nffs];

    while !alive.is_empty() && idle < cfg.idle_words && words < cfg.max_words {
        sim.randomize_state(&mut rng);
        sim.randomize_inputs(&mut rng);
        for (k, s) in s0.iter_mut().enumerate() {
            *s = sim.state(k);
        }
        sim.eval();
        for (k, s) in s1.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        sim.clock();
        sim.randomize_inputs(&mut rng);
        sim.eval();
        for (k, s) in s2.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        words += 1;
        for k in 0..nffs {
            ff_toggles[k] += u64::from((s0[k] ^ s1[k]).count_ones());
        }

        let word = words - 1;
        let before = drops.len();
        alive.retain(|&(i, j)| {
            let violated = (s0[i] ^ s1[i]) & (s1[j] ^ s2[j]) != 0;
            if violated {
                drops.push(PairDrop {
                    src: i,
                    dst: j,
                    word,
                });
            }
            !violated
        });
        if drops.len() == before {
            idle += 1;
        } else {
            idle = 0;
        }
    }

    FilterOutcome {
        survivors: alive,
        drops,
        words_simulated: words,
        ff_toggles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;

    /// B.D = A: a plain pipeline stage — obviously single-cycle.
    /// C.D = C (hold): a degenerate always-multi-cycle self pair.
    fn mixed() -> Netlist {
        let mut b = NetlistBuilder::new("mixed");
        let input = b.input("IN");
        let a = b.dff("A");
        let q = b.dff("B");
        let c = b.dff("C");
        b.set_dff_input(a, input).unwrap();
        let buf = b.gate("BUFA", GateKind::Buf, [a]).unwrap();
        b.set_dff_input(q, buf).unwrap();
        let hold = b.gate("HOLD", GateKind::Buf, [c]).unwrap();
        b.set_dff_input(c, hold).unwrap();
        b.mark_output(q);
        b.finish().unwrap()
    }

    #[test]
    fn drops_obvious_single_cycle_pairs() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        assert!(pairs.contains(&(0, 1)));
        let out = mc_filter(&nl, &pairs, &FilterConfig::default());
        // (A,B) must be disproven: A toggles freely from IN and B follows.
        assert!(!out.survivors.contains(&(0, 1)));
        assert!(out.dropped() >= 1);
        // The drop record names the pair and a word that was simulated.
        let drop = out
            .drops
            .iter()
            .find(|d| (d.src, d.dst) == (0, 1))
            .expect("(A,B) has a drop record");
        assert!(drop.word < out.words_simulated);
        // (C,C) can never be dropped: C never changes, so the premise of
        // the violation (a transition at the source) never occurs.
        assert!(out.survivors.contains(&(2, 2)));
    }

    #[test]
    fn stops_after_idle_words() {
        let nl = mixed();
        // Only the undroppable pair: the run should end at idle_words.
        let cfg = FilterConfig {
            idle_words: 5,
            ..FilterConfig::default()
        };
        let out = mc_filter(&nl, &[(2, 2)], &cfg);
        assert_eq!(out.words_simulated, 5);
        assert_eq!(out.survivors, vec![(2, 2)]);
        assert_eq!(out.dropped(), 0);
    }

    #[test]
    fn empty_pair_list_short_circuits() {
        let nl = mixed();
        let out = mc_filter(&nl, &[], &FilterConfig::default());
        assert_eq!(out.words_simulated, 0);
        assert!(out.survivors.is_empty());
    }

    #[test]
    fn toggle_activity_separates_busy_from_held_ffs() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let out = mc_filter(&nl, &pairs, &FilterConfig::default());
        assert_eq!(out.ff_toggles.len(), nl.num_ffs());
        // A (fed by a free input) toggles in ~half the lanes; C (a hold
        // register) starts from a random state but never changes.
        assert!(out.ff_toggles[0] > 0, "A must show toggle activity");
        assert_eq!(out.ff_toggles[2], 0, "C never transitions");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let a = mc_filter(&nl, &pairs, &FilterConfig::default());
        let b = mc_filter(&nl, &pairs, &FilterConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_pairs() {
        let nl = mixed();
        mc_filter(&nl, &[(0, 99)], &FilterConfig::default());
    }
}
