//! Random-pattern filtering of single-cycle FF pairs (paper step 2).
//!
//! Four interchangeable kernel tiers compute the **same**
//! [`FilterOutcome`] — the ladder, fastest first:
//!
//! * **jit** (default) — the fused tape compiled to native x86-64 by
//!   [`JitKernel`](crate::JitKernel) (AVX2 when the host has it, scalar
//!   `u64` otherwise); falls back to the fused interpreter when the
//!   host can't run native code.
//! * **fused** — the NOT-fused, dead-slot-eliminated
//!   [`FusedTape`] interpreted by
//!   [`FusedSim`].
//! * **tape** — the PR-5 compiled [`Tape`] interpreted by [`TapeSim`].
//! * **reference** — the original graph-walking [`ParallelSim`] loop,
//!   one 64-lane word per pass.
//!
//! [`FilterConfig::kernel`] (CLI `--sim-kernel`, env `MCPATH_NO_JIT`)
//! selects the tier; `--no-tape` still forces the reference path. All
//! wide tiers share one generic batch/replay loop (`KernelExec`), so
//! the determinism contract below holds per construction, and each tier
//! is differentially oracled against the tiers below it in
//! `tests/jit_diff.rs` / `tests/tape_diff.rs`.
//!
//! ## Lane-width determinism contract
//!
//! The wide path draws the RNG stream in 64-bit words in exactly the
//! reference order (per word: FF states, first-cycle inputs,
//! second-cycle inputs), evaluates a `W`-word batch at once, then
//! *replays* the batch word by word under the reference stop condition.
//! Drops, witness word indices, survivor order, `words_simulated`, and
//! `ff_toggles` are therefore byte-identical to the 64-lane reference
//! for the same seed at every supported lane width **and every kernel
//! tier** — RNG words drawn past the stop point are simply never
//! observed.

use crate::lower::FusedTape;
use crate::{FusedSim, JitSim, ParallelSim, Tape, TapeSim};
use mcp_logic::V3;
use mcp_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lane widths the compiled kernels support (one to eight 64-bit words).
pub const SUPPORTED_LANES: [u32; 4] = [64, 128, 256, 512];

/// Which execution tier runs the random-pattern filter.
///
/// Every tier produces a byte-identical [`FilterOutcome`]; they differ
/// only in speed and in which [`FilterStats`] counters move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimKernel {
    /// Native machine code over the fused tape (falls back to `Fused`
    /// on hosts the emitter does not target).
    Jit,
    /// The fused-tape interpreter.
    Fused,
    /// The unfused tape interpreter (the PR-5 kernel).
    Tape,
    /// The graph-walking 64-lane reference simulator.
    Reference,
}

impl SimKernel {
    /// Parses a CLI/config spelling (`jit`, `fused`, `tape`,
    /// `reference`).
    pub fn parse(s: &str) -> Option<SimKernel> {
        match s {
            "jit" => Some(SimKernel::Jit),
            "fused" => Some(SimKernel::Fused),
            "tape" => Some(SimKernel::Tape),
            "reference" => Some(SimKernel::Reference),
            _ => None,
        }
    }

    /// The canonical spelling, inverse of [`parse`](Self::parse).
    pub fn as_str(self) -> &'static str {
        match self {
            SimKernel::Jit => "jit",
            SimKernel::Fused => "fused",
            SimKernel::Tape => "tape",
            SimKernel::Reference => "reference",
        }
    }
}

/// Configuration of the random-pattern multi-cycle filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// PRNG seed; fixed seeds make runs reproducible.
    pub seed: u64,
    /// Stop after this many consecutive 64-pattern words dropped no pair.
    /// The paper stops after 32 idle words; the default here is 128, which
    /// reproduces the paper's Table 2 kill rate (~86% of single-cycle
    /// pairs dead in simulation) on the synthetic suite.
    pub idle_words: u32,
    /// Hard cap on simulated words, a safety net for degenerate circuits.
    pub max_words: u64,
    /// Simulation lanes per pass of the compiled kernel: one of
    /// [`SUPPORTED_LANES`] (64, 128, 256 or 512 — i.e. 1, 2, 4 or 8
    /// `u64` words). The outcome is identical at every width; wider
    /// lanes amortize per-instruction overhead over more patterns.
    /// Defaults to 256, overridable via the `MCPATH_SIM_LANES`
    /// environment variable. Invalid values are rejected by
    /// `analyze` with `AnalyzeError::InvalidSimLanes`.
    pub lanes: u32,
    /// Run on a compiled kernel (default) rather than the graph-walking
    /// reference simulator. Defaults to `true`, or `false` when the
    /// `MCPATH_NO_TAPE` environment variable is set; the CLI exposes it
    /// as `--no-tape`. `false` overrides [`kernel`](Self::kernel).
    pub tape: bool,
    /// Which kernel tier to run (CLI `--sim-kernel`). Defaults to
    /// [`SimKernel::Jit`], or [`SimKernel::Fused`] when the
    /// `MCPATH_NO_JIT` environment variable is set (CLI `--no-jit`).
    /// **Verdict-neutral**: every tier computes the same outcome, so
    /// this field is deliberately excluded from `McConfig::fingerprint`
    /// and the cache key slice.
    pub kernel: SimKernel,
}

fn default_lanes() -> u32 {
    match std::env::var("MCPATH_SIM_LANES") {
        Err(_) => 256,
        // An unparseable override becomes 0, which `lane_words` maps to
        // `None` and `analyze` rejects with a clear error.
        Ok(s) => s.trim().parse().unwrap_or(0),
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            seed: 0x5eed_cafe,
            idle_words: 128,
            max_words: 1 << 16,
            lanes: default_lanes(),
            tape: std::env::var_os("MCPATH_NO_TAPE").is_none(),
            kernel: if std::env::var_os("MCPATH_NO_JIT").is_some() {
                SimKernel::Fused
            } else {
                SimKernel::Jit
            },
        }
    }
}

impl FilterConfig {
    /// The number of `u64` words per pass for the configured lane width,
    /// or `None` if `lanes` is not one of [`SUPPORTED_LANES`].
    pub fn lane_words(&self) -> Option<usize> {
        match self.lanes {
            64 => Some(1),
            128 => Some(2),
            256 => Some(4),
            512 => Some(8),
            _ => None,
        }
    }

    /// The tier that will actually run: [`kernel`](Self::kernel) unless
    /// [`tape`](Self::tape) is off, which forces the reference path
    /// (preserving the PR-5 `--no-tape` contract).
    pub fn effective_kernel(&self) -> SimKernel {
        if self.tape {
            self.kernel
        } else {
            SimKernel::Reference
        }
    }
}

/// One pair disproven by simulation, with its drop cause: the 0-based
/// index of the 64-pattern word whose lane witnessed the violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDrop {
    /// Source FF index of the dropped pair.
    pub src: usize,
    /// Destination FF index of the dropped pair.
    pub dst: usize,
    /// 0-based index of the simulated word that killed the pair.
    pub word: u64,
}

/// Result of the random-pattern filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Pairs that survived (not yet disproven), in the input order.
    pub survivors: Vec<(usize, usize)>,
    /// Pairs dropped as proven single-cycle, in drop order, each with the
    /// word index that witnessed the violation.
    pub drops: Vec<PairDrop>,
    /// Number of 64-pattern words simulated (each word costs two clock
    /// cycles of evaluation).
    pub words_simulated: u64,
    /// Per-FF source activity: `ff_toggles[k]` counts the simulated lanes
    /// (across all words) in which FF `k` transitioned between `t` and
    /// `t+1`. A pair that survived despite a busy source resisted many
    /// concrete premise attempts — a cheap hardness signal the pipeline's
    /// scheduler uses to order the engine queue hardest-first.
    pub ff_toggles: Vec<u64>,
}

impl FilterOutcome {
    /// Number of pairs dropped as proven single-cycle.
    pub fn dropped(&self) -> usize {
        self.drops.len()
    }
}

/// Execution-cost counters of one filter run. Deliberately **not** part
/// of [`FilterOutcome`]: the outcome is pinned byte-identical across
/// lane widths and kernel tiers, while these counters describe how the
/// kernel got there (they vary with `lanes`/`kernel` and are zero on
/// the reference path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterStats {
    /// Wide evaluation passes of the kernel (each pass simulates up to
    /// `lanes / 64` words, two clock cycles each).
    pub passes: u64,
    /// Unfused tape instructions executed (instructions per eval ×
    /// evals). Moves only on the `tape` tier.
    pub tape_ops: u64,
    /// Fused instructions executed (after NOT fusion and dead-slot
    /// elimination). Moves on the `fused` and `jit` tiers.
    pub fused_ops: u64,
    /// Native-code compilations performed (0 or 1 per filter run).
    pub jit_compiles: u64,
    /// Bytes of machine code emitted by the JIT.
    pub jit_bytes: u64,
    /// Calls into the jitted kernel (two per pass: one per clock cycle).
    pub jit_batches: u64,
    /// Which tier actually ran: `"jit-avx2"`, `"jit-scalar"`, `"fused"`,
    /// `"tape"` or `"reference"`. More specific than
    /// [`FilterConfig::kernel`] — it records the post-fallback reality.
    pub kernel: &'static str,
}

impl Default for FilterStats {
    fn default() -> Self {
        FilterStats {
            passes: 0,
            tape_ops: 0,
            fused_ops: 0,
            jit_compiles: 0,
            jit_bytes: 0,
            jit_batches: 0,
            // The zero-work tier: matches what the reference path
            // reports, so `stats == FilterStats::default()` still reads
            // "the kernel did nothing".
            kernel: "reference",
        }
    }
}

/// Runs the paper's step 2: 2-clock random parallel-pattern simulation.
///
/// Each 64-lane word draws a random initial state and random inputs for two
/// cycles, producing `FF(t)`, `FF(t+1)`, `FF(t+2)` per lane. A pair
/// `(i, j)` with a lane where
///
/// ```text
/// FFi(t) != FFi(t+1)  &&  FFj(t+1) != FFj(t+2)
/// ```
///
/// violates the multi-cycle condition and is dropped: it is a **proven**
/// single-cycle pair (the lane is a concrete witness — no delay model
/// involved). Simulation continues until `idle_words` consecutive words
/// drop nothing or `max_words` is reached.
///
/// The surviving pairs are only *candidates*: the implication/ATPG (or
/// SAT/BDD) engines must still prove them.
///
/// # Panics
///
/// Panics if a pair names an FF index out of range, or if `cfg.tape` is
/// set and `cfg.lanes` is not one of [`SUPPORTED_LANES`] (the pipeline
/// validates lanes up front and reports `AnalyzeError::InvalidSimLanes`
/// instead).
pub fn mc_filter(netlist: &Netlist, pairs: &[(usize, usize)], cfg: &FilterConfig) -> FilterOutcome {
    mc_filter_stats(netlist, pairs, cfg).0
}

/// [`mc_filter`] plus the kernel's [`FilterStats`].
///
/// # Panics
///
/// As [`mc_filter`].
pub fn mc_filter_stats(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
) -> (FilterOutcome, FilterStats) {
    mc_filter_stats_seeded(netlist, pairs, cfg, &[])
}

/// [`mc_filter_stats`] with externally proven per-node constants
/// (typically the base iterate of `mcp-lint`'s dataflow lattice) handed
/// to the tape compiler via [`Tape::compile_with_consts`]: definite
/// gates are pinned to compile-time constants, shrinking the
/// instruction stream the kernel executes per pass. The
/// [`FilterOutcome`] is identical to the unseeded run — a sound seed
/// holds under every stimulus, so no lane can observe a difference —
/// only the op counters shrink. The reference path ignores the seed (it
/// exists precisely to pin the compiled kernels' behavior). An empty
/// slice is the plain unseeded filter.
///
/// # Panics
///
/// As [`mc_filter`], plus a non-empty `consts` shorter than the node
/// count.
pub fn mc_filter_stats_seeded(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
    consts: &[V3],
) -> (FilterOutcome, FilterStats) {
    let nffs = netlist.num_ffs();
    for &(i, j) in pairs {
        assert!(i < nffs && j < nffs, "FF index out of range in pair list");
    }
    if cfg.effective_kernel() == SimKernel::Reference {
        return (
            mc_filter_reference(netlist, pairs, cfg),
            FilterStats::default(),
        );
    }
    match cfg.lane_words() {
        Some(1) => mc_filter_wide::<1>(netlist, pairs, cfg, consts),
        Some(2) => mc_filter_wide::<2>(netlist, pairs, cfg, consts),
        Some(4) => mc_filter_wide::<4>(netlist, pairs, cfg, consts),
        Some(8) => mc_filter_wide::<8>(netlist, pairs, cfg, consts),
        _ => panic!(
            "sim lanes {} out of range: supported widths are 64, 128, 256, 512",
            cfg.lanes
        ),
    }
}

/// The original graph-walking loop over [`ParallelSim`], one 64-lane
/// word per pass. Kept verbatim as the differential reference for the
/// compiled tiers (and reachable via `--no-tape` / `MCPATH_NO_TAPE` /
/// `--sim-kernel reference`).
fn mc_filter_reference(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
) -> FilterOutcome {
    let nffs = netlist.num_ffs();
    let mut alive: Vec<(usize, usize)> = pairs.to_vec();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sim = ParallelSim::new(netlist);

    let mut s0 = vec![0u64; nffs];
    let mut s1 = vec![0u64; nffs];
    let mut s2 = vec![0u64; nffs];

    let mut words = 0u64;
    let mut idle = 0u32;
    let mut drops: Vec<PairDrop> = Vec::new();
    let mut ff_toggles = vec![0u64; nffs];

    while !alive.is_empty() && idle < cfg.idle_words && words < cfg.max_words {
        sim.randomize_state(&mut rng);
        sim.randomize_inputs(&mut rng);
        for (k, s) in s0.iter_mut().enumerate() {
            *s = sim.state(k);
        }
        sim.eval();
        for (k, s) in s1.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        sim.clock();
        sim.randomize_inputs(&mut rng);
        sim.eval();
        for (k, s) in s2.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        words += 1;
        for k in 0..nffs {
            ff_toggles[k] += u64::from((s0[k] ^ s1[k]).count_ones());
        }

        let word = words - 1;
        let before = drops.len();
        alive.retain(|&(i, j)| {
            let violated = (s0[i] ^ s1[i]) & (s1[j] ^ s2[j]) != 0;
            if violated {
                drops.push(PairDrop {
                    src: i,
                    dst: j,
                    word,
                });
            }
            !violated
        });
        if drops.len() == before {
            idle += 1;
        } else {
            idle = 0;
        }
    }

    FilterOutcome {
        survivors: alive,
        drops,
        words_simulated: words,
        ff_toggles,
    }
}

/// The uniform surface the wide kernel tiers expose to the shared
/// batch/replay loop. One implementation per tier keeps the loop — and
/// therefore the determinism contract — literally identical across
/// tiers.
trait KernelExec<const W: usize> {
    /// Sets the `64 × W` lanes of primary input `pi`.
    fn set_input(&mut self, pi: usize, words: [u64; W]);
    /// Sets the `64 × W` lanes of FF `ff`'s state.
    fn set_state(&mut self, ff: usize, words: [u64; W]);
    /// Evaluates the combinational logic for the current inputs/state.
    fn eval(&mut self);
    /// Latches every FF's D input (positive clock edge).
    fn clock(&mut self);
    /// FF `ff`'s D-input value from the most recent `eval`.
    fn next_state(&self, ff: usize) -> [u64; W];
    /// Instructions executed per `eval`, for the op counters.
    fn ops_per_eval(&self) -> u64;
}

impl<const W: usize> KernelExec<W> for TapeSim<'_, W> {
    fn set_input(&mut self, pi: usize, words: [u64; W]) {
        TapeSim::set_input(self, pi, words);
    }
    fn set_state(&mut self, ff: usize, words: [u64; W]) {
        TapeSim::set_state(self, ff, words);
    }
    fn eval(&mut self) {
        TapeSim::eval(self);
    }
    fn clock(&mut self) {
        TapeSim::clock(self);
    }
    fn next_state(&self, ff: usize) -> [u64; W] {
        TapeSim::next_state(self, ff)
    }
    fn ops_per_eval(&self) -> u64 {
        self.tape().num_ops() as u64
    }
}

impl<const W: usize> KernelExec<W> for FusedSim<'_, W> {
    fn set_input(&mut self, pi: usize, words: [u64; W]) {
        FusedSim::set_input(self, pi, words);
    }
    fn set_state(&mut self, ff: usize, words: [u64; W]) {
        FusedSim::set_state(self, ff, words);
    }
    fn eval(&mut self) {
        FusedSim::eval(self);
    }
    fn clock(&mut self) {
        FusedSim::clock(self);
    }
    fn next_state(&self, ff: usize) -> [u64; W] {
        FusedSim::next_state(self, ff)
    }
    fn ops_per_eval(&self) -> u64 {
        self.fused().num_ops() as u64
    }
}

impl<const W: usize> KernelExec<W> for JitSim<'_, W> {
    fn set_input(&mut self, pi: usize, words: [u64; W]) {
        JitSim::set_input(self, pi, words);
    }
    fn set_state(&mut self, ff: usize, words: [u64; W]) {
        JitSim::set_state(self, ff, words);
    }
    fn eval(&mut self) {
        JitSim::eval(self);
    }
    fn clock(&mut self) {
        JitSim::clock(self);
    }
    fn next_state(&self, ff: usize) -> [u64; W] {
        JitSim::next_state(self, ff)
    }
    fn ops_per_eval(&self) -> u64 {
        self.fused().num_ops() as u64
    }
}

/// Alive pairs sharing one source FF. A word in which the source never
/// toggled between `t` and `t+1` cannot violate any pair of the group —
/// the whole group is skipped with one word compare.
struct SourceGroup {
    src: usize,
    /// `(input position, destination FF)` of each alive pair, in input
    /// order (positions are strictly increasing within a group).
    pairs: Vec<(usize, usize)>,
}

/// Tier selection for one wide filter run: compile the tape, lower it,
/// try the configured tier (jit falls back to fused when the host can't
/// run native code), then hand the chosen kernel to the shared loop and
/// tag the stats.
fn mc_filter_wide<const W: usize>(
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
    consts: &[V3],
) -> (FilterOutcome, FilterStats) {
    let tape = Tape::compile_with_consts(netlist, consts);
    match cfg.effective_kernel() {
        SimKernel::Reference => unreachable!("dispatched before lane selection"),
        SimKernel::Tape => {
            let mut sim = TapeSim::<W>::new(&tape);
            let (out, passes, ops) = filter_batch(&mut sim, netlist, pairs, cfg);
            let stats = FilterStats {
                passes,
                tape_ops: ops,
                kernel: "tape",
                ..FilterStats::default()
            };
            (out, stats)
        }
        SimKernel::Fused => {
            let fused = FusedTape::lower(&tape);
            let mut sim = FusedSim::<W>::new(&fused);
            let (out, passes, ops) = filter_batch(&mut sim, netlist, pairs, cfg);
            let stats = FilterStats {
                passes,
                fused_ops: ops,
                kernel: "fused",
                ..FilterStats::default()
            };
            (out, stats)
        }
        SimKernel::Jit => {
            let fused = FusedTape::lower(&tape);
            match JitSim::<W>::new(&fused) {
                Some(mut sim) => {
                    let jit_bytes = sim.kernel().code_bytes() as u64;
                    let tag = sim.kernel().tag();
                    let (out, passes, ops) = filter_batch(&mut sim, netlist, pairs, cfg);
                    let stats = FilterStats {
                        passes,
                        fused_ops: ops,
                        jit_compiles: 1,
                        jit_bytes,
                        jit_batches: 2 * passes,
                        kernel: tag,
                        ..FilterStats::default()
                    };
                    (out, stats)
                }
                // Host can't run native code: fused interpreter tier.
                None => {
                    let mut sim = FusedSim::<W>::new(&fused);
                    let (out, passes, ops) = filter_batch(&mut sim, netlist, pairs, cfg);
                    let stats = FilterStats {
                        passes,
                        fused_ops: ops,
                        kernel: "fused",
                        ..FilterStats::default()
                    };
                    (out, stats)
                }
            }
        }
    }
}

/// The shared wide path: simulate `W` words per pass on the given
/// kernel, then replay the batch word by word under the reference stop
/// condition. Returns the outcome plus `(passes, ops_executed)`. See
/// the module docs for the determinism contract.
fn filter_batch<const W: usize, K: KernelExec<W>>(
    sim: &mut K,
    netlist: &Netlist,
    pairs: &[(usize, usize)],
    cfg: &FilterConfig,
) -> (FilterOutcome, u64, u64) {
    let nffs = netlist.num_ffs();
    let npis = netlist.num_inputs();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Group alive pairs by source FF, preserving input order both within
    // groups (positions ascend) and across the run (drops are re-sorted
    // by position per word, survivors by position at the end).
    let mut group_of: Vec<Option<usize>> = vec![None; nffs];
    let mut groups: Vec<SourceGroup> = Vec::new();
    for (pos, &(i, j)) in pairs.iter().enumerate() {
        let g = *group_of[i].get_or_insert_with(|| {
            groups.push(SourceGroup {
                src: i,
                pairs: Vec::new(),
            });
            groups.len() - 1
        });
        groups[g].pairs.push((pos, j));
    }
    let mut alive_count = pairs.len();

    // Per-word-slot random draws and captured FF trajectories, one
    // `[u64; W]` per FF / PI.
    let mut state = vec![[0u64; W]; nffs];
    let mut in0 = vec![[0u64; W]; npis];
    let mut in1 = vec![[0u64; W]; npis];
    let mut s1 = vec![[0u64; W]; nffs];
    let mut s2 = vec![[0u64; W]; nffs];

    let mut words = 0u64;
    let mut idle = 0u32;
    let mut drops: Vec<PairDrop> = Vec::new();
    let mut ff_toggles = vec![0u64; nffs];
    let mut passes = 0u64;
    let mut ops = 0u64;
    // Per-word drop candidates, re-sorted into input order before being
    // appended so drop order matches the reference exactly.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();

    'run: while alive_count > 0 && idle < cfg.idle_words && words < cfg.max_words {
        // Draw the RNG stream word-slot-major in the reference order:
        // per word, FF states, then cycle-1 inputs, then cycle-2 inputs.
        for w in 0..W {
            for s in state.iter_mut() {
                s[w] = rng.random();
            }
            for i in in0.iter_mut() {
                i[w] = rng.random();
            }
            for i in in1.iter_mut() {
                i[w] = rng.random();
            }
        }
        for (k, s) in state.iter().enumerate() {
            sim.set_state(k, *s);
        }
        for (p, i) in in0.iter().enumerate() {
            sim.set_input(p, *i);
        }
        sim.eval();
        for (k, s) in s1.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        sim.clock();
        for (p, i) in in1.iter().enumerate() {
            sim.set_input(p, *i);
        }
        sim.eval();
        for (k, s) in s2.iter_mut().enumerate() {
            *s = sim.next_state(k);
        }
        passes += 1;
        ops += 2 * sim.ops_per_eval();

        // Replay the batch word by word under the reference stop
        // condition; words past the stop point are never observed.
        for w in 0..W {
            if !(alive_count > 0 && idle < cfg.idle_words && words < cfg.max_words) {
                break 'run;
            }
            words += 1;
            let word = words - 1;
            for k in 0..nffs {
                ff_toggles[k] += u64::from((state[k][w] ^ s1[k][w]).count_ones());
            }
            candidates.clear();
            for group in groups.iter_mut() {
                let src = group.src;
                let src_toggle = state[src][w] ^ s1[src][w];
                if src_toggle == 0 {
                    continue;
                }
                group.pairs.retain(|&(pos, dst)| {
                    let violated = src_toggle & (s1[dst][w] ^ s2[dst][w]) != 0;
                    if violated {
                        candidates.push((pos, src, dst));
                    }
                    !violated
                });
            }
            if candidates.is_empty() {
                idle += 1;
            } else {
                idle = 0;
                alive_count -= candidates.len();
                candidates.sort_unstable_by_key(|&(pos, _, _)| pos);
                drops.extend(
                    candidates
                        .iter()
                        .map(|&(_, src, dst)| PairDrop { src, dst, word }),
                );
            }
        }
    }

    let mut survivors: Vec<(usize, usize)> = Vec::with_capacity(alive_count);
    let mut positions: Vec<(usize, (usize, usize))> = groups
        .iter()
        .flat_map(|g| g.pairs.iter().map(|&(pos, dst)| (pos, (g.src, dst))))
        .collect();
    positions.sort_unstable_by_key(|&(pos, _)| pos);
    survivors.extend(positions.into_iter().map(|(_, pair)| pair));

    (
        FilterOutcome {
            survivors,
            drops,
            words_simulated: words,
            ff_toggles,
        },
        passes,
        ops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;

    /// B.D = A: a plain pipeline stage — obviously single-cycle.
    /// C.D = C (hold): a degenerate always-multi-cycle self pair.
    fn mixed() -> Netlist {
        let mut b = NetlistBuilder::new("mixed");
        let input = b.input("IN");
        let a = b.dff("A");
        let q = b.dff("B");
        let c = b.dff("C");
        b.set_dff_input(a, input).unwrap();
        let buf = b.gate("BUFA", GateKind::Buf, [a]).unwrap();
        b.set_dff_input(q, buf).unwrap();
        let hold = b.gate("HOLD", GateKind::Buf, [c]).unwrap();
        b.set_dff_input(c, hold).unwrap();
        b.mark_output(q);
        b.finish().unwrap()
    }

    fn cfg_with_lanes(lanes: u32) -> FilterConfig {
        FilterConfig {
            lanes,
            tape: true,
            kernel: SimKernel::Tape,
            ..FilterConfig::default()
        }
    }

    fn cfg_with_kernel(kernel: SimKernel) -> FilterConfig {
        FilterConfig {
            tape: true,
            kernel,
            lanes: 256,
            ..FilterConfig::default()
        }
    }

    #[test]
    fn drops_obvious_single_cycle_pairs() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        assert!(pairs.contains(&(0, 1)));
        let out = mc_filter(&nl, &pairs, &FilterConfig::default());
        // (A,B) must be disproven: A toggles freely from IN and B follows.
        assert!(!out.survivors.contains(&(0, 1)));
        assert!(out.dropped() >= 1);
        // The drop record names the pair and a word that was simulated.
        let drop = out
            .drops
            .iter()
            .find(|d| (d.src, d.dst) == (0, 1))
            .expect("(A,B) has a drop record");
        assert!(drop.word < out.words_simulated);
        // (C,C) can never be dropped: C never changes, so the premise of
        // the violation (a transition at the source) never occurs.
        assert!(out.survivors.contains(&(2, 2)));
    }

    #[test]
    fn stops_after_idle_words() {
        let nl = mixed();
        // Only the undroppable pair: the run should end at idle_words.
        let cfg = FilterConfig {
            idle_words: 5,
            ..FilterConfig::default()
        };
        let out = mc_filter(&nl, &[(2, 2)], &cfg);
        assert_eq!(out.words_simulated, 5);
        assert_eq!(out.survivors, vec![(2, 2)]);
        assert_eq!(out.dropped(), 0);
    }

    #[test]
    fn empty_pair_list_short_circuits() {
        let nl = mixed();
        let out = mc_filter(&nl, &[], &FilterConfig::default());
        assert_eq!(out.words_simulated, 0);
        assert!(out.survivors.is_empty());
    }

    #[test]
    fn toggle_activity_separates_busy_from_held_ffs() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let out = mc_filter(&nl, &pairs, &FilterConfig::default());
        assert_eq!(out.ff_toggles.len(), nl.num_ffs());
        // A (fed by a free input) toggles in ~half the lanes; C (a hold
        // register) starts from a random state but never changes.
        assert!(out.ff_toggles[0] > 0, "A must show toggle activity");
        assert_eq!(out.ff_toggles[2], 0, "C never transitions");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let a = mc_filter(&nl, &pairs, &FilterConfig::default());
        let b = mc_filter(&nl, &pairs, &FilterConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn tape_outcome_is_byte_identical_to_reference_at_every_width() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let reference = mc_filter_reference(&nl, &pairs, &FilterConfig::default());
        for lanes in SUPPORTED_LANES {
            let out = mc_filter(&nl, &pairs, &cfg_with_lanes(lanes));
            assert_eq!(out, reference, "lane width {lanes}");
        }
    }

    #[test]
    fn every_kernel_tier_is_byte_identical_to_reference_at_every_width() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let reference = mc_filter_reference(&nl, &pairs, &FilterConfig::default());
        for kernel in [SimKernel::Jit, SimKernel::Fused, SimKernel::Tape] {
            for lanes in SUPPORTED_LANES {
                let cfg = FilterConfig {
                    lanes,
                    ..cfg_with_kernel(kernel)
                };
                let out = mc_filter(&nl, &pairs, &cfg);
                assert_eq!(out, reference, "kernel {kernel:?} lanes {lanes}");
            }
        }
    }

    #[test]
    fn tape_stats_count_passes_and_ops() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let (out, stats) = mc_filter_stats(&nl, &pairs, &cfg_with_lanes(256));
        assert!(stats.passes > 0);
        assert_eq!(stats.kernel, "tape");
        // 4 words per pass: the word count never exceeds 4 × passes.
        assert!(out.words_simulated <= 4 * stats.passes);
        assert!(out.words_simulated > 4 * (stats.passes - 1));
        // mixed() compiles to zero tape instructions (all BUFs alias), so
        // tape_ops stays zero here; the invariant is ops = 2·passes·num_ops.
        assert_eq!(stats.tape_ops % 2, 0);
        assert_eq!(stats.fused_ops, 0, "tape tier moves tape_ops only");
        assert_eq!(stats.jit_compiles, 0);
        // The reference path reports zero kernel stats.
        let no_tape = FilterConfig {
            tape: false,
            ..FilterConfig::default()
        };
        let (ref_out, ref_stats) = mc_filter_stats(&nl, &pairs, &no_tape);
        assert_eq!(ref_stats, FilterStats::default());
        assert_eq!(ref_out, out);
    }

    #[test]
    fn jit_tier_reports_compile_and_batch_stats() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let (out, stats) = mc_filter_stats(&nl, &pairs, &cfg_with_kernel(SimKernel::Jit));
        if stats.kernel.starts_with("jit-") {
            assert_eq!(stats.jit_compiles, 1);
            assert!(stats.jit_bytes > 0);
            assert_eq!(stats.jit_batches, 2 * stats.passes);
        } else {
            // Non-native host: the fallback ladder lands on `fused`.
            assert_eq!(stats.kernel, "fused");
            assert_eq!(stats.jit_compiles, 0);
        }
        assert_eq!(stats.tape_ops, 0, "jit/fused tiers never move tape_ops");
        let (ref_out, _) = mc_filter_stats(
            &nl,
            &pairs,
            &FilterConfig {
                tape: false,
                ..FilterConfig::default()
            },
        );
        assert_eq!(out, ref_out);
    }

    #[test]
    fn fused_tier_reports_fused_ops() {
        let nl = mixed();
        let pairs = nl.connected_ff_pairs();
        let (_, stats) = mc_filter_stats(&nl, &pairs, &cfg_with_kernel(SimKernel::Fused));
        assert_eq!(stats.kernel, "fused");
        assert!(stats.passes > 0);
        assert_eq!(stats.jit_compiles, 0);
        assert_eq!(stats.tape_ops, 0);
    }

    #[test]
    fn no_jit_env_and_no_tape_flow_through_effective_kernel() {
        // effective_kernel folds `tape: false` into Reference.
        let cfg = FilterConfig {
            tape: false,
            kernel: SimKernel::Jit,
            ..FilterConfig::default()
        };
        assert_eq!(cfg.effective_kernel(), SimKernel::Reference);
        let cfg = FilterConfig {
            tape: true,
            kernel: SimKernel::Fused,
            ..FilterConfig::default()
        };
        assert_eq!(cfg.effective_kernel(), SimKernel::Fused);
    }

    #[test]
    fn sim_kernel_parse_round_trips() {
        for k in [
            SimKernel::Jit,
            SimKernel::Fused,
            SimKernel::Tape,
            SimKernel::Reference,
        ] {
            assert_eq!(SimKernel::parse(k.as_str()), Some(k));
        }
        assert_eq!(SimKernel::parse("turbo"), None);
    }

    #[test]
    fn lane_words_maps_supported_widths() {
        for (lanes, words) in [(64u32, 1usize), (128, 2), (256, 4), (512, 8)] {
            let cfg = cfg_with_lanes(lanes);
            assert_eq!(cfg.lane_words(), Some(words));
        }
        assert_eq!(cfg_with_lanes(0).lane_words(), None);
        assert_eq!(cfg_with_lanes(96).lane_words(), None);
        assert_eq!(cfg_with_lanes(1024).lane_words(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unsupported_lane_width() {
        let nl = mixed();
        mc_filter(&nl, &[(0, 1)], &cfg_with_lanes(96));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_pairs() {
        let nl = mixed();
        mc_filter(&nl, &[(0, 99)], &FilterConfig::default());
    }
}
